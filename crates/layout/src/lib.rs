//! Data-layout algorithms for column caches (Section 3 of the paper).
//!
//! The pipeline implemented here turns a memory-reference profile into a mapping of program
//! variables to cache columns:
//!
//! 1. **Units** ([`weights::UnitMap`]) — variables larger than a column are split into
//!    column-sized pieces; small variables stay whole (Step 1).
//! 2. **Conflict graph** ([`graph::ConflictGraph`]) — a complete weighted graph where
//!    `w(v_i, v_j)` counts the accesses that potentially conflict when `v_i` and `v_j`
//!    share a column. Weights come either from a recorded trace
//!    ([`weights::conflict_graph_from_trace`]) or from compile-time estimates
//!    ([`static_analysis::ProgramIr`]) (Step 2).
//! 3. **Column assignment** ([`assignment::assign_columns`]) — exact minimum graph coloring
//!    when it fits in the available columns, otherwise the paper's minimum-weight-edge
//!    merging heuristic; variables can be forced into scratchpad columns (Step 3 and
//!    Section 3.1.3).
//! 4. **Dynamic layout** ([`dynamic::plan_phases`]) — re-run the algorithm per procedure
//!    and quantify the remapping between phases (Section 3.2).
//!
//! # Example
//!
//! ```
//! use ccache_layout::prelude::*;
//! use ccache_trace::{TraceRecorder, AccessKind};
//!
//! // Record a tiny program: two arrays accessed in the same loop.
//! let mut rec = TraceRecorder::new();
//! let a = rec.allocate("a", 256, 8);
//! let b = rec.allocate("b", 256, 8);
//! for i in 0..32u64 {
//!     rec.record(a, (i % 32) * 8, 8, AccessKind::Read);
//!     rec.record(b, (i % 32) * 8, 8, AccessKind::Write);
//! }
//! let (trace, symbols) = rec.finish();
//!
//! // Build the conflict graph and assign columns of a 4-column, 512-byte-column cache.
//! let (graph, _units) = conflict_graph_from_trace(&trace, &symbols, &WeightOptions::default());
//! let assignment = assign_columns(&graph, &LayoutOptions::new(4, 512))?;
//! assert_eq!(assignment.cost, 0);
//! assert_ne!(assignment.columns_of(a), assignment.columns_of(b));
//! # Ok::<(), ccache_layout::LayoutError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod coloring;
pub mod dynamic;
pub mod error;
pub mod graph;
pub mod static_analysis;
pub mod weights;

pub use assignment::{
    assign_columns, assignment_from_vertex_columns, validate_vertex_columns, ColumnAssignment,
    LayoutOptions,
};
pub use dynamic::{plan_phases, remap_count, DynamicPlan, PhaseLayout};
pub use error::LayoutError;
pub use graph::{ConflictGraph, Vertex};
pub use static_analysis::{ProgramIr, Stmt};
pub use weights::{
    conflict_graph_from_profile, conflict_graph_from_trace, LayoutUnit, UnitMap, WeightOptions,
};

/// Convenient glob-import of the types most programs need.
pub mod prelude {
    pub use crate::assignment::{assign_columns, ColumnAssignment, LayoutOptions};
    pub use crate::dynamic::{plan_phases, DynamicPlan};
    pub use crate::error::LayoutError;
    pub use crate::graph::ConflictGraph;
    pub use crate::static_analysis::{ProgramIr, Stmt};
    pub use crate::weights::{conflict_graph_from_trace, UnitMap, WeightOptions};
}
