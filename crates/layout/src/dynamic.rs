//! Dynamic (per-procedure) data layout — Section 3.2.
//!
//! Column mappings can be changed almost instantaneously, so the static layout algorithm
//! can be re-run per procedure (or per program phase) and the tint table remapped before a
//! procedure starts whenever the re-assignment is worthwhile. This module computes a
//! per-phase layout plan and the remapping cost between consecutive phases.

use crate::assignment::{assign_columns, ColumnAssignment, LayoutOptions};
use crate::error::LayoutError;
use crate::weights::{conflict_graph_from_trace, UnitMap, WeightOptions};
use ccache_trace::{SymbolTable, Trace, VarId};
use std::collections::BTreeMap;

/// Layout computed for one procedure (program phase).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseLayout {
    /// Name of the procedure or phase.
    pub name: String,
    /// The column assignment computed from this phase's trace alone.
    pub assignment: ColumnAssignment,
    /// Number of references in the phase (used to weigh the value of remapping).
    pub references: u64,
}

/// A complete dynamic layout plan: one layout per phase plus remap costs between them.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicPlan {
    /// Per-phase layouts, in execution order.
    pub phases: Vec<PhaseLayout>,
    /// `remap_counts[i]` is the number of variables whose column set changes when moving
    /// from phase `i` to phase `i + 1`.
    pub remap_counts: Vec<usize>,
}

impl DynamicPlan {
    /// Total number of variable remappings across all phase transitions.
    pub fn total_remaps(&self) -> usize {
        self.remap_counts.iter().sum()
    }

    /// Returns the phase layout by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseLayout> {
        self.phases.iter().find(|p| p.name == name)
    }
}

/// Number of variables whose column set differs between two assignments.
///
/// Variables present in only one of the assignments count as changed (they must be mapped
/// or unmapped at the transition).
pub fn remap_count(prev: &ColumnAssignment, next: &ColumnAssignment) -> usize {
    let mut vars: Vec<VarId> = prev.var_columns.keys().copied().collect();
    vars.extend(next.var_columns.keys().copied());
    vars.sort_unstable();
    vars.dedup();
    vars.iter()
        .filter(|v| prev.columns_of(**v) != next.columns_of(**v))
        .count()
}

/// Computes a per-phase layout plan.
///
/// Each phase is described by its name and the trace of references it issues; all phases
/// share one symbol table. Phases whose variables do not overlap need no remapping (their
/// assignments can be merged statically); phases that share variables with different access
/// patterns benefit from remapping, which the plan's `remap_counts` quantifies.
///
/// # Errors
///
/// Propagates any [`LayoutError`] from the per-phase column assignment.
pub fn plan_phases(
    phases: &[(String, Trace)],
    symbols: &SymbolTable,
    weight_options: &WeightOptions,
    layout_options: &LayoutOptions,
) -> Result<DynamicPlan, LayoutError> {
    let mut layouts = Vec::with_capacity(phases.len());
    for (name, trace) in phases {
        let (graph, _units) = conflict_graph_from_trace(trace, symbols, weight_options);
        let assignment = assign_columns(&graph, layout_options)?;
        layouts.push(PhaseLayout {
            name: name.clone(),
            assignment,
            references: trace.len() as u64,
        });
    }
    let remap_counts = layouts
        .windows(2)
        .map(|w| remap_count(&w[0].assignment, &w[1].assignment))
        .collect();
    Ok(DynamicPlan {
        phases: layouts,
        remap_counts,
    })
}

/// Merges per-phase assignments into one static assignment by majority vote (each variable
/// goes to the column most phases prefer, weighted by references). This is the "single
/// static partition" a column cache is compared against in Figure 4(d).
pub fn merge_static(plan: &DynamicPlan, columns: usize) -> BTreeMap<VarId, usize> {
    let mut votes: BTreeMap<VarId, BTreeMap<usize, u64>> = BTreeMap::new();
    for phase in &plan.phases {
        for (var, cols) in &phase.assignment.var_columns {
            for &c in cols {
                *votes.entry(*var).or_default().entry(c).or_insert(0) += phase.references;
            }
        }
    }
    votes
        .into_iter()
        .map(|(var, by_col)| {
            let best = by_col
                .into_iter()
                .max_by_key(|&(c, v)| (v, std::cmp::Reverse(c)))
                .map(|(c, _)| c)
                .unwrap_or(0);
            (var, best.min(columns.saturating_sub(1)))
        })
        .collect()
}

/// Builds the unit map used by a plan (exposed so callers can translate vertex indices of a
/// phase's assignment back to variables and offsets).
pub fn units_for(symbols: &SymbolTable, weight_options: &WeightOptions) -> UnitMap {
    UnitMap::from_symbols(symbols, weight_options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccache_trace::{AccessKind, TraceRecorder};

    /// Two phases: phase 1 hammers a and b together; phase 2 hammers b and c together.
    fn two_phase_setup() -> (Vec<(String, Trace)>, SymbolTable) {
        let mut rec = TraceRecorder::new();
        let a = rec.allocate("a", 256, 8);
        let b = rec.allocate("b", 256, 8);
        let c = rec.allocate("c", 256, 8);
        for i in 0..64u64 {
            rec.record(a, (i % 32) * 8, 8, AccessKind::Read);
            rec.record(b, (i % 32) * 8, 8, AccessKind::Read);
        }
        let (phase1_full, symbols_mid) = rec.clone().finish();
        let phase1 = phase1_full;
        // continue recording phase 2 on a fresh recorder sharing the symbol table layout
        let mut rec2 = rec;
        for i in 0..64u64 {
            rec2.record(b, (i % 32) * 8, 8, AccessKind::Write);
            rec2.record(c, (i % 32) * 8, 8, AccessKind::Read);
        }
        let (full, symbols) = rec2.finish();
        let phase2 = full.slice(phase1.len(), full.len());
        assert_eq!(symbols_mid.len(), symbols.len());
        (
            vec![("phase1".into(), phase1), ("phase2".into(), phase2)],
            symbols,
        )
    }

    #[test]
    fn per_phase_layouts_separate_conflicting_pairs() {
        let (phases, symbols) = two_phase_setup();
        let plan = plan_phases(
            &phases,
            &symbols,
            &WeightOptions::default(),
            &LayoutOptions::new(2, 512),
        )
        .unwrap();
        assert_eq!(plan.phases.len(), 2);
        let p1 = &plan.phases[0].assignment;
        let p2 = &plan.phases[1].assignment;
        // a and b conflict in phase 1, so they get different columns
        assert_ne!(p1.columns_of(VarId(0)), p1.columns_of(VarId(1)));
        // b and c conflict in phase 2
        assert_ne!(p2.columns_of(VarId(1)), p2.columns_of(VarId(2)));
        assert_eq!(p1.cost, 0);
        assert_eq!(p2.cost, 0);
        assert_eq!(plan.phase("phase1").unwrap().references, 128);
        assert!(plan.phase("nope").is_none());
    }

    #[test]
    fn remap_count_detects_changes() {
        let (phases, symbols) = two_phase_setup();
        let plan = plan_phases(
            &phases,
            &symbols,
            &WeightOptions::default(),
            &LayoutOptions::new(2, 512),
        )
        .unwrap();
        assert_eq!(plan.remap_counts.len(), 1);
        // at least one variable changes column set between the phases (c appears, a leaves)
        assert!(plan.remap_counts[0] >= 1);
        assert_eq!(plan.total_remaps(), plan.remap_counts[0]);
    }

    #[test]
    fn remap_count_is_zero_for_identical_assignments() {
        let (phases, symbols) = two_phase_setup();
        let plan = plan_phases(
            &phases,
            &symbols,
            &WeightOptions::default(),
            &LayoutOptions::new(4, 512),
        )
        .unwrap();
        let a = &plan.phases[0].assignment;
        assert_eq!(remap_count(a, a), 0);
    }

    #[test]
    fn merge_static_produces_one_column_per_variable() {
        let (phases, symbols) = two_phase_setup();
        let plan = plan_phases(
            &phases,
            &symbols,
            &WeightOptions::default(),
            &LayoutOptions::new(2, 512),
        )
        .unwrap();
        let merged = merge_static(&plan, 2);
        assert_eq!(merged.len(), 3);
        assert!(merged.values().all(|&c| c < 2));
    }

    #[test]
    fn units_for_exposes_unit_map() {
        let (_, symbols) = two_phase_setup();
        let units = units_for(&symbols, &WeightOptions::default());
        assert_eq!(units.len(), 3);
    }
}
