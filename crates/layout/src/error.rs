//! Error type for the data-layout algorithms.

use ccache_trace::VarId;
use std::fmt;

/// Errors produced by conflict-graph construction and column assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayoutError {
    /// The requested number of columns was zero.
    NoColumns,
    /// A forced (pre-assigned) variable referred to a column that does not exist.
    ForcedColumnOutOfRange {
        /// The variable being forced.
        var: VarId,
        /// The requested column.
        column: usize,
        /// Number of columns available.
        columns: usize,
    },
    /// More columns were reserved for scratchpad than exist in the cache.
    TooManyReserved {
        /// Columns reserved for scratchpad pre-assignments.
        reserved: usize,
        /// Total number of columns.
        columns: usize,
    },
    /// A variable was named that does not appear in the profile or graph.
    UnknownVariable {
        /// The missing variable.
        var: VarId,
    },
    /// The exact colorer exceeded its node budget (graph too large); the caller should fall
    /// back to the greedy colorer.
    SearchBudgetExceeded {
        /// Number of vertices in the offending graph.
        vertices: usize,
    },
    /// A raw per-vertex column list did not cover every vertex of the graph.
    VertexCountMismatch {
        /// Number of vertices in the graph.
        expected: usize,
        /// Number of columns supplied.
        got: usize,
    },
    /// A raw per-vertex column list assigned a vertex to a column that does not exist.
    VertexColumnOutOfRange {
        /// Index of the offending vertex.
        vertex: usize,
        /// The requested column.
        column: usize,
        /// Number of columns available.
        columns: usize,
    },
    /// A raw per-vertex column list moved a forced variable off its designated column.
    ForcedPlacementViolated {
        /// The forced variable.
        var: VarId,
        /// The column the variable was forced to.
        expected: usize,
        /// The column the list actually assigned.
        got: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::NoColumns => write!(f, "cannot assign variables to zero columns"),
            LayoutError::ForcedColumnOutOfRange {
                var,
                column,
                columns,
            } => write!(
                f,
                "variable {var} forced to column {column} but only {columns} columns exist"
            ),
            LayoutError::TooManyReserved { reserved, columns } => write!(
                f,
                "{reserved} columns reserved for scratchpad but the cache has only {columns}"
            ),
            LayoutError::UnknownVariable { var } => {
                write!(f, "variable {var} is not present in the profile")
            }
            LayoutError::SearchBudgetExceeded { vertices } => write!(
                f,
                "exact coloring abandoned: graph with {vertices} vertices exceeded the search budget"
            ),
            LayoutError::VertexCountMismatch { expected, got } => write!(
                f,
                "assignment lists {got} vertex columns but the graph has {expected} vertices"
            ),
            LayoutError::VertexColumnOutOfRange {
                vertex,
                column,
                columns,
            } => write!(
                f,
                "vertex {vertex} assigned to column {column} but only {columns} columns exist"
            ),
            LayoutError::ForcedPlacementViolated { var, expected, got } => write!(
                f,
                "variable {var} is forced to column {expected} but the assignment placed it in column {got}"
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(LayoutError::NoColumns.to_string().contains("zero columns"));
        let e = LayoutError::ForcedColumnOutOfRange {
            var: VarId(3),
            column: 9,
            columns: 4,
        };
        assert!(e.to_string().contains("v3"));
        assert!(e.to_string().contains('9'));
        let e = LayoutError::TooManyReserved {
            reserved: 5,
            columns: 4,
        };
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<T: std::error::Error + Send + Sync>() {}
        assert_err::<LayoutError>();
    }
}
