//! Profile-based conflict-graph construction (Section 3.1.1, first method).
//!
//! The program is run on a representative data set to obtain a sequence of variable
//! accesses (a [`Trace`] recorded by `ccache-workloads`). From it we derive per-unit access
//! counts and lifetimes, and weight each pair of units by the number of accesses that
//! *potentially conflict* when the two share a column: `w(v_i, v_j) = MIN(n^j_i, n^i_j)`
//! computed over the intersection of their lifetimes.
//!
//! Step 1 of the algorithm also requires that a variable larger than a column be split into
//! column-sized sub-arrays (otherwise it cannot behave as scratchpad because its own
//! elements would evict each other). [`UnitMap`] performs that split, producing the
//! *assignable units* that become graph vertices.

use crate::graph::{ConflictGraph, Vertex};
use ccache_trace::{AccessProfile, Interval, SymbolTable, Trace, VarId};

/// One assignable unit: a whole variable, or one column-sized piece of a large variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutUnit {
    /// The program variable this unit belongs to.
    pub var: VarId,
    /// Piece index within the variable (0 for unsplit variables).
    pub part: usize,
    /// Byte offset of the unit within the variable.
    pub offset: u64,
    /// Size of the unit in bytes.
    pub size: u64,
    /// Name of the unit (`var` or `var[k]` for split pieces).
    pub name: String,
}

/// Options controlling unit construction and weight computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightOptions {
    /// Size `S` of one cache column in bytes; variables larger than this are split when
    /// `split_large_variables` is set.
    pub column_bytes: u64,
    /// Whether to split variables larger than a column into column-sized pieces.
    pub split_large_variables: bool,
    /// Units with fewer accesses than this are still included but contribute no edges
    /// (treated as "not heavily accessed" in Step 1).
    pub min_accesses: u64,
}

impl Default for WeightOptions {
    fn default() -> Self {
        WeightOptions {
            column_bytes: 512,
            split_large_variables: true,
            min_accesses: 1,
        }
    }
}

/// The set of assignable units derived from a symbol table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitMap {
    units: Vec<LayoutUnit>,
}

impl UnitMap {
    /// Builds units for every variable in the symbol table, splitting variables larger
    /// than `options.column_bytes` when requested.
    pub fn from_symbols(symbols: &SymbolTable, options: &WeightOptions) -> Self {
        let mut units = Vec::new();
        for region in symbols.iter() {
            let split = options.split_large_variables
                && options.column_bytes > 0
                && region.size > options.column_bytes;
            if !split {
                units.push(LayoutUnit {
                    var: region.id,
                    part: 0,
                    offset: 0,
                    size: region.size,
                    name: region.name.clone(),
                });
                continue;
            }
            let mut part = 0usize;
            let mut offset = 0u64;
            while offset < region.size {
                let size = options.column_bytes.min(region.size - offset);
                units.push(LayoutUnit {
                    var: region.id,
                    part,
                    offset,
                    size,
                    name: format!("{}[{}]", region.name, part),
                });
                offset += size;
                part += 1;
            }
        }
        UnitMap { units }
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Returns `true` if there are no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Returns the unit at `index`.
    pub fn unit(&self, index: usize) -> Option<&LayoutUnit> {
        self.units.get(index)
    }

    /// Iterates over the units in index order (the same order as graph vertices).
    pub fn iter(&self) -> impl Iterator<Item = &LayoutUnit> {
        self.units.iter()
    }

    /// Finds the unit containing byte `offset` of variable `var`.
    pub fn resolve(&self, var: VarId, offset: u64) -> Option<usize> {
        self.units
            .iter()
            .position(|u| u.var == var && offset >= u.offset && offset < u.offset + u.size)
    }

    /// All unit indices belonging to a variable.
    pub fn units_of(&self, var: VarId) -> Vec<usize> {
        self.units
            .iter()
            .enumerate()
            .filter(|(_, u)| u.var == var)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Per-unit profile gathered while scanning the trace.
#[derive(Debug, Clone)]
struct UnitProfile {
    accesses: u64,
    lifetime: Option<Interval>,
    positions: Vec<u64>,
}

impl UnitProfile {
    fn new() -> Self {
        UnitProfile {
            accesses: 0,
            lifetime: None,
            positions: Vec::new(),
        }
    }

    fn record(&mut self, pos: u64) {
        self.accesses += 1;
        self.positions.push(pos);
        self.lifetime = Some(match self.lifetime {
            None => Interval::point(pos),
            Some(iv) => iv.extended_to(pos),
        });
    }

    fn accesses_in(&self, interval: &Interval) -> u64 {
        let lo = self.positions.partition_point(|&p| p < interval.first);
        let hi = self.positions.partition_point(|&p| p <= interval.last);
        (hi - lo) as u64
    }
}

/// Builds the conflict graph from a recorded trace, splitting large variables into units.
///
/// Returns the graph together with the [`UnitMap`] describing what each vertex is.
pub fn conflict_graph_from_trace(
    trace: &Trace,
    symbols: &SymbolTable,
    options: &WeightOptions,
) -> (ConflictGraph, UnitMap) {
    let unit_map = UnitMap::from_symbols(symbols, options);
    let mut profiles: Vec<UnitProfile> = (0..unit_map.len()).map(|_| UnitProfile::new()).collect();

    for (pos, ev) in trace.iter().enumerate() {
        let var = ev.var.or_else(|| symbols.resolve(ev.addr));
        let Some(var) = var else { continue };
        let Some(region) = symbols.region(var) else {
            continue;
        };
        let offset = ev.addr.saturating_sub(region.base);
        if let Some(idx) = unit_map.resolve(var, offset.min(region.size.saturating_sub(1))) {
            profiles[idx].record(pos as u64);
        }
    }

    let mut graph = ConflictGraph::new();
    for (i, unit) in unit_map.iter().enumerate() {
        graph.add_vertex(Vertex {
            var: unit.var,
            name: unit.name.clone(),
            size: unit.size,
            accesses: profiles[i].accesses,
        });
    }
    for i in 0..unit_map.len() {
        for j in (i + 1)..unit_map.len() {
            let (pi, pj) = (&profiles[i], &profiles[j]);
            if pi.accesses < options.min_accesses || pj.accesses < options.min_accesses {
                continue;
            }
            let (Some(li), Some(lj)) = (pi.lifetime, pj.lifetime) else {
                continue;
            };
            let Some(delta) = li.intersection(&lj) else {
                continue;
            };
            let w = pi.accesses_in(&delta).min(pj.accesses_in(&delta));
            if w > 0 {
                graph.set_weight(i, j, w);
            }
        }
    }
    (graph, unit_map)
}

/// Builds a conflict graph directly from an [`AccessProfile`] without splitting variables
/// (one vertex per profiled variable). Useful when only a profile, not a full trace, is
/// available.
pub fn conflict_graph_from_profile(profile: &AccessProfile) -> (ConflictGraph, Vec<VarId>) {
    let vars = profile.variables();
    let mut graph = ConflictGraph::new();
    for v in &vars {
        let p = profile.get(*v).expect("variable from profile");
        graph.add_vertex(Vertex {
            var: *v,
            name: if p.name.is_empty() {
                v.to_string()
            } else {
                p.name.clone()
            },
            size: p.size,
            accesses: p.accesses,
        });
    }
    for i in 0..vars.len() {
        for j in (i + 1)..vars.len() {
            let w = profile.potential_conflicts(vars[i], vars[j]);
            if w > 0 {
                graph.set_weight(i, j, w);
            }
        }
    }
    (graph, vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccache_trace::{AccessKind, TraceRecorder};

    #[test]
    fn unit_map_splits_large_variables() {
        let mut st = SymbolTable::new();
        st.allocate("small", 100, 8).unwrap();
        st.allocate("big", 1200, 8).unwrap();
        let opts = WeightOptions {
            column_bytes: 512,
            ..WeightOptions::default()
        };
        let um = UnitMap::from_symbols(&st, &opts);
        // small stays whole; big splits into 512 + 512 + 176
        assert_eq!(um.len(), 4);
        assert_eq!(um.unit(0).unwrap().name, "small");
        assert_eq!(um.unit(1).unwrap().name, "big[0]");
        assert_eq!(um.unit(3).unwrap().size, 176);
        assert_eq!(um.units_of(VarId(1)), vec![1, 2, 3]);
        assert_eq!(um.resolve(VarId(1), 600), Some(2));
        assert_eq!(um.resolve(VarId(1), 100), Some(1));
        assert_eq!(um.resolve(VarId(0), 50), Some(0));
        assert_eq!(um.resolve(VarId(7), 0), None);
    }

    #[test]
    fn splitting_can_be_disabled() {
        let mut st = SymbolTable::new();
        st.allocate("big", 4096, 8).unwrap();
        let opts = WeightOptions {
            column_bytes: 512,
            split_large_variables: false,
            min_accesses: 1,
        };
        let um = UnitMap::from_symbols(&st, &opts);
        assert_eq!(um.len(), 1);
        assert_eq!(um.unit(0).unwrap().size, 4096);
    }

    #[test]
    fn disjoint_lifetimes_produce_no_edge() {
        let mut rec = TraceRecorder::new();
        let a = rec.allocate("a", 64, 8);
        let b = rec.allocate("b", 64, 8);
        for i in 0..8u64 {
            rec.record(a, i * 8, 8, AccessKind::Read);
        }
        for i in 0..8u64 {
            rec.record(b, i * 8, 8, AccessKind::Read);
        }
        let (trace, symbols) = rec.finish();
        let (g, um) = conflict_graph_from_trace(&trace, &symbols, &WeightOptions::default());
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(um.len(), 2);
        assert_eq!(g.vertex(0).unwrap().accesses, 8);
    }

    #[test]
    fn interleaved_accesses_produce_min_weight_edge() {
        let mut rec = TraceRecorder::new();
        let a = rec.allocate("a", 64, 8);
        let b = rec.allocate("b", 64, 8);
        // a: 10 accesses, b: 4 accesses, fully interleaved
        for i in 0..10u64 {
            rec.record(a, (i % 8) * 8, 8, AccessKind::Read);
            if i < 4 {
                rec.record(b, (i % 8) * 8, 8, AccessKind::Write);
            }
        }
        let (trace, symbols) = rec.finish();
        let (g, _) = conflict_graph_from_trace(&trace, &symbols, &WeightOptions::default());
        assert_eq!(g.edge_count(), 1);
        // the weight is MIN(accesses of a in delta, accesses of b in delta); b's lifetime
        // is [1, 7] and a makes 3 accesses inside it, so the weight is 3.
        let w = g.weight(0, 1);
        assert_eq!(w, 3);
    }

    #[test]
    fn split_units_of_one_variable_conflict_with_each_other() {
        let mut rec = TraceRecorder::new();
        // 1 KiB array scanned repeatedly: its two 512-byte halves are both live throughout
        let big = rec.allocate("big", 1024, 8);
        for _pass in 0..3 {
            for i in 0..128u64 {
                rec.record(big, i * 8, 8, AccessKind::Read);
            }
        }
        let (trace, symbols) = rec.finish();
        let (g, um) = conflict_graph_from_trace(&trace, &symbols, &WeightOptions::default());
        assert_eq!(um.len(), 2);
        assert!(g.weight(0, 1) > 0);
    }

    #[test]
    fn graph_from_profile_matches_potential_conflicts() {
        let mut rec = TraceRecorder::new();
        let a = rec.allocate("a", 64, 8);
        let b = rec.allocate("b", 64, 8);
        for i in 0..6u64 {
            rec.record(a, (i % 8) * 8, 8, AccessKind::Read);
            rec.record(b, (i % 8) * 8, 8, AccessKind::Read);
        }
        let (trace, symbols) = rec.finish();
        let profile = AccessProfile::from_trace(&trace, &symbols);
        let (g, vars) = conflict_graph_from_profile(&profile);
        assert_eq!(vars.len(), 2);
        assert_eq!(g.weight(0, 1), profile.potential_conflicts(a, b));
        assert!(g.weight(0, 1) > 0);
    }

    #[test]
    fn min_accesses_threshold_suppresses_edges() {
        let mut rec = TraceRecorder::new();
        let a = rec.allocate("a", 64, 8);
        let b = rec.allocate("b", 64, 8);
        rec.record(a, 0, 8, AccessKind::Read);
        rec.record(b, 0, 8, AccessKind::Read);
        rec.record(a, 8, 8, AccessKind::Read);
        let (trace, symbols) = rec.finish();
        let opts = WeightOptions {
            min_accesses: 3,
            ..WeightOptions::default()
        };
        let (g, _) = conflict_graph_from_trace(&trace, &symbols, &opts);
        assert_eq!(g.edge_count(), 0);
    }
}
