//! Graph coloring for column assignment.
//!
//! The paper colors the conflict graph after deleting its zero-weight edges: if the graph is
//! `k`-colorable (with `k` the number of columns) the assignment has cost `W = 0`. The exact
//! colorer here plays the role of Coudert's exact algorithm cited by the paper: a DSATUR-
//! ordered branch-and-bound search with a greedy-clique lower bound, which colors the small
//! conflict graphs of embedded kernels quickly. A greedy DSATUR colorer is provided both as
//! the upper bound for the exact search and as a fallback for graphs that exceed the search
//! budget.

use crate::error::LayoutError;
use crate::graph::ConflictGraph;

/// Adjacency over the non-zero-weight edges of a conflict graph.
fn adjacency(graph: &ConflictGraph) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); graph.vertex_count()];
    for (a, b, _w) in graph.edges() {
        adj[a].push(b);
        adj[b].push(a);
    }
    adj
}

/// Greedy DSATUR coloring: repeatedly colors the uncolored vertex with the highest
/// saturation (number of distinct neighbor colors), breaking ties by degree. Returns the
/// color of every vertex; colors are `0..n_colors`.
pub fn greedy_coloring(graph: &ConflictGraph) -> Vec<usize> {
    let n = graph.vertex_count();
    let adj = adjacency(graph);
    let mut colors: Vec<Option<usize>> = vec![None; n];
    for _ in 0..n {
        // pick uncolored vertex with max saturation, then max degree
        let pick = (0..n)
            .filter(|&v| colors[v].is_none())
            .max_by_key(|&v| {
                let mut neigh_colors: Vec<usize> =
                    adj[v].iter().filter_map(|&u| colors[u]).collect();
                neigh_colors.sort_unstable();
                neigh_colors.dedup();
                (neigh_colors.len(), adj[v].len())
            })
            .expect("there is an uncolored vertex");
        let used: Vec<usize> = adj[pick].iter().filter_map(|&u| colors[u]).collect();
        let mut c = 0;
        while used.contains(&c) {
            c += 1;
        }
        colors[pick] = Some(c);
    }
    colors.into_iter().map(|c| c.unwrap_or(0)).collect()
}

/// Number of colors used by a coloring.
pub fn color_count(coloring: &[usize]) -> usize {
    coloring.iter().copied().max().map_or(0, |m| m + 1)
}

/// Returns `true` if `coloring` assigns different colors to the endpoints of every
/// non-zero-weight edge.
pub fn is_proper(graph: &ConflictGraph, coloring: &[usize]) -> bool {
    graph.edges().all(|(a, b, _)| coloring[a] != coloring[b])
}

/// Greedy maximum-clique heuristic, used as a lower bound for the exact search.
pub fn clique_lower_bound(graph: &ConflictGraph) -> usize {
    let n = graph.vertex_count();
    if n == 0 {
        return 0;
    }
    let adj = adjacency(graph);
    let mut best = 1;
    // grow a clique greedily from each vertex, highest degree first
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(adj[v].len()));
    for &start in order.iter().take(16) {
        let mut clique = vec![start];
        for &cand in &order {
            if clique.contains(&cand) {
                continue;
            }
            if clique.iter().all(|&c| adj[cand].contains(&c)) {
                clique.push(cand);
            }
        }
        best = best.max(clique.len());
    }
    best
}

/// Default number of backtracking nodes the exact colorer may expand before giving up.
pub const DEFAULT_SEARCH_BUDGET: u64 = 2_000_000;

/// Tries to color the graph with at most `k` colors exactly (backtracking with DSATUR
/// ordering). Returns `Ok(Some(coloring))` on success, `Ok(None)` if the graph is provably
/// not `k`-colorable, and an error if the search budget is exhausted.
pub fn k_colorable(
    graph: &ConflictGraph,
    k: usize,
    budget: u64,
) -> Result<Option<Vec<usize>>, LayoutError> {
    let n = graph.vertex_count();
    if n == 0 {
        return Ok(Some(Vec::new()));
    }
    if k == 0 {
        return Ok(None);
    }
    let adj = adjacency(graph);
    let mut colors: Vec<Option<usize>> = vec![None; n];
    let mut nodes: u64 = 0;

    fn solve(
        adj: &[Vec<usize>],
        colors: &mut Vec<Option<usize>>,
        k: usize,
        nodes: &mut u64,
        budget: u64,
    ) -> Result<bool, LayoutError> {
        *nodes += 1;
        if *nodes > budget {
            return Err(LayoutError::SearchBudgetExceeded {
                vertices: colors.len(),
            });
        }
        // pick the uncolored vertex with maximum saturation (fail-first)
        let next = (0..colors.len())
            .filter(|&v| colors[v].is_none())
            .max_by_key(|&v| {
                let mut nc: Vec<usize> = adj[v].iter().filter_map(|&u| colors[u]).collect();
                nc.sort_unstable();
                nc.dedup();
                (nc.len(), adj[v].len())
            });
        let Some(v) = next else {
            return Ok(true); // everything colored
        };
        let used: Vec<usize> = adj[v].iter().filter_map(|&u| colors[u]).collect();
        // limit symmetric branches: only try colors up to (max used so far + 1)
        let max_used = colors.iter().flatten().copied().max().map_or(0, |m| m + 1);
        for c in 0..k.min(max_used + 1) {
            if used.contains(&c) {
                continue;
            }
            colors[v] = Some(c);
            if solve(adj, colors, k, nodes, budget)? {
                return Ok(true);
            }
            colors[v] = None;
        }
        Ok(false)
    }

    match solve(&adj, &mut colors, k, &mut nodes, budget)? {
        true => Ok(Some(colors.into_iter().map(|c| c.unwrap()).collect())),
        false => Ok(None),
    }
}

/// Computes a minimum coloring exactly (within `budget` search nodes): returns the
/// chromatic number and one optimal coloring.
///
/// # Errors
///
/// Returns [`LayoutError::SearchBudgetExceeded`] if the search budget is exhausted; callers
/// fall back to [`greedy_coloring`].
pub fn minimum_coloring(
    graph: &ConflictGraph,
    budget: u64,
) -> Result<(usize, Vec<usize>), LayoutError> {
    let n = graph.vertex_count();
    if n == 0 {
        return Ok((0, Vec::new()));
    }
    let greedy = greedy_coloring(graph);
    let upper = color_count(&greedy);
    let lower = clique_lower_bound(graph);
    let mut best = greedy;
    let mut best_k = upper;
    // try to beat the greedy bound from the clique bound upwards
    let mut k = lower.max(1);
    while k < best_k {
        match k_colorable(graph, k, budget)? {
            Some(coloring) => {
                best = coloring;
                best_k = k;
                break;
            }
            None => k += 1,
        }
    }
    Ok((best_k, best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Vertex;
    use ccache_trace::VarId;

    fn vertex(i: u32) -> Vertex {
        Vertex {
            var: VarId(i),
            name: format!("v{i}"),
            size: 64,
            accesses: 1,
        }
    }

    fn complete_graph(n: usize) -> ConflictGraph {
        let mut g = ConflictGraph::new();
        for i in 0..n {
            g.add_vertex(vertex(i as u32));
        }
        for i in 0..n {
            for j in i + 1..n {
                g.set_weight(i, j, 1);
            }
        }
        g
    }

    fn cycle_graph(n: usize) -> ConflictGraph {
        let mut g = ConflictGraph::new();
        for i in 0..n {
            g.add_vertex(vertex(i as u32));
        }
        for i in 0..n {
            g.set_weight(i, (i + 1) % n, 1);
        }
        g
    }

    #[test]
    fn greedy_produces_proper_colorings() {
        for g in [complete_graph(5), cycle_graph(5), cycle_graph(6)] {
            let c = greedy_coloring(&g);
            assert!(is_proper(&g, &c));
        }
    }

    #[test]
    fn exact_chromatic_number_of_known_graphs() {
        // K5 needs 5 colors
        let (k, c) = minimum_coloring(&complete_graph(5), DEFAULT_SEARCH_BUDGET).unwrap();
        assert_eq!(k, 5);
        assert!(is_proper(&complete_graph(5), &c));
        // odd cycle needs 3, even cycle needs 2
        let (k, _) = minimum_coloring(&cycle_graph(7), DEFAULT_SEARCH_BUDGET).unwrap();
        assert_eq!(k, 3);
        let (k, _) = minimum_coloring(&cycle_graph(8), DEFAULT_SEARCH_BUDGET).unwrap();
        assert_eq!(k, 2);
    }

    #[test]
    fn k_colorable_decisions() {
        let g = complete_graph(4);
        assert!(k_colorable(&g, 3, DEFAULT_SEARCH_BUDGET).unwrap().is_none());
        let c = k_colorable(&g, 4, DEFAULT_SEARCH_BUDGET).unwrap().unwrap();
        assert!(is_proper(&g, &c));
        assert!(color_count(&c) <= 4);
        assert!(k_colorable(&g, 0, DEFAULT_SEARCH_BUDGET).unwrap().is_none());
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty = ConflictGraph::new();
        assert_eq!(minimum_coloring(&empty, 100).unwrap().0, 0);
        let mut g = ConflictGraph::new();
        g.add_vertex(vertex(0));
        g.add_vertex(vertex(1));
        let (k, c) = minimum_coloring(&g, 100).unwrap();
        assert_eq!(k, 1);
        assert_eq!(c, vec![0, 0]);
        assert_eq!(clique_lower_bound(&g), 1);
        assert_eq!(clique_lower_bound(&empty), 0);
    }

    #[test]
    fn clique_bound_matches_on_complete_graphs() {
        assert_eq!(clique_lower_bound(&complete_graph(6)), 6);
        assert!(clique_lower_bound(&cycle_graph(5)) >= 2);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let g = complete_graph(12);
        // a budget of 1 node cannot even color the first vertex tree
        let err = k_colorable(&g, 11, 1).unwrap_err();
        assert!(matches!(err, LayoutError::SearchBudgetExceeded { .. }));
    }

    #[test]
    fn color_count_counts_distinct() {
        assert_eq!(color_count(&[]), 0);
        assert_eq!(color_count(&[0, 0, 0]), 1);
        assert_eq!(color_count(&[0, 2, 1]), 3);
    }
}
