//! Column assignment: the paper's Section 3.1.2 algorithm.
//!
//! Given the conflict graph (zero-weight edges already absent), try an exact minimum
//! coloring. If it needs at most `k` colors, assign each color to a column — the cost `W`
//! is zero and the solution is optimal. Otherwise repeatedly merge the vertices joined by
//! the minimum-weight edge and re-color, stopping as soon as `k` colors suffice; merged
//! vertices share a column.
//!
//! Variables can also be *forced* into designated scratchpad columns (Section 3.1.3): they
//! are removed from the coloring problem and the remaining variables are colored over the
//! columns that are left.

use crate::coloring;
use crate::error::LayoutError;
use crate::graph::ConflictGraph;
use ccache_trace::VarId;
use std::collections::BTreeMap;

/// Options controlling column assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutOptions {
    /// Total number of columns `k` in the cache.
    pub columns: usize,
    /// Size `S` of one column in bytes (informational; used by reports).
    pub column_bytes: u64,
    /// Variables pre-assigned ("forced") to specific columns, typically to emulate
    /// scratchpad memory for predictability-critical data.
    pub forced: Vec<(VarId, usize)>,
    /// Maximum number of search nodes for the exact colorer before falling back to the
    /// greedy colorer.
    pub search_budget: u64,
}

impl Default for LayoutOptions {
    fn default() -> Self {
        LayoutOptions {
            columns: 4,
            column_bytes: 512,
            forced: Vec::new(),
            search_budget: coloring::DEFAULT_SEARCH_BUDGET,
        }
    }
}

impl LayoutOptions {
    /// Creates options for a cache with `columns` columns of `column_bytes` bytes each.
    pub fn new(columns: usize, column_bytes: u64) -> Self {
        LayoutOptions {
            columns,
            column_bytes,
            ..LayoutOptions::default()
        }
    }

    /// Forces `var` into `column`, removing it from the coloring problem.
    pub fn force(mut self, var: VarId, column: usize) -> Self {
        self.forced.push((var, column));
        self
    }
}

/// The result of column assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnAssignment {
    /// Number of columns in the target cache.
    pub columns: usize,
    /// Column of every graph vertex (same indexing as the input graph).
    pub vertex_columns: Vec<usize>,
    /// Columns used by each program variable (a variable split into units may span
    /// several columns).
    pub var_columns: BTreeMap<VarId, Vec<usize>>,
    /// The paper's cost `W`: total weight of edges whose endpoints share a column.
    pub cost: u64,
    /// `true` if the result came from an exact coloring with no merging (guaranteed
    /// minimum-cost, `W == 0`).
    pub optimal: bool,
    /// Number of merge iterations the heuristic performed.
    pub merges: usize,
}

impl ColumnAssignment {
    /// Returns the column of graph vertex `index`.
    pub fn column_of_vertex(&self, index: usize) -> Option<usize> {
        self.vertex_columns.get(index).copied()
    }

    /// Returns the columns used by variable `var` (empty if the variable was not assigned).
    pub fn columns_of(&self, var: VarId) -> &[usize] {
        self.var_columns.get(&var).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns every variable assigned (exclusively or not) to `column`.
    pub fn vars_in_column(&self, column: usize) -> Vec<VarId> {
        self.var_columns
            .iter()
            .filter(|(_, cols)| cols.contains(&column))
            .map(|(v, _)| *v)
            .collect()
    }
}

/// Runs the paper's column-assignment algorithm on a conflict graph.
///
/// # Errors
///
/// Returns [`LayoutError::NoColumns`] when `options.columns` is zero,
/// [`LayoutError::ForcedColumnOutOfRange`] for invalid forced assignments, and
/// [`LayoutError::TooManyReserved`] when forcing leaves no column for the remaining
/// variables while some remain to be colored.
pub fn assign_columns(
    graph: &ConflictGraph,
    options: &LayoutOptions,
) -> Result<ColumnAssignment, LayoutError> {
    if options.columns == 0 {
        return Err(LayoutError::NoColumns);
    }
    // Validate forced assignments.
    for &(var, col) in &options.forced {
        if col >= options.columns {
            return Err(LayoutError::ForcedColumnOutOfRange {
                var,
                column: col,
                columns: options.columns,
            });
        }
        if graph.index_of(var).is_none() {
            return Err(LayoutError::UnknownVariable { var });
        }
    }

    let forced_map: BTreeMap<VarId, usize> = options.forced.iter().copied().collect();
    let reserved_columns: Vec<usize> = {
        let mut v: Vec<usize> = forced_map.values().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let available_columns: Vec<usize> = (0..options.columns)
        .filter(|c| !reserved_columns.contains(c))
        .collect();

    // Partition the vertices into forced and free.
    let mut forced_vertices: BTreeMap<usize, usize> = BTreeMap::new(); // vertex -> column
    let mut free_vertices: Vec<usize> = Vec::new();
    for (idx, vertex) in graph.vertices() {
        if let Some(&col) = forced_map.get(&vertex.var) {
            forced_vertices.insert(idx, col);
        } else {
            free_vertices.push(idx);
        }
    }
    if !free_vertices.is_empty() && available_columns.is_empty() {
        return Err(LayoutError::TooManyReserved {
            reserved: reserved_columns.len(),
            columns: options.columns,
        });
    }
    let k = available_columns.len();

    // Build the sub-graph over the free vertices (keeping only nonzero edges).
    let mut sub = ConflictGraph::new();
    let mut sub_to_full = Vec::with_capacity(free_vertices.len());
    for &idx in &free_vertices {
        sub.add_vertex(graph.vertex(idx).expect("index valid").clone());
        sub_to_full.push(idx);
    }
    for (i, &fi) in sub_to_full.iter().enumerate() {
        for (j, &fj) in sub_to_full.iter().enumerate().skip(i + 1) {
            let w = graph.weight(fi, fj);
            if w > 0 {
                sub.set_weight(i, j, w);
            }
        }
    }

    // The merging loop of Section 3.1.2: color exactly, merge the minimum-weight edge
    // until at most k colors are needed. `vertex_of` maps original sub-graph vertices to
    // vertices of the current (merged) graph.
    let mut current = sub.clone();
    let mut vertex_of: Vec<usize> = (0..sub.vertex_count()).collect();
    let mut merges = 0usize;
    let mut optimal = true;
    let coloring = loop {
        if current.vertex_count() == 0 {
            break Vec::new();
        }
        let result = coloring::minimum_coloring(&current, options.search_budget);
        let (colors_needed, coloring) = match result {
            Ok(pair) => pair,
            Err(LayoutError::SearchBudgetExceeded { .. }) => {
                // graph too large for the exact colorer — fall back to greedy
                optimal = false;
                let c = coloring::greedy_coloring(&current);
                (coloring::color_count(&c), c)
            }
            Err(e) => return Err(e),
        };
        if colors_needed <= k {
            break coloring;
        }
        // not k-colorable: merge the minimum-weight edge and retry
        optimal = false;
        let (a, b, _w) = current
            .min_weight_edge()
            .expect("a graph needing more colors than k has at least one edge");
        let (merged, mapping) = current.merged(a, b);
        for slot in vertex_of.iter_mut() {
            *slot = mapping[*slot];
        }
        current = merged;
        merges += 1;
    };

    // Map colors to real column numbers. If the fallback greedy coloring still uses more
    // than k colors, wrap around (an approximation; counted in the cost).
    let color_to_column = |color: usize| -> usize {
        if k == 0 {
            reserved_columns.first().copied().unwrap_or(0)
        } else {
            available_columns[color % k]
        }
    };

    let mut vertex_columns = vec![0usize; graph.vertex_count()];
    for (&idx, &col) in &forced_vertices {
        vertex_columns[idx] = col;
    }
    for (sub_idx, &full_idx) in sub_to_full.iter().enumerate() {
        let color = coloring.get(vertex_of[sub_idx]).copied().unwrap_or(0);
        vertex_columns[full_idx] = color_to_column(color);
    }

    let mut var_columns: BTreeMap<VarId, Vec<usize>> = BTreeMap::new();
    for (idx, vertex) in graph.vertices() {
        let entry = var_columns.entry(vertex.var).or_default();
        let col = vertex_columns[idx];
        if !entry.contains(&col) {
            entry.push(col);
        }
    }
    for cols in var_columns.values_mut() {
        cols.sort_unstable();
    }

    let cost = graph.assignment_cost(&vertex_columns);
    Ok(ColumnAssignment {
        columns: options.columns,
        vertex_columns,
        var_columns,
        cost,
        optimal: optimal && cost == 0,
        merges,
    })
}

/// Checks that a raw per-vertex column list is a legal assignment for `graph` under
/// `options`: one column per vertex, every column in `0..options.columns`, and every
/// forced variable on its designated column.
///
/// This is the validation half of the search-subsystem contract: optimizers mutate raw
/// column vectors and call this (or [`assignment_from_vertex_columns`]) to reject
/// out-of-space candidates before paying for a replay.
///
/// # Errors
///
/// Returns [`LayoutError::NoColumns`], [`LayoutError::VertexCountMismatch`],
/// [`LayoutError::VertexColumnOutOfRange`], [`LayoutError::UnknownVariable`] or
/// [`LayoutError::ForcedPlacementViolated`] naming the first violation found.
pub fn validate_vertex_columns(
    graph: &ConflictGraph,
    options: &LayoutOptions,
    vertex_columns: &[usize],
) -> Result<(), LayoutError> {
    if options.columns == 0 {
        return Err(LayoutError::NoColumns);
    }
    if vertex_columns.len() != graph.vertex_count() {
        return Err(LayoutError::VertexCountMismatch {
            expected: graph.vertex_count(),
            got: vertex_columns.len(),
        });
    }
    for (vertex, &column) in vertex_columns.iter().enumerate() {
        if column >= options.columns {
            return Err(LayoutError::VertexColumnOutOfRange {
                vertex,
                column,
                columns: options.columns,
            });
        }
    }
    for &(var, col) in &options.forced {
        if col >= options.columns {
            return Err(LayoutError::ForcedColumnOutOfRange {
                var,
                column: col,
                columns: options.columns,
            });
        }
        let mut found = false;
        for (idx, vertex) in graph.vertices() {
            if vertex.var == var {
                found = true;
                if vertex_columns[idx] != col {
                    return Err(LayoutError::ForcedPlacementViolated {
                        var,
                        expected: col,
                        got: vertex_columns[idx],
                    });
                }
            }
        }
        if !found {
            return Err(LayoutError::UnknownVariable { var });
        }
    }
    Ok(())
}

/// Builds a [`ColumnAssignment`] from a raw per-vertex column list, validating it first.
///
/// The cost `W` is recomputed from the graph, so the result compares directly with the
/// output of [`assign_columns`]: a search that finds a lower-`W` vector than the heuristic
/// can quantify the improvement. `optimal` is set only when the cost is zero (a zero-cost
/// assignment is minimum by definition); `merges` is always zero because no merging
/// happened.
///
/// # Errors
///
/// Propagates the validation errors of [`validate_vertex_columns`].
pub fn assignment_from_vertex_columns(
    graph: &ConflictGraph,
    options: &LayoutOptions,
    vertex_columns: &[usize],
) -> Result<ColumnAssignment, LayoutError> {
    validate_vertex_columns(graph, options, vertex_columns)?;
    let mut var_columns: BTreeMap<VarId, Vec<usize>> = BTreeMap::new();
    for (idx, vertex) in graph.vertices() {
        let entry = var_columns.entry(vertex.var).or_default();
        let col = vertex_columns[idx];
        if !entry.contains(&col) {
            entry.push(col);
        }
    }
    for cols in var_columns.values_mut() {
        cols.sort_unstable();
    }
    let cost = graph.assignment_cost(vertex_columns);
    Ok(ColumnAssignment {
        columns: options.columns,
        vertex_columns: vertex_columns.to_vec(),
        var_columns,
        cost,
        optimal: cost == 0,
        merges: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Vertex;

    fn vertex(i: u32, size: u64, accesses: u64) -> Vertex {
        Vertex {
            var: VarId(i),
            name: format!("v{i}"),
            size,
            accesses,
        }
    }

    /// A graph of 3 mutually conflicting variables plus one isolated variable.
    fn sample_graph() -> ConflictGraph {
        let mut g = ConflictGraph::new();
        for i in 0..4 {
            g.add_vertex(vertex(i, 256, 100));
        }
        g.set_weight(0, 1, 10);
        g.set_weight(0, 2, 20);
        g.set_weight(1, 2, 30);
        g
    }

    #[test]
    fn colorable_graph_gets_zero_cost() {
        let g = sample_graph();
        let a = assign_columns(&g, &LayoutOptions::new(4, 512)).unwrap();
        assert_eq!(a.cost, 0);
        assert!(a.optimal);
        assert_eq!(a.merges, 0);
        // conflicting variables in distinct columns
        assert_ne!(a.vertex_columns[0], a.vertex_columns[1]);
        assert_ne!(a.vertex_columns[0], a.vertex_columns[2]);
        assert_ne!(a.vertex_columns[1], a.vertex_columns[2]);
        assert_eq!(a.columns, 4);
        assert_eq!(a.columns_of(VarId(0)).len(), 1);
    }

    #[test]
    fn merging_kicks_in_when_not_colorable() {
        // triangle but only 2 columns: must merge the lightest edge (0-1, weight 10)
        let g = sample_graph();
        let a = assign_columns(&g, &LayoutOptions::new(2, 512)).unwrap();
        assert!(a.merges >= 1);
        assert!(!a.optimal);
        // the minimum achievable cost is 10 (vertices 0 and 1 share)
        assert_eq!(a.cost, 10);
        assert_eq!(a.vertex_columns[0], a.vertex_columns[1]);
        assert_ne!(a.vertex_columns[0], a.vertex_columns[2]);
    }

    #[test]
    fn single_column_merges_everything() {
        let g = sample_graph();
        let a = assign_columns(&g, &LayoutOptions::new(1, 512)).unwrap();
        assert!(a.vertex_columns.iter().all(|&c| c == 0));
        assert_eq!(a.cost, 60);
    }

    #[test]
    fn forced_variables_keep_their_column() {
        let g = sample_graph();
        let opts = LayoutOptions::new(4, 512).force(VarId(3), 0);
        let a = assign_columns(&g, &opts).unwrap();
        assert_eq!(a.vertex_columns[3], 0);
        // the other variables avoid the reserved column
        for i in 0..3 {
            assert_ne!(a.vertex_columns[i], 0);
        }
        assert_eq!(a.cost, 0);
        assert_eq!(a.vars_in_column(0), vec![VarId(3)]);
    }

    #[test]
    fn forcing_everything_leaves_free_set_empty() {
        let mut g = ConflictGraph::new();
        g.add_vertex(vertex(0, 64, 10));
        g.add_vertex(vertex(1, 64, 10));
        let opts = LayoutOptions::new(2, 512)
            .force(VarId(0), 0)
            .force(VarId(1), 1);
        let a = assign_columns(&g, &opts).unwrap();
        assert_eq!(a.vertex_columns, vec![0, 1]);
        assert_eq!(a.cost, 0);
    }

    #[test]
    fn errors_are_reported() {
        let g = sample_graph();
        assert!(matches!(
            assign_columns(&g, &LayoutOptions::new(0, 512)),
            Err(LayoutError::NoColumns)
        ));
        assert!(matches!(
            assign_columns(&g, &LayoutOptions::new(4, 512).force(VarId(0), 9)),
            Err(LayoutError::ForcedColumnOutOfRange { .. })
        ));
        assert!(matches!(
            assign_columns(&g, &LayoutOptions::new(4, 512).force(VarId(9), 1)),
            Err(LayoutError::UnknownVariable { .. })
        ));
        // forcing all columns as scratchpad while other variables remain
        let opts = LayoutOptions::new(1, 512).force(VarId(3), 0);
        assert!(matches!(
            assign_columns(&g, &opts),
            Err(LayoutError::TooManyReserved { .. })
        ));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = ConflictGraph::new();
        let a = assign_columns(&g, &LayoutOptions::default()).unwrap();
        assert!(a.vertex_columns.is_empty());
        assert_eq!(a.cost, 0);
        assert!(a.optimal);
    }

    #[test]
    fn raw_vertex_columns_round_trip_through_validation() {
        let g = sample_graph();
        let opts = LayoutOptions::new(4, 512);
        let heuristic = assign_columns(&g, &opts).unwrap();
        let rebuilt = assignment_from_vertex_columns(&g, &opts, &heuristic.vertex_columns).unwrap();
        assert_eq!(rebuilt.vertex_columns, heuristic.vertex_columns);
        assert_eq!(rebuilt.var_columns, heuristic.var_columns);
        assert_eq!(rebuilt.cost, heuristic.cost);
    }

    #[test]
    fn raw_vertex_columns_are_validated() {
        let g = sample_graph();
        let opts = LayoutOptions::new(4, 512);
        assert!(matches!(
            validate_vertex_columns(&g, &opts, &[0, 1]),
            Err(LayoutError::VertexCountMismatch {
                expected: 4,
                got: 2
            })
        ));
        assert!(matches!(
            validate_vertex_columns(&g, &opts, &[0, 1, 2, 9]),
            Err(LayoutError::VertexColumnOutOfRange {
                vertex: 3,
                column: 9,
                ..
            })
        ));
        let forced = LayoutOptions::new(4, 512).force(VarId(3), 2);
        assert!(matches!(
            validate_vertex_columns(&g, &forced, &[0, 1, 2, 3]),
            Err(LayoutError::ForcedPlacementViolated {
                var: VarId(3),
                expected: 2,
                got: 3
            })
        ));
        validate_vertex_columns(&g, &forced, &[0, 1, 3, 2]).unwrap();
        assert!(matches!(
            validate_vertex_columns(&g, &LayoutOptions::new(0, 512), &[]),
            Err(LayoutError::NoColumns)
        ));
        let unknown = LayoutOptions::new(4, 512).force(VarId(9), 0);
        assert!(matches!(
            validate_vertex_columns(&g, &unknown, &[0, 1, 2, 3]),
            Err(LayoutError::UnknownVariable { var: VarId(9) })
        ));
    }

    #[test]
    fn decoded_assignments_recompute_cost() {
        let g = sample_graph();
        let opts = LayoutOptions::new(2, 512);
        // vertices 0 and 1 share column 0: cost is their edge weight, 10
        let a = assignment_from_vertex_columns(&g, &opts, &[0, 0, 1, 1]).unwrap();
        assert_eq!(a.cost, 10);
        assert!(!a.optimal);
        assert_eq!(a.merges, 0);
    }

    #[test]
    fn heavily_conflicting_variable_gets_own_column() {
        // v0 conflicts heavily with everyone; with 2 columns the lighter pair shares.
        let mut g = ConflictGraph::new();
        for i in 0..3 {
            g.add_vertex(vertex(i, 128, 50));
        }
        g.set_weight(0, 1, 1000);
        g.set_weight(0, 2, 1000);
        g.set_weight(1, 2, 1);
        let a = assign_columns(&g, &LayoutOptions::new(2, 512)).unwrap();
        assert_eq!(a.cost, 1);
        assert_ne!(a.vertex_columns[0], a.vertex_columns[1]);
        assert_ne!(a.vertex_columns[0], a.vertex_columns[2]);
        assert_eq!(a.vertex_columns[1], a.vertex_columns[2]);
    }
}
