//! The weighted conflict graph over program variables.
//!
//! Section 3.1 of the paper builds a complete undirected graph whose vertices are the
//! program's array variables and whose edge weights quantify the number of *potential
//! conflicts* incurred when two variables share a column. The column-assignment step then
//! colors this graph. [`ConflictGraph`] stores the vertices (with their sizes and access
//! counts, needed for splitting and scratchpad decisions) and a sparse map of non-zero edge
//! weights; zero-weight edges are implicit and are exactly the edges the paper deletes
//! before coloring.

use crate::error::LayoutError;
use ccache_trace::VarId;
use std::collections::BTreeMap;

/// A vertex of the conflict graph: one assignable unit (a variable or a split piece of one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vertex {
    /// The underlying program variable.
    pub var: VarId,
    /// Human-readable name (for reports).
    pub name: String,
    /// Size in bytes of the unit.
    pub size: u64,
    /// Total number of accesses attributed to the unit.
    pub accesses: u64,
}

/// Undirected weighted graph over assignable units.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConflictGraph {
    vertices: Vec<Vertex>,
    /// Sparse non-zero edge weights keyed by (min index, max index).
    edges: BTreeMap<(usize, usize), u64>,
}

impl ConflictGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        ConflictGraph::default()
    }

    /// Adds a vertex and returns its index.
    pub fn add_vertex(&mut self, vertex: Vertex) -> usize {
        self.vertices.push(vertex);
        self.vertices.len() - 1
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of non-zero-weight edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Returns the vertex at `index`.
    pub fn vertex(&self, index: usize) -> Option<&Vertex> {
        self.vertices.get(index)
    }

    /// Iterates over the vertices in index order.
    pub fn vertices(&self) -> impl Iterator<Item = (usize, &Vertex)> {
        self.vertices.iter().enumerate()
    }

    /// Finds the index of the (first) vertex for a variable.
    pub fn index_of(&self, var: VarId) -> Option<usize> {
        self.vertices.iter().position(|v| v.var == var)
    }

    /// Finds the index of the vertex for a variable or returns an error.
    pub fn try_index_of(&self, var: VarId) -> Result<usize, LayoutError> {
        self.index_of(var)
            .ok_or(LayoutError::UnknownVariable { var })
    }

    /// Sets the weight of the undirected edge `(a, b)`. A weight of zero removes the edge.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of range.
    pub fn set_weight(&mut self, a: usize, b: usize, weight: u64) {
        assert!(a != b, "self-loops are not allowed");
        assert!(a < self.vertices.len() && b < self.vertices.len());
        let key = (a.min(b), a.max(b));
        if weight == 0 {
            self.edges.remove(&key);
        } else {
            self.edges.insert(key, weight);
        }
    }

    /// Adds `weight` to the edge `(a, b)`.
    pub fn add_weight(&mut self, a: usize, b: usize, weight: u64) {
        if weight == 0 || a == b {
            return;
        }
        let key = (a.min(b), a.max(b));
        *self.edges.entry(key).or_insert(0) += weight;
    }

    /// Returns the weight of edge `(a, b)` (zero if absent).
    pub fn weight(&self, a: usize, b: usize) -> u64 {
        if a == b {
            return 0;
        }
        let key = (a.min(b), a.max(b));
        self.edges.get(&key).copied().unwrap_or(0)
    }

    /// Iterates over non-zero edges as `(a, b, weight)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        self.edges.iter().map(|(&(a, b), &w)| (a, b, w))
    }

    /// The neighbors of `v` joined by non-zero edges.
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        self.edges
            .keys()
            .filter_map(|&(a, b)| {
                if a == v {
                    Some(b)
                } else if b == v {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Degree of `v` counting only non-zero edges.
    pub fn degree(&self, v: usize) -> usize {
        self.neighbors(v).len()
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> u64 {
        self.edges.values().sum()
    }

    /// Returns the minimum-weight non-zero edge as `(a, b, weight)`, breaking ties by the
    /// smallest vertex pair, or `None` if the graph has no edges. This is the edge the
    /// paper's merging heuristic collapses when the graph is not `k`-colorable.
    pub fn min_weight_edge(&self) -> Option<(usize, usize, u64)> {
        self.edges
            .iter()
            .min_by_key(|(&(a, b), &w)| (w, a, b))
            .map(|(&(a, b), &w)| (a, b, w))
    }

    /// Evaluates the paper's cost function `W` for an assignment of vertices to columns:
    /// the sum of weights of edges whose endpoints share a column. `assignment[i]` is the
    /// column of vertex `i`.
    pub fn assignment_cost(&self, assignment: &[usize]) -> u64 {
        self.edges
            .iter()
            .filter(|(&(a, b), _)| assignment[a] == assignment[b])
            .map(|(_, &w)| w)
            .sum()
    }

    /// Returns a new graph in which vertices `a` and `b` are merged (the paper's heuristic
    /// step), together with a mapping from old vertex indices to new ones.
    ///
    /// The merged vertex keeps `a`'s variable identity, sums the sizes and access counts,
    /// and for every other vertex `x` the new edge weight is `w(a,x) + w(b,x)`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of range.
    pub fn merged(&self, a: usize, b: usize) -> (ConflictGraph, Vec<usize>) {
        assert!(a != b && a < self.vertex_count() && b < self.vertex_count());
        let (keep, drop) = (a.min(b), a.max(b));
        let mut mapping = Vec::with_capacity(self.vertex_count());
        let mut new_vertices = Vec::with_capacity(self.vertex_count() - 1);
        for (i, v) in self.vertices.iter().enumerate() {
            if i == drop {
                mapping.push(usize::MAX); // patched below
                continue;
            }
            mapping.push(new_vertices.len());
            let mut nv = v.clone();
            if i == keep {
                let dropped = &self.vertices[drop];
                nv.size += dropped.size;
                nv.accesses += dropped.accesses;
                nv.name = format!("{}+{}", nv.name, dropped.name);
            }
            new_vertices.push(nv);
        }
        mapping[drop] = mapping[keep];

        let mut g = ConflictGraph {
            vertices: new_vertices,
            edges: BTreeMap::new(),
        };
        for (&(x, y), &w) in &self.edges {
            let nx = mapping[x];
            let ny = mapping[y];
            if nx != ny {
                g.add_weight(nx, ny, w);
            }
        }
        (g, mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32, size: u64, accesses: u64) -> Vertex {
        Vertex {
            var: VarId(i),
            name: format!("v{i}"),
            size,
            accesses,
        }
    }

    fn triangle() -> ConflictGraph {
        let mut g = ConflictGraph::new();
        g.add_vertex(v(0, 100, 10));
        g.add_vertex(v(1, 200, 20));
        g.add_vertex(v(2, 300, 30));
        g.set_weight(0, 1, 5);
        g.set_weight(1, 2, 3);
        g.set_weight(0, 2, 7);
        g
    }

    #[test]
    fn vertices_and_edges_accessors() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.weight(0, 1), 5);
        assert_eq!(g.weight(1, 0), 5);
        assert_eq!(g.weight(0, 0), 0);
        assert_eq!(g.total_weight(), 15);
        assert_eq!(g.index_of(VarId(2)), Some(2));
        assert!(g.try_index_of(VarId(9)).is_err());
        assert_eq!(g.vertex(1).unwrap().size, 200);
        assert_eq!(g.vertices().count(), 3);
    }

    #[test]
    fn zero_weight_edges_are_deleted() {
        let mut g = triangle();
        g.set_weight(0, 1, 0);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.weight(0, 1), 0);
        assert_eq!(g.neighbors(0), vec![2]);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn add_weight_accumulates() {
        let mut g = triangle();
        g.add_weight(0, 1, 5);
        assert_eq!(g.weight(0, 1), 10);
        g.add_weight(0, 1, 0); // no-op
        assert_eq!(g.weight(0, 1), 10);
    }

    #[test]
    fn min_weight_edge_finds_smallest() {
        let g = triangle();
        assert_eq!(g.min_weight_edge(), Some((1, 2, 3)));
        let empty = ConflictGraph::new();
        assert_eq!(empty.min_weight_edge(), None);
    }

    #[test]
    fn assignment_cost_counts_same_column_pairs() {
        let g = triangle();
        // all in different columns: W = 0
        assert_eq!(g.assignment_cost(&[0, 1, 2]), 0);
        // 0 and 1 share: W = 5
        assert_eq!(g.assignment_cost(&[0, 0, 1]), 5);
        // all share: W = 15
        assert_eq!(g.assignment_cost(&[2, 2, 2]), 15);
    }

    #[test]
    fn merged_combines_vertices_and_sums_parallel_edges() {
        let g = triangle();
        let (m, mapping) = g.merged(1, 2);
        assert_eq!(m.vertex_count(), 2);
        assert_eq!(mapping, vec![0, 1, 1]);
        // merged vertex keeps weights to 0 summed: 5 + 7 = 12
        assert_eq!(m.weight(0, 1), 12);
        let merged_vertex = m.vertex(1).unwrap();
        assert_eq!(merged_vertex.size, 500);
        assert_eq!(merged_vertex.accesses, 50);
        assert!(merged_vertex.name.contains('+'));
    }

    #[test]
    fn merged_drops_internal_edge() {
        let mut g = ConflictGraph::new();
        g.add_vertex(v(0, 1, 1));
        g.add_vertex(v(1, 1, 1));
        g.set_weight(0, 1, 9);
        let (m, _) = g.merged(0, 1);
        assert_eq!(m.vertex_count(), 1);
        assert_eq!(m.edge_count(), 0);
        assert_eq!(m.total_weight(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        let mut g = triangle();
        g.set_weight(1, 1, 4);
    }
}
