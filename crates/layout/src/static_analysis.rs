//! Approximate, compile-time weight computation (Section 3.1.1, second method).
//!
//! When no profile is available the paper estimates access counts and lifetimes from the
//! compiler's intermediate form: loop iteration counts and branch probabilities give an
//! expected number of accesses per variable, and the position of statements gives an
//! approximate lifetime. This module provides a small loop/branch/access IR
//! ([`ProgramIr`]) and derives a [`ConflictGraph`] from it.

use crate::graph::{ConflictGraph, Vertex};
use ccache_trace::{Interval, SymbolTable, VarId};
use std::collections::BTreeMap;

/// One statement of the analysis IR.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `count` accesses to `var` each time this statement executes.
    Access {
        /// The accessed variable.
        var: VarId,
        /// Accesses per execution of the statement.
        count: u64,
        /// Whether the accesses are writes (recorded but not used for weights).
        write: bool,
    },
    /// A counted loop executing its body `iterations` times.
    Loop {
        /// Estimated iteration count.
        iterations: u64,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A two-way branch taken with probability `probability`.
    Branch {
        /// Probability of taking the `then_body` (0.0 ..= 1.0).
        probability: f64,
        /// Statements executed when the branch is taken.
        then_body: Vec<Stmt>,
        /// Statements executed when the branch is not taken.
        else_body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Convenience constructor for a read access.
    pub fn read(var: VarId, count: u64) -> Stmt {
        Stmt::Access {
            var,
            count,
            write: false,
        }
    }

    /// Convenience constructor for a write access.
    pub fn write(var: VarId, count: u64) -> Stmt {
        Stmt::Access {
            var,
            count,
            write: true,
        }
    }

    /// Convenience constructor for a loop.
    pub fn repeat(iterations: u64, body: Vec<Stmt>) -> Stmt {
        Stmt::Loop { iterations, body }
    }
}

/// Estimated per-variable statistics derived from the IR.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatedVariable {
    /// The variable.
    pub var: VarId,
    /// Expected number of accesses over the whole program.
    pub expected_accesses: f64,
    /// Approximate lifetime in units of expected program position.
    pub lifetime: Interval,
}

/// A procedure (or whole program) in the analysis IR.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramIr {
    /// Top-level statements in program order.
    pub stmts: Vec<Stmt>,
}

impl ProgramIr {
    /// Creates an empty program.
    pub fn new() -> Self {
        ProgramIr { stmts: Vec::new() }
    }

    /// Creates a program from statements.
    pub fn from_stmts(stmts: Vec<Stmt>) -> Self {
        ProgramIr { stmts }
    }

    /// Appends a statement.
    pub fn push(&mut self, stmt: Stmt) {
        self.stmts.push(stmt);
    }

    /// Estimates per-variable access counts and approximate lifetimes.
    ///
    /// The walk maintains an *expected position* counter that advances by the expected
    /// number of accesses executed; a variable's lifetime spans from the position of its
    /// first (possible) access to its last.
    pub fn estimate(&self) -> Vec<EstimatedVariable> {
        #[derive(Default)]
        struct Acc {
            expected: f64,
            first: Option<f64>,
            last: f64,
        }
        fn walk(stmts: &[Stmt], multiplier: f64, pos: &mut f64, acc: &mut BTreeMap<VarId, Acc>) {
            for stmt in stmts {
                match stmt {
                    Stmt::Access { var, count, .. } => {
                        let expected = multiplier * *count as f64;
                        let entry = acc.entry(*var).or_default();
                        entry.expected += expected;
                        if entry.first.is_none() {
                            entry.first = Some(*pos);
                        }
                        *pos += expected;
                        entry.last = *pos;
                    }
                    Stmt::Loop { iterations, body } => {
                        let start = *pos;
                        walk(body, multiplier * *iterations as f64, pos, acc);
                        let end = *pos;
                        // Every variable accessed inside the loop is live for the whole
                        // loop execution (iterations interleave its accesses with the
                        // others'), so extend those lifetimes to span [start, end].
                        for a in acc.values_mut() {
                            if a.last > start {
                                if let Some(first) = a.first.as_mut() {
                                    if *first > start {
                                        *first = start;
                                    }
                                }
                                if a.last < end {
                                    a.last = end;
                                }
                            }
                        }
                    }
                    Stmt::Branch {
                        probability,
                        then_body,
                        else_body,
                    } => {
                        let p = probability.clamp(0.0, 1.0);
                        walk(then_body, multiplier * p, pos, acc);
                        walk(else_body, multiplier * (1.0 - p), pos, acc);
                    }
                }
            }
        }
        let mut acc = BTreeMap::new();
        let mut pos = 0.0;
        walk(&self.stmts, 1.0, &mut pos, &mut acc);
        acc.into_iter()
            .map(|(var, a)| EstimatedVariable {
                var,
                expected_accesses: a.expected,
                lifetime: Interval::new(
                    a.first.unwrap_or(0.0).round() as u64,
                    (a.last.round() as u64).max(a.first.unwrap_or(0.0).round() as u64),
                )
                .expect("last >= first by construction"),
            })
            .collect()
    }

    /// Derives a conflict graph from the IR estimates.
    ///
    /// Two variables with overlapping approximate lifetimes get an edge weighted by the
    /// minimum of their expected access counts *inside the overlap*, assuming accesses are
    /// uniformly distributed over each variable's lifetime — the compile-time analogue of
    /// the profile-based `MIN(n^j_i, n^i_j)` weight.
    pub fn conflict_graph(&self, symbols: &SymbolTable) -> (ConflictGraph, Vec<VarId>) {
        let estimates = self.estimate();
        let vars: Vec<VarId> = estimates.iter().map(|e| e.var).collect();
        let mut graph = ConflictGraph::new();
        for est in &estimates {
            let (name, size) = symbols
                .region(est.var)
                .map(|r| (r.name.clone(), r.size))
                .unwrap_or_else(|| (est.var.to_string(), 0));
            graph.add_vertex(Vertex {
                var: est.var,
                name,
                size,
                accesses: est.expected_accesses.round() as u64,
            });
        }
        for i in 0..estimates.len() {
            for j in (i + 1)..estimates.len() {
                let (a, b) = (&estimates[i], &estimates[j]);
                let Some(delta) = a.lifetime.intersection(&b.lifetime) else {
                    continue;
                };
                // A single-point overlap is an artefact of one phase ending exactly where
                // the next begins; it represents no real interleaving.
                if delta.len() <= 1 {
                    continue;
                }
                let frac_a = delta.len() as f64 / a.lifetime.len() as f64;
                let frac_b = delta.len() as f64 / b.lifetime.len() as f64;
                let w = (a.expected_accesses * frac_a)
                    .min(b.expected_accesses * frac_b)
                    .round() as u64;
                if w > 0 {
                    graph.set_weight(i, j, w);
                }
            }
        }
        (graph, vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_iterations_multiply_access_counts() {
        let ir = ProgramIr::from_stmts(vec![Stmt::repeat(
            10,
            vec![Stmt::read(VarId(0), 2), Stmt::write(VarId(1), 1)],
        )]);
        let est = ir.estimate();
        assert_eq!(est.len(), 2);
        assert!((est[0].expected_accesses - 20.0).abs() < 1e-9);
        assert!((est[1].expected_accesses - 10.0).abs() < 1e-9);
    }

    #[test]
    fn branch_probabilities_scale_counts() {
        let ir = ProgramIr::from_stmts(vec![Stmt::Branch {
            probability: 0.25,
            then_body: vec![Stmt::read(VarId(0), 100)],
            else_body: vec![Stmt::read(VarId(1), 100)],
        }]);
        let est = ir.estimate();
        assert!((est[0].expected_accesses - 25.0).abs() < 1e-9);
        assert!((est[1].expected_accesses - 75.0).abs() < 1e-9);
        // out-of-range probabilities are clamped
        let ir = ProgramIr::from_stmts(vec![Stmt::Branch {
            probability: 2.0,
            then_body: vec![Stmt::read(VarId(0), 10)],
            else_body: vec![],
        }]);
        assert!((ir.estimate()[0].expected_accesses - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_phases_have_disjoint_lifetimes() {
        let ir = ProgramIr::from_stmts(vec![
            Stmt::repeat(100, vec![Stmt::read(VarId(0), 1)]),
            Stmt::repeat(100, vec![Stmt::read(VarId(1), 1)]),
        ]);
        let symbols = SymbolTable::new();
        let (g, vars) = ir.conflict_graph(&symbols);
        assert_eq!(vars.len(), 2);
        assert_eq!(g.edge_count(), 0, "sequential phases must not conflict");
    }

    #[test]
    fn interleaved_loop_produces_edge() {
        let ir = ProgramIr::from_stmts(vec![Stmt::repeat(
            50,
            vec![Stmt::read(VarId(0), 1), Stmt::read(VarId(1), 2)],
        )]);
        let mut symbols = SymbolTable::new();
        symbols.allocate("a", 64, 8).unwrap();
        symbols.allocate("b", 64, 8).unwrap();
        let (g, _) = ir.conflict_graph(&symbols);
        assert_eq!(g.edge_count(), 1);
        // min(50, 100) scaled by near-full overlap: roughly 50
        let w = g.weight(0, 1);
        assert!((40..=50).contains(&w), "weight {w} outside expected band");
        assert_eq!(g.vertex(0).unwrap().name, "a");
        assert_eq!(g.vertex(0).unwrap().size, 64);
    }

    #[test]
    fn empty_program_yields_empty_graph() {
        let ir = ProgramIr::new();
        let (g, vars) = ir.conflict_graph(&SymbolTable::new());
        assert!(g.is_empty());
        assert!(vars.is_empty());
        assert!(ir.estimate().is_empty());
    }

    #[test]
    fn push_builds_program_incrementally() {
        let mut ir = ProgramIr::new();
        ir.push(Stmt::read(VarId(3), 4));
        assert_eq!(ir.stmts.len(), 1);
        let est = ir.estimate();
        assert_eq!(est[0].var, VarId(3));
        assert_eq!(est[0].lifetime, Interval::new(0, 4).unwrap());
    }
}
