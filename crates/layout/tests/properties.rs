//! Property-based tests of the layout algorithms' invariants.

use ccache_layout::coloring::{greedy_coloring, is_proper, k_colorable, DEFAULT_SEARCH_BUDGET};
use ccache_layout::weights::{conflict_graph_from_trace, UnitMap, WeightOptions};
use ccache_layout::{assign_columns, ConflictGraph, LayoutOptions, Vertex};
use ccache_trace::{AccessKind, SymbolTable, TraceRecorder, VarId};
use proptest::prelude::*;

fn arbitrary_graph(max_vertices: usize) -> impl Strategy<Value = ConflictGraph> {
    (2usize..max_vertices).prop_flat_map(|n| {
        prop::collection::vec(0u64..100, n * (n - 1) / 2).prop_map(move |weights| {
            let mut g = ConflictGraph::new();
            for i in 0..n {
                g.add_vertex(Vertex {
                    var: VarId(i as u32),
                    name: format!("v{i}"),
                    size: 32 * (i as u64 + 1),
                    accesses: 5,
                });
            }
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if weights[k] > 0 {
                        g.set_weight(i, j, weights[k]);
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merging the minimum-weight edge reduces the vertex count by one, preserves total
    /// weight minus the merged edge, and keeps the assignment-cost function consistent.
    #[test]
    fn merge_preserves_weight_accounting(graph in arbitrary_graph(9)) {
        if let Some((a, b, w)) = graph.min_weight_edge() {
            let (merged, mapping) = graph.merged(a, b);
            prop_assert_eq!(merged.vertex_count(), graph.vertex_count() - 1);
            prop_assert_eq!(mapping.len(), graph.vertex_count());
            prop_assert_eq!(mapping[a], mapping[b]);
            prop_assert_eq!(merged.total_weight(), graph.total_weight() - w);
        }
    }

    /// `k_colorable` decisions are monotone in `k`: if a graph is k-colorable it is also
    /// (k+1)-colorable.
    #[test]
    fn colorability_is_monotone(graph in arbitrary_graph(8), k in 1usize..5) {
        let small = k_colorable(&graph, k, DEFAULT_SEARCH_BUDGET).unwrap();
        let big = k_colorable(&graph, k + 1, DEFAULT_SEARCH_BUDGET).unwrap();
        if small.is_some() {
            prop_assert!(big.is_some());
        }
        if let Some(c) = small {
            prop_assert!(is_proper(&graph, &c));
        }
    }

    /// Forced variables always end up in their forced column and never raise the cost of
    /// the remaining assignment above the cost of ignoring them entirely plus their edges.
    #[test]
    fn forced_assignments_are_respected(graph in arbitrary_graph(7), forced_col in 0usize..4) {
        let forced_var = VarId(0);
        let opts = LayoutOptions::new(4, 512).force(forced_var, forced_col);
        let a = assign_columns(&graph, &opts).unwrap();
        let idx = graph.index_of(forced_var).unwrap();
        prop_assert_eq!(a.vertex_columns[idx], forced_col);
        prop_assert!(a.columns_of(forced_var).contains(&forced_col));
    }

    /// The greedy coloring of the unit-level conflict graph built from a random trace is
    /// proper, and every unit resolves back to a region of the symbol table.
    #[test]
    fn trace_to_graph_pipeline_is_consistent(
        var_sizes in prop::collection::vec(64u64..1500, 2..6),
        ops in prop::collection::vec((0usize..6, 0u64..64), 10..300),
    ) {
        let mut rec = TraceRecorder::new();
        let vars: Vec<VarId> = var_sizes
            .iter()
            .enumerate()
            .map(|(i, s)| rec.allocate(&format!("v{i}"), *s, 8))
            .collect();
        for (v, off) in &ops {
            let var = vars[v % vars.len()];
            rec.record(var, off % var_sizes[v % vars.len()], 4, AccessKind::Read);
        }
        let (trace, symbols) = rec.finish();
        let opts = WeightOptions { column_bytes: 512, split_large_variables: true, min_accesses: 1 };
        let (graph, units) = conflict_graph_from_trace(&trace, &symbols, &opts);
        prop_assert_eq!(graph.vertex_count(), units.len());
        // every unit's (var, offset) resolves back to itself
        for (i, unit) in units.iter().enumerate() {
            prop_assert_eq!(units.resolve(unit.var, unit.offset), Some(i));
            prop_assert!(unit.size <= 512 || !opts.split_large_variables);
        }
        let coloring = greedy_coloring(&graph);
        prop_assert!(is_proper(&graph, &coloring));
    }

    /// Unit maps partition each variable exactly: unit sizes sum to the variable size and
    /// offsets tile the variable without gaps or overlap.
    #[test]
    fn unit_maps_tile_variables(sizes in prop::collection::vec(1u64..5000, 1..8), column in 64u64..1024) {
        let mut symbols = SymbolTable::new();
        for (i, s) in sizes.iter().enumerate() {
            symbols.allocate(&format!("v{i}"), *s, 8).unwrap();
        }
        let opts = WeightOptions { column_bytes: column, split_large_variables: true, min_accesses: 1 };
        let units = UnitMap::from_symbols(&symbols, &opts);
        for region in symbols.iter() {
            let mut parts: Vec<_> = units
                .iter()
                .filter(|u| u.var == region.id)
                .collect();
            parts.sort_by_key(|u| u.offset);
            let total: u64 = parts.iter().map(|u| u.size).sum();
            prop_assert_eq!(total, region.size);
            let mut expected_offset = 0;
            for p in parts {
                prop_assert_eq!(p.offset, expected_offset);
                expected_offset += p.size;
            }
        }
    }
}
