//! Error type for trace construction and analysis.

use std::fmt;

/// Errors produced while building or analysing traces.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// A variable identifier did not refer to any region in the symbol table.
    UnknownVariable {
        /// The numeric identifier that failed to resolve.
        id: u32,
    },
    /// A recorded access fell outside the bounds of its variable's region.
    OutOfBounds {
        /// The variable's name.
        name: String,
        /// Byte offset of the access within the variable.
        offset: u64,
        /// Size in bytes of the access.
        size: u64,
        /// Size of the variable's region in bytes.
        region_size: u64,
    },
    /// A region would overlap an existing region in the symbol table.
    OverlappingRegion {
        /// Name of the new region.
        name: String,
        /// Name of the existing region it overlaps.
        existing: String,
    },
    /// A region with zero size was requested.
    EmptyRegion {
        /// Name of the offending region.
        name: String,
    },
    /// An alignment that is zero or not a power of two was requested.
    BadAlignment {
        /// The requested alignment.
        align: u64,
    },
    /// A lifetime interval had `last < first`.
    InvalidInterval {
        /// First position of the interval.
        first: u64,
        /// Last position of the interval.
        last: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnknownVariable { id } => {
                write!(f, "unknown variable id {id}")
            }
            TraceError::OutOfBounds {
                name,
                offset,
                size,
                region_size,
            } => write!(
                f,
                "access of {size} bytes at offset {offset} is outside variable `{name}` of {region_size} bytes"
            ),
            TraceError::OverlappingRegion { name, existing } => {
                write!(f, "region `{name}` overlaps existing region `{existing}`")
            }
            TraceError::EmptyRegion { name } => {
                write!(f, "region `{name}` has zero size")
            }
            TraceError::BadAlignment { align } => {
                write!(f, "alignment {align} is not a nonzero power of two")
            }
            TraceError::InvalidInterval { first, last } => {
                write!(f, "interval [{first}, {last}] has last before first")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TraceError::UnknownVariable { id: 7 };
        assert_eq!(e.to_string(), "unknown variable id 7");
        let e = TraceError::OutOfBounds {
            name: "buf".into(),
            offset: 100,
            size: 8,
            region_size: 64,
        };
        assert!(e.to_string().contains("buf"));
        assert!(e.to_string().contains("64"));
        let e = TraceError::BadAlignment { align: 3 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
