//! Trace recorder used by the instrumented workloads.
//!
//! The recorder plays the role of the paper's profiler: workloads allocate their program
//! variables through it and report each read/write as the kernel executes. The result is a
//! [`Trace`] of annotated [`MemAccess`] events plus the [`SymbolTable`] describing where
//! every variable lives.

use crate::event::{AccessKind, MemAccess, VarId};
use crate::region::SymbolTable;
use crate::trace::Trace;

/// Records the memory-reference stream of an instrumented program.
///
/// # Example
///
/// ```
/// use ccache_trace::{TraceRecorder, AccessKind};
///
/// let mut rec = TraceRecorder::new();
/// let buf = rec.allocate("buf", 256, 64);
/// rec.record(buf, 0, 8, AccessKind::Write);
/// rec.record(buf, 8, 8, AccessKind::Read);
/// let (trace, symbols) = rec.finish();
/// assert_eq!(trace.len(), 2);
/// assert_eq!(symbols.by_name("buf").unwrap().size, 256);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    symbols: SymbolTable,
    trace: Trace,
    strict: bool,
}

impl TraceRecorder {
    /// Creates a recorder with a fresh symbol table.
    pub fn new() -> Self {
        TraceRecorder {
            symbols: SymbolTable::new(),
            trace: Trace::new(),
            strict: false,
        }
    }

    /// Creates a recorder whose variables are allocated starting at `base`.
    ///
    /// Multitasking experiments give each job a different base so that job address spaces
    /// are disjoint.
    pub fn with_base(base: u64) -> Self {
        TraceRecorder {
            symbols: SymbolTable::with_base(base),
            trace: Trace::new(),
            strict: false,
        }
    }

    /// Enables strict bounds checking: out-of-bounds accesses panic instead of being
    /// silently clamped. Useful in tests of the workloads themselves.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Allocates a variable of `size` bytes aligned to `align` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty or the alignment invalid; workload code treats these
    /// as programming errors.
    pub fn allocate(&mut self, name: &str, size: u64, align: u64) -> VarId {
        self.symbols
            .allocate(name, size, align)
            .unwrap_or_else(|e| panic!("allocating `{name}`: {e}"))
    }

    /// Allocates a variable sized to hold `count` elements of `elem_size` bytes each.
    pub fn allocate_array(&mut self, name: &str, count: u64, elem_size: u64) -> VarId {
        self.allocate(name, count.max(1) * elem_size, elem_size.max(1))
    }

    /// Records an access of `size` bytes at byte `offset` inside variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is unknown, or (in strict mode) if the access leaves the variable's
    /// region.
    pub fn record(&mut self, var: VarId, offset: u64, size: u32, kind: AccessKind) {
        let region = self
            .symbols
            .region(var)
            .unwrap_or_else(|| panic!("recording access to unknown variable {var}"));
        if self.strict && offset + u64::from(size) > region.size {
            panic!(
                "access of {size} bytes at offset {offset} outside `{}` ({} bytes)",
                region.name, region.size
            );
        }
        let addr = region.base + offset;
        self.trace.push(MemAccess {
            addr,
            size,
            kind,
            var: Some(var),
        });
    }

    /// Records a read of `size` bytes at `offset` inside `var`.
    #[inline]
    pub fn read(&mut self, var: VarId, offset: u64, size: u32) {
        self.record(var, offset, size, AccessKind::Read);
    }

    /// Records a write of `size` bytes at `offset` inside `var`.
    #[inline]
    pub fn write(&mut self, var: VarId, offset: u64, size: u32) {
        self.record(var, offset, size, AccessKind::Write);
    }

    /// Records an access at an absolute address not associated with any variable.
    pub fn record_raw(&mut self, addr: u64, size: u32, kind: AccessKind) {
        let var = self.symbols.resolve(addr);
        self.trace.push(MemAccess {
            addr,
            size,
            kind,
            var,
        });
    }

    /// Current number of recorded events.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Returns `true` if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Read-only view of the symbol table built so far.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Read-only view of the trace built so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the recorder and returns the trace and symbol table.
    pub fn finish(self) -> (Trace, SymbolTable) {
        (self.trace, self.symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_record_produce_annotated_events() {
        let mut rec = TraceRecorder::new();
        let a = rec.allocate("a", 128, 8);
        rec.read(a, 0, 8);
        rec.write(a, 8, 8);
        assert_eq!(rec.len(), 2);
        assert!(!rec.is_empty());
        let (t, s) = rec.finish();
        let base = s.by_name("a").unwrap().base;
        assert_eq!(t.get(0).unwrap().addr, base);
        assert_eq!(t.get(1).unwrap().addr, base + 8);
        assert_eq!(t.get(0).unwrap().var, Some(a));
        assert!(t.get(1).unwrap().is_write());
    }

    #[test]
    fn allocate_array_sizes_by_elements() {
        let mut rec = TraceRecorder::new();
        let v = rec.allocate_array("v", 10, 4);
        assert_eq!(rec.symbols().region(v).unwrap().size, 40);
    }

    #[test]
    fn with_base_separates_address_spaces() {
        let mut r1 = TraceRecorder::with_base(0x10_0000);
        let mut r2 = TraceRecorder::with_base(0x20_0000);
        let a = r1.allocate("a", 64, 8);
        let b = r2.allocate("b", 64, 8);
        assert!(r1.symbols().region(a).unwrap().base >= 0x10_0000);
        assert!(r2.symbols().region(b).unwrap().base >= 0x20_0000);
        assert!(r1.symbols().region(a).unwrap().base < 0x20_0000);
    }

    #[test]
    fn record_raw_resolves_known_addresses() {
        let mut rec = TraceRecorder::new();
        let a = rec.allocate("a", 64, 8);
        let base = rec.symbols().region(a).unwrap().base;
        rec.record_raw(base + 4, 4, AccessKind::Read);
        rec.record_raw(0xffff_0000, 4, AccessKind::Read);
        let (t, _) = rec.finish();
        assert_eq!(t.get(0).unwrap().var, Some(a));
        assert_eq!(t.get(1).unwrap().var, None);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn strict_mode_panics_on_out_of_bounds() {
        let mut rec = TraceRecorder::new().strict();
        let a = rec.allocate("a", 16, 8);
        rec.read(a, 16, 4);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn recording_unknown_variable_panics() {
        let mut rec = TraceRecorder::new();
        rec.read(VarId(3), 0, 4);
    }
}
