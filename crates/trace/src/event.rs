//! Memory reference events.

use std::fmt;

/// Identifier of a program variable (array or scalar) in a [`crate::region::SymbolTable`].
///
/// `VarId`s are dense indices handed out by the symbol table in allocation order, which
/// makes them usable as vector indices in the layout algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VarId {
    fn from(value: u32) -> Self {
        VarId(value)
    }
}

/// Whether a memory reference reads or writes its location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load from memory.
    Read,
    /// A store to memory.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }

    /// Returns `true` for [`AccessKind::Read`].
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

/// A single memory reference in a trace.
///
/// Addresses are byte addresses in a flat (simulated) physical address space. The optional
/// [`VarId`] annotation links the access back to the program variable that produced it so
/// that the data-layout algorithm can attribute conflicts to variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Byte address of the access.
    pub addr: u64,
    /// Size of the access in bytes (1, 2, 4, 8, ... ; never 0).
    pub size: u32,
    /// Whether the access is a read or a write.
    pub kind: AccessKind,
    /// The program variable this access belongs to, if known.
    pub var: Option<VarId>,
}

impl MemAccess {
    /// Creates a read access without a variable annotation.
    pub fn read(addr: u64, size: u32) -> Self {
        MemAccess {
            addr,
            size,
            kind: AccessKind::Read,
            var: None,
        }
    }

    /// Creates a write access without a variable annotation.
    pub fn write(addr: u64, size: u32) -> Self {
        MemAccess {
            addr,
            size,
            kind: AccessKind::Write,
            var: None,
        }
    }

    /// Attaches a variable annotation, returning the modified access.
    pub fn with_var(mut self, var: VarId) -> Self {
        self.var = Some(var);
        self
    }

    /// Returns the (inclusive) last byte address touched by this access.
    ///
    /// An access of size 0 is treated as touching a single byte.
    pub fn last_byte(&self) -> u64 {
        self.addr + u64::from(self.size.max(1)) - 1
    }

    /// Returns `true` if the access writes memory.
    #[inline]
    pub fn is_write(&self) -> bool {
        self.kind.is_write()
    }
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:#x}+{}", self.kind, self.addr, self.size)?;
        if let Some(v) = self.var {
            write!(f, " ({v})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_id_roundtrip_and_display() {
        let v = VarId::from(3u32);
        assert_eq!(v.index(), 3);
        assert_eq!(v.to_string(), "v3");
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Write.is_read());
    }

    #[test]
    fn constructors_set_kind() {
        let r = MemAccess::read(0x100, 4);
        assert_eq!(r.kind, AccessKind::Read);
        assert!(!r.is_write());
        let w = MemAccess::write(0x200, 8);
        assert!(w.is_write());
        assert_eq!(w.var, None);
    }

    #[test]
    fn with_var_attaches_annotation() {
        let a = MemAccess::read(0, 4).with_var(VarId(9));
        assert_eq!(a.var, Some(VarId(9)));
    }

    #[test]
    fn last_byte_is_inclusive() {
        assert_eq!(MemAccess::read(0x10, 4).last_byte(), 0x13);
        assert_eq!(MemAccess::read(0x10, 1).last_byte(), 0x10);
        // degenerate zero-size access treated as one byte
        assert_eq!(MemAccess::read(0x10, 0).last_byte(), 0x10);
    }

    #[test]
    fn display_contains_address_and_var() {
        let a = MemAccess::write(0x40, 4).with_var(VarId(2));
        let s = a.to_string();
        assert!(s.contains("0x40"));
        assert!(s.contains("v2"));
        assert!(s.starts_with('W'));
    }
}
