//! Synthetic reference-stream generators.
//!
//! These generators produce traces with controlled locality characteristics. They are used
//! by unit tests, property tests and the ablation benchmarks (e.g. to build a "streaming"
//! data structure that pollutes a cache, or a small hot working set).

use crate::event::{AccessKind, MemAccess, VarId};
use crate::trace::Trace;

/// Generates a sequential read scan over `[base, base + len)` in steps of `stride` bytes,
/// repeated `passes` times. Each access reads `access_size` bytes.
///
/// A single pass over a region larger than the cache is the classic "streaming" pattern
/// that evicts everything else; repeated passes over a small region model a hot loop.
pub fn sequential_scan(
    base: u64,
    len: u64,
    stride: u64,
    access_size: u32,
    passes: usize,
    var: Option<VarId>,
) -> Trace {
    assert!(stride > 0, "stride must be positive");
    let mut t = Trace::new();
    for _ in 0..passes {
        let mut off = 0;
        while off < len {
            let mut ev = MemAccess::read(base + off, access_size);
            ev.var = var;
            t.push(ev);
            off += stride;
        }
    }
    t
}

/// Generates a write-after-read update pattern over a region: every `stride` bytes the
/// location is first read then written, repeated `passes` times.
pub fn read_modify_write(
    base: u64,
    len: u64,
    stride: u64,
    access_size: u32,
    passes: usize,
    var: Option<VarId>,
) -> Trace {
    assert!(stride > 0, "stride must be positive");
    let mut t = Trace::new();
    for _ in 0..passes {
        let mut off = 0;
        while off < len {
            let mut r = MemAccess::read(base + off, access_size);
            r.var = var;
            t.push(r);
            let mut w = MemAccess::write(base + off, access_size);
            w.var = var;
            t.push(w);
            off += stride;
        }
    }
    t
}

/// Generates `count` accesses uniformly distributed over `[base, base + len)`, using a
/// deterministic linear-congruential sequence so results are reproducible without a
/// random-number dependency in this crate.
pub fn pseudo_random(
    base: u64,
    len: u64,
    access_size: u32,
    count: usize,
    seed: u64,
    var: Option<VarId>,
) -> Trace {
    assert!(len > 0, "region length must be positive");
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut t = Trace::with_capacity(count);
    for i in 0..count {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let off = (state >> 16) % len;
        let aligned = off - (off % u64::from(access_size.max(1)));
        let kind = if i % 4 == 3 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let mut ev = MemAccess {
            addr: base + aligned,
            size: access_size,
            kind,
            var: None,
        };
        ev.var = var;
        t.push(ev);
    }
    t
}

/// Interleaves several traces round-robin, `burst` events at a time, until all inputs are
/// exhausted. Models concurrent streams issued by one task (e.g. two input streams and an
/// output stream of a filter).
pub fn interleave(traces: &[Trace], burst: usize) -> Trace {
    assert!(burst > 0, "burst must be positive");
    let mut cursors = vec![0usize; traces.len()];
    let mut out = Trace::new();
    loop {
        let mut progressed = false;
        for (t, cur) in traces.iter().zip(cursors.iter_mut()) {
            let end = (*cur + burst).min(t.len());
            for i in *cur..end {
                out.push(*t.get(i).expect("index in range"));
            }
            if end > *cur {
                progressed = true;
            }
            *cur = end;
        }
        if !progressed {
            break;
        }
    }
    out
}

/// A pointer-chase style pattern: `count` dependent accesses over a region, where each next
/// address is a fixed permutation step of the previous one. Produces poor spatial locality
/// and (for regions larger than the cache) poor temporal locality.
pub fn pointer_chase(
    base: u64,
    len: u64,
    access_size: u32,
    count: usize,
    var: Option<VarId>,
) -> Trace {
    assert!(len >= u64::from(access_size.max(1)));
    let slots = (len / u64::from(access_size.max(1))).max(1);
    // An odd additive step of at least half the region visits every slot before repeating
    // (when slots is a power of two) while keeping consecutive accesses far apart.
    let step = (slots / 2 + 1) | 1;
    let mut slot: u64 = 0;
    let mut t = Trace::with_capacity(count);
    for _ in 0..count {
        let mut ev = MemAccess::read(base + slot * u64::from(access_size.max(1)), access_size);
        ev.var = var;
        t.push(ev);
        slot = (slot + step) % slots;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_covers_region_in_order() {
        let t = sequential_scan(0x1000, 64, 16, 4, 2, Some(VarId(1)));
        assert_eq!(t.len(), 8);
        assert_eq!(t.get(0).unwrap().addr, 0x1000);
        assert_eq!(t.get(3).unwrap().addr, 0x1030);
        assert_eq!(t.get(4).unwrap().addr, 0x1000); // second pass restarts
        assert!(t.iter().all(|e| e.var == Some(VarId(1))));
        assert!(t.iter().all(|e| !e.is_write()));
    }

    #[test]
    fn read_modify_write_alternates_kinds() {
        let t = read_modify_write(0, 32, 8, 8, 1, None);
        assert_eq!(t.len(), 8);
        assert!(!t.get(0).unwrap().is_write());
        assert!(t.get(1).unwrap().is_write());
        assert_eq!(t.get(0).unwrap().addr, t.get(1).unwrap().addr);
    }

    #[test]
    fn pseudo_random_is_deterministic_and_in_bounds() {
        let a = pseudo_random(0x4000, 1024, 4, 100, 42, None);
        let b = pseudo_random(0x4000, 1024, 4, 100, 42, None);
        assert_eq!(a, b);
        assert!(a.iter().all(|e| e.addr >= 0x4000 && e.addr < 0x4000 + 1024));
        let c = pseudo_random(0x4000, 1024, 4, 100, 43, None);
        assert_ne!(a, c);
        assert!(a.write_count() > 0);
    }

    #[test]
    fn interleave_round_robins_bursts() {
        let t1 = sequential_scan(0x1000, 32, 8, 4, 1, Some(VarId(0)));
        let t2 = sequential_scan(0x2000, 16, 8, 4, 1, Some(VarId(1)));
        let merged = interleave(&[t1.clone(), t2.clone()], 2);
        assert_eq!(merged.len(), t1.len() + t2.len());
        // first burst from t1, then first burst from t2
        assert_eq!(merged.get(0).unwrap().var, Some(VarId(0)));
        assert_eq!(merged.get(2).unwrap().var, Some(VarId(1)));
    }

    #[test]
    fn pointer_chase_stays_in_region_and_jumps() {
        let t = pointer_chase(0x8000, 256, 8, 50, None);
        assert_eq!(t.len(), 50);
        assert!(t.iter().all(|e| e.addr >= 0x8000 && e.addr < 0x8000 + 256));
        // consecutive accesses are rarely adjacent
        let adjacent = t
            .as_slice()
            .windows(2)
            .filter(|w| w[1].addr == w[0].addr + 8)
            .count();
        assert!(adjacent < 10);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_is_rejected() {
        let _ = sequential_scan(0, 64, 0, 4, 1, None);
    }
}
