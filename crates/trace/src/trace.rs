//! Ordered sequences of memory references.

use crate::event::{AccessKind, MemAccess, VarId};
use std::collections::BTreeMap;

/// An ordered sequence of memory references produced by one program, task or kernel.
///
/// A `Trace` is the unit of work consumed by the cache simulator: the simulator replays the
/// events in order and charges hit/miss latencies. Traces can be concatenated (sequential
/// phases of one program) or interleaved by the multitasking scheduler in
/// `ccache-workloads`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<MemAccess>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    /// Creates an empty trace with capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        Trace {
            events: Vec::with_capacity(n),
        }
    }

    /// Appends one event to the trace.
    #[inline]
    pub fn push(&mut self, event: MemAccess) {
        self.events.push(event);
    }

    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Returns the event at position `idx`.
    pub fn get(&self, idx: usize) -> Option<&MemAccess> {
        self.events.get(idx)
    }

    /// Iterates over the events in order.
    pub fn iter(&self) -> std::slice::Iter<'_, MemAccess> {
        self.events.iter()
    }

    /// Returns the events as a slice.
    pub fn as_slice(&self) -> &[MemAccess] {
        &self.events
    }

    /// Appends all events of `other` after the events of `self`.
    pub fn extend_from(&mut self, other: &Trace) {
        self.events.extend_from_slice(&other.events);
    }

    /// Concatenates traces in order into a new trace.
    pub fn concat<'a, I>(traces: I) -> Trace
    where
        I: IntoIterator<Item = &'a Trace>,
    {
        let mut out = Trace::new();
        for t in traces {
            out.extend_from(t);
        }
        out
    }

    /// Returns a sub-trace covering event positions `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn slice(&self, start: usize, end: usize) -> Trace {
        Trace {
            events: self.events[start..end].to_vec(),
        }
    }

    /// Number of write events.
    pub fn write_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_write()).count()
    }

    /// Number of read events.
    pub fn read_count(&self) -> usize {
        self.len() - self.write_count()
    }

    /// Number of events attributed to variable `var`.
    pub fn count_for(&self, var: VarId) -> usize {
        self.events.iter().filter(|e| e.var == Some(var)).count()
    }

    /// Per-variable access counts, for events that carry a variable annotation.
    pub fn counts_by_var(&self) -> BTreeMap<VarId, usize> {
        let mut map = BTreeMap::new();
        for e in &self.events {
            if let Some(v) = e.var {
                *map.entry(v).or_insert(0) += 1;
            }
        }
        map
    }

    /// The set of distinct cache-line addresses touched, for a given line size in bytes.
    ///
    /// Useful as a simple working-set-size estimate. `line_size` must be a power of two.
    pub fn footprint_lines(&self, line_size: u64) -> usize {
        assert!(line_size.is_power_of_two() && line_size > 0);
        let mut lines: Vec<u64> = self.events.iter().map(|e| e.addr / line_size).collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len()
    }

    /// Rewrites every event address by adding `offset` (used to relocate a per-task trace
    /// into a disjoint address range when simulating multiprogramming).
    pub fn relocate(&self, offset: u64) -> Trace {
        Trace {
            events: self
                .events
                .iter()
                .map(|e| MemAccess {
                    addr: e.addr + offset,
                    ..*e
                })
                .collect(),
        }
    }

    /// Splits the trace into chunks of at most `quantum` events, preserving order.
    ///
    /// Used by the round-robin multitasking model: each chunk is the stream issued during
    /// one scheduling quantum.
    pub fn chunks(&self, quantum: usize) -> impl Iterator<Item = &[MemAccess]> {
        assert!(quantum > 0, "quantum must be positive");
        self.events.chunks(quantum)
    }
}

impl FromIterator<MemAccess> for Trace {
    fn from_iter<T: IntoIterator<Item = MemAccess>>(iter: T) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<MemAccess> for Trace {
    fn extend<T: IntoIterator<Item = MemAccess>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MemAccess;
    type IntoIter = std::slice::Iter<'a, MemAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for Trace {
    type Item = MemAccess;
    type IntoIter = std::vec::IntoIter<MemAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl From<Vec<MemAccess>> for Trace {
    fn from(events: Vec<MemAccess>) -> Self {
        Trace { events }
    }
}

/// Summary statistics of a trace, convenient for reports and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total number of events.
    pub events: usize,
    /// Number of reads.
    pub reads: usize,
    /// Number of writes.
    pub writes: usize,
    /// Lowest address referenced (0 for an empty trace).
    pub min_addr: u64,
    /// Highest (inclusive last byte) address referenced (0 for an empty trace).
    pub max_addr: u64,
}

impl Trace {
    /// Computes summary statistics for the trace.
    pub fn stats(&self) -> TraceStats {
        let mut min_addr = u64::MAX;
        let mut max_addr = 0u64;
        let mut writes = 0usize;
        for e in &self.events {
            min_addr = min_addr.min(e.addr);
            max_addr = max_addr.max(e.last_byte());
            if e.kind == AccessKind::Write {
                writes += 1;
            }
        }
        if self.events.is_empty() {
            min_addr = 0;
        }
        TraceStats {
            events: self.len(),
            reads: self.len() - writes,
            writes,
            min_addr,
            max_addr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(MemAccess::read(0x100, 4).with_var(VarId(0)));
        t.push(MemAccess::write(0x200, 8).with_var(VarId(1)));
        t.push(MemAccess::read(0x104, 4).with_var(VarId(0)));
        t
    }

    #[test]
    fn push_len_get_iter() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.get(1).unwrap().addr, 0x200);
        assert_eq!(t.iter().count(), 3);
        assert_eq!(t.as_slice().len(), 3);
    }

    #[test]
    fn read_write_counts() {
        let t = sample();
        assert_eq!(t.write_count(), 1);
        assert_eq!(t.read_count(), 2);
    }

    #[test]
    fn counts_by_var_groups_annotated_events() {
        let t = sample();
        let counts = t.counts_by_var();
        assert_eq!(counts[&VarId(0)], 2);
        assert_eq!(counts[&VarId(1)], 1);
        assert_eq!(t.count_for(VarId(0)), 2);
        assert_eq!(t.count_for(VarId(7)), 0);
    }

    #[test]
    fn concat_and_extend_preserve_order() {
        let a = sample();
        let b = sample();
        let c = Trace::concat([&a, &b]);
        assert_eq!(c.len(), 6);
        assert_eq!(c.get(0).unwrap().addr, 0x100);
        assert_eq!(c.get(3).unwrap().addr, 0x100);
    }

    #[test]
    fn slice_and_chunks() {
        let t = sample();
        let s = t.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0).unwrap().addr, 0x200);
        let chunks: Vec<_> = t.chunks(2).collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(chunks[1].len(), 1);
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn chunks_rejects_zero_quantum() {
        let t = sample();
        let _ = t.chunks(0).count();
    }

    #[test]
    fn footprint_lines_counts_distinct_lines() {
        let t = sample();
        // lines of 0x100: {1, 2} => 2 lines
        assert_eq!(t.footprint_lines(0x100), 2);
        // lines of 4 bytes: 0x100, 0x200, 0x104 => 3 lines
        assert_eq!(t.footprint_lines(4), 3);
    }

    #[test]
    fn relocate_shifts_addresses() {
        let t = sample().relocate(0x1000);
        assert_eq!(t.get(0).unwrap().addr, 0x1100);
        assert_eq!(t.get(1).unwrap().addr, 0x1200);
        // kinds and vars preserved
        assert!(t.get(1).unwrap().is_write());
        assert_eq!(t.get(2).unwrap().var, Some(VarId(0)));
    }

    #[test]
    fn stats_summarise_trace() {
        let t = sample();
        let s = t.stats();
        assert_eq!(s.events, 3);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.min_addr, 0x100);
        assert_eq!(s.max_addr, 0x207);
        let empty = Trace::new().stats();
        assert_eq!(empty.events, 0);
        assert_eq!(empty.min_addr, 0);
        assert_eq!(empty.max_addr, 0);
    }

    #[test]
    fn from_iterator_and_extend() {
        let t: Trace = (0..10u64).map(|i| MemAccess::read(i * 4, 4)).collect();
        assert_eq!(t.len(), 10);
        let mut t2 = Trace::new();
        t2.extend(t.clone());
        assert_eq!(t2.len(), 10);
        let v: Vec<MemAccess> = t.into_iter().collect();
        assert_eq!(v.len(), 10);
    }
}
