//! Memory reference traces for the column-caching reproduction.
//!
//! This crate provides the *trace substrate* used throughout the workspace:
//!
//! * [`event::MemAccess`] — a single memory reference (address, size, read/write,
//!   optional program-variable annotation).
//! * [`trace::Trace`] — an ordered sequence of references, the unit consumed by the
//!   cache simulator in `ccache-sim`.
//! * [`region::SymbolTable`] and [`region::VariableRegion`] — the mapping between program
//!   variables (arrays, scalars) and the address ranges they occupy.
//! * [`recorder::TraceRecorder`] — used by the instrumented workloads in
//!   `ccache-workloads` to emit a reference stream while real Rust kernels execute.
//! * [`profile::AccessProfile`] — per-variable access counts and lifetimes derived from a
//!   trace, the input of the data-layout algorithm in `ccache-layout` (Section 3.1.1 of
//!   the paper).
//! * [`lifetime::Interval`] — lifetime intervals `[first, last]` over trace positions.
//! * [`synth`] — synthetic reference-stream generators used by tests and ablations.
//! * [`infer`] — symbol-table inference for raw traces (cluster touched lines into
//!   synthetic regions), so file traces without annotations can still drive the layout
//!   and search tooling.
//! * [`binfmt`] — the compact binary on-disk trace format (magic + version header,
//!   varint delta-encoded addresses, run-length read/write flags) and the streaming
//!   [`binfmt::TraceReader`] that replays traces larger than memory.
//! * [`textfmt`] — the line-oriented text trace format (`R 0x1000 4`) for hand-written
//!   traces and inspection.
//!
//! # Example
//!
//! ```
//! use ccache_trace::recorder::TraceRecorder;
//! use ccache_trace::event::AccessKind;
//!
//! let mut rec = TraceRecorder::new();
//! let a = rec.allocate("a", 64, 8);
//! let b = rec.allocate("b", 64, 8);
//! for i in 0..8u64 {
//!     rec.record(a, i * 8, 8, AccessKind::Read);
//!     rec.record(b, i * 8, 8, AccessKind::Write);
//! }
//! let (trace, symbols) = rec.finish();
//! assert_eq!(trace.len(), 16);
//! assert_eq!(symbols.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod binfmt;
pub mod error;
pub mod event;
pub mod infer;
pub mod lifetime;
pub mod profile;
pub mod recorder;
pub mod region;
pub mod synth;
pub mod textfmt;
pub mod trace;

pub use binfmt::{TraceHeader, TraceReader, TraceWriter};
pub use error::TraceError;
pub use event::{AccessKind, MemAccess, VarId};
pub use infer::infer_symbols;
pub use lifetime::Interval;
pub use profile::{AccessProfile, VariableProfile};
pub use recorder::TraceRecorder;
pub use region::{SymbolTable, VariableRegion};
pub use trace::Trace;
