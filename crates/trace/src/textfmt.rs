//! A line-oriented text trace format, for hand-written traces and inspection.
//!
//! One event per line: the access kind (`R` or `W`), the byte address (hexadecimal with a
//! `0x` prefix, or decimal), and the access size in bytes. Blank lines and lines starting
//! with `#` are ignored, so files can carry comments:
//!
//! ```text
//! # two reads and a write
//! R 0x1000 4
//! R 0x1004 4
//! W 4104 8
//! ```
//!
//! This is the human-facing companion of the compact binary format in [`crate::binfmt`]:
//! `ccache trace convert` translates between the two. Like the binary format, variable
//! annotations are not represented. Parse problems are reported as [`std::io::Error`]
//! with [`std::io::ErrorKind::InvalidData`] and a line number.

use crate::event::{AccessKind, MemAccess};
use crate::trace::Trace;
use std::io::{self, BufRead, Write};

fn invalid(line_no: usize, msg: &str, line: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("line {line_no}: {msg}: {line:?}"),
    )
}

fn parse_u64(token: &str) -> Option<u64> {
    if let Some(hex) = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        token.parse().ok()
    }
}

/// Parses one non-comment line into an event.
///
/// # Errors
///
/// Fails with [`std::io::ErrorKind::InvalidData`] if the line is not `R|W <addr> <size>`.
pub fn parse_line(line_no: usize, line: &str) -> io::Result<MemAccess> {
    let mut tokens = line.split_whitespace();
    let kind = match tokens.next() {
        Some("R") | Some("r") => AccessKind::Read,
        Some("W") | Some("w") => AccessKind::Write,
        _ => return Err(invalid(line_no, "expected access kind 'R' or 'W'", line)),
    };
    let addr = tokens
        .next()
        .and_then(parse_u64)
        .ok_or_else(|| invalid(line_no, "expected an address", line))?;
    let size = tokens
        .next()
        .and_then(parse_u64)
        .and_then(|s| u32::try_from(s).ok())
        .ok_or_else(|| invalid(line_no, "expected a size in bytes", line))?;
    if tokens.next().is_some() {
        return Err(invalid(line_no, "trailing tokens after size", line));
    }
    Ok(MemAccess {
        addr,
        size,
        kind,
        var: None,
    })
}

/// Reads a whole text trace from a buffered source.
///
/// # Errors
///
/// Fails on I/O errors or malformed lines.
pub fn read_trace<R: BufRead>(source: R) -> io::Result<Trace> {
    let mut trace = Trace::new();
    for (i, line) in source.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        trace.push(parse_line(i + 1, trimmed)?);
    }
    Ok(trace)
}

/// Writes one event as a text line (`R 0x1000 4`). This is the single definition of the
/// output grammar; [`write_trace`] and streaming converters both go through it.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_event<W: Write>(sink: &mut W, ev: &MemAccess) -> io::Result<()> {
    writeln!(
        sink,
        "{} {:#x} {}",
        if ev.is_write() { 'W' } else { 'R' },
        ev.addr,
        ev.size
    )
}

/// Writes a trace in the text format and returns the sink.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_trace<W: Write>(trace: &Trace, mut sink: W) -> io::Result<W> {
    for ev in trace {
        write_event(&mut sink, ev)?;
    }
    sink.flush()?;
    Ok(sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::VarId;
    use crate::synth::pseudo_random;

    #[test]
    fn round_trips_through_text() {
        let trace = pseudo_random(0x4000, 1024, 4, 200, 11, Some(VarId(3)));
        let bytes = write_trace(&trace, Vec::new()).unwrap();
        let back = read_trace(&bytes[..]).unwrap();
        let stripped: Trace = trace
            .iter()
            .map(|e| MemAccess { var: None, ..*e })
            .collect();
        assert_eq!(back, stripped);
    }

    #[test]
    fn comments_blanks_and_number_bases_are_accepted() {
        let text = "# header comment\n\nR 0x10 4\nw 32 8\n  # indented comment\nR 0X20 2\n";
        let trace = read_trace(text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.get(0).unwrap().addr, 0x10);
        assert!(trace.get(1).unwrap().is_write());
        assert_eq!(trace.get(1).unwrap().addr, 32);
        assert_eq!(trace.get(2).unwrap().addr, 0x20);
    }

    #[test]
    fn malformed_lines_name_the_line_number() {
        for bad in ["X 0x10 4", "R zzz 4", "R 0x10", "R 0x10 4 extra"] {
            let err = read_trace(format!("R 0x0 4\n{bad}\n").as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(err.to_string().contains("line 2"), "{err}");
        }
    }
}
