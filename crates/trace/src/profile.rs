//! Access profiles: per-variable statistics derived from a trace.
//!
//! The profile-based weight computation of the paper (Section 3.1.1) runs the program on a
//! representative data set to obtain a sequence of variable accesses, from which it derives
//! (i) each variable's total access count, (ii) each variable's lifetime interval and (iii)
//! for any time interval, the number of accesses each variable makes inside it. An
//! [`AccessProfile`] captures exactly this information.

use crate::error::TraceError;
use crate::event::VarId;
use crate::lifetime::Interval;
use crate::region::SymbolTable;
use crate::trace::Trace;
use std::collections::BTreeMap;

/// Per-variable profile: access count, lifetime and the ordered positions of its accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariableProfile {
    /// The variable this profile describes.
    pub var: VarId,
    /// Name copied from the symbol table (empty if the variable was not in the table).
    pub name: String,
    /// Size of the variable's region in bytes (0 if unknown).
    pub size: u64,
    /// Total number of accesses attributed to this variable.
    pub accesses: u64,
    /// Number of write accesses.
    pub writes: u64,
    /// Lifetime interval `[first, last]` over trace positions.
    pub lifetime: Interval,
    /// Sorted trace positions at which this variable was accessed.
    pub positions: Vec<u64>,
}

impl VariableProfile {
    /// Number of accesses this variable makes inside `interval` (inclusive bounds).
    ///
    /// This is the `n^j_i` quantity of the paper: the number of accesses of variable *i*
    /// during the lifetime intersection with variable *j*.
    pub fn accesses_in(&self, interval: &Interval) -> u64 {
        // positions are sorted, so binary search both ends.
        let lo = self.positions.partition_point(|&p| p < interval.first);
        let hi = self.positions.partition_point(|&p| p <= interval.last);
        (hi - lo) as u64
    }

    /// Mean number of accesses per byte of the variable, a density used to rank scalars.
    pub fn access_density(&self) -> f64 {
        if self.size == 0 {
            self.accesses as f64
        } else {
            self.accesses as f64 / self.size as f64
        }
    }
}

/// Access profile of an entire trace: one [`VariableProfile`] per annotated variable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessProfile {
    profiles: BTreeMap<VarId, VariableProfile>,
    /// Total number of events in the profiled trace (annotated or not).
    pub trace_len: u64,
}

impl AccessProfile {
    /// Builds a profile from a trace and the symbol table describing its variables.
    ///
    /// Events without a variable annotation are resolved through the symbol table by
    /// address; events that resolve to no region are counted in `trace_len` but attributed
    /// to no variable.
    pub fn from_trace(trace: &Trace, symbols: &SymbolTable) -> Self {
        let mut profiles: BTreeMap<VarId, VariableProfile> = BTreeMap::new();
        for (pos, ev) in trace.iter().enumerate() {
            let pos = pos as u64;
            let var = ev.var.or_else(|| symbols.resolve(ev.addr));
            let Some(var) = var else { continue };
            let entry = profiles.entry(var).or_insert_with(|| {
                let (name, size) = symbols
                    .region(var)
                    .map(|r| (r.name.clone(), r.size))
                    .unwrap_or_else(|| (String::new(), 0));
                VariableProfile {
                    var,
                    name,
                    size,
                    accesses: 0,
                    writes: 0,
                    lifetime: Interval::point(pos),
                    positions: Vec::new(),
                }
            });
            entry.accesses += 1;
            if ev.is_write() {
                entry.writes += 1;
            }
            entry.lifetime = entry.lifetime.extended_to(pos);
            entry.positions.push(pos);
        }
        AccessProfile {
            profiles,
            trace_len: trace.len() as u64,
        }
    }

    /// Number of profiled variables.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Returns `true` if no variable was profiled.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Returns the profile of one variable.
    pub fn get(&self, var: VarId) -> Option<&VariableProfile> {
        self.profiles.get(&var)
    }

    /// Returns the profile of one variable or an error naming it.
    pub fn try_get(&self, var: VarId) -> Result<&VariableProfile, TraceError> {
        self.get(var)
            .ok_or(TraceError::UnknownVariable { id: var.0 })
    }

    /// Iterates over the per-variable profiles in `VarId` order.
    pub fn iter(&self) -> impl Iterator<Item = &VariableProfile> {
        self.profiles.values()
    }

    /// The variables present in the profile, in `VarId` order.
    pub fn variables(&self) -> Vec<VarId> {
        self.profiles.keys().copied().collect()
    }

    /// Computes the paper's pairwise conflict quantity for two variables:
    /// `MIN(n^j_i, n^i_j)` where `n^j_i` is the number of accesses of `a` inside the
    /// lifetime intersection with `b` and vice versa. Returns 0 when lifetimes are
    /// disjoint or either variable is unknown.
    pub fn potential_conflicts(&self, a: VarId, b: VarId) -> u64 {
        let (Some(pa), Some(pb)) = (self.get(a), self.get(b)) else {
            return 0;
        };
        let Some(delta) = pa.lifetime.intersection(&pb.lifetime) else {
            return 0;
        };
        let n_a = pa.accesses_in(&delta);
        let n_b = pb.accesses_in(&delta);
        n_a.min(n_b)
    }

    /// Variables sorted by decreasing access count — the "heavily accessed" ranking used in
    /// Step 1 of the layout algorithm.
    pub fn by_access_count(&self) -> Vec<&VariableProfile> {
        let mut v: Vec<&VariableProfile> = self.profiles.values().collect();
        v.sort_by(|a, b| b.accesses.cmp(&a.accesses).then(a.var.cmp(&b.var)));
        v
    }
}

impl<'a> IntoIterator for &'a AccessProfile {
    type Item = &'a VariableProfile;
    type IntoIter = std::collections::btree_map::Values<'a, VarId, VariableProfile>;

    fn into_iter(self) -> Self::IntoIter {
        self.profiles.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessKind, MemAccess};
    use crate::recorder::TraceRecorder;

    fn two_var_setup() -> (Trace, SymbolTable, VarId, VarId) {
        let mut rec = TraceRecorder::new();
        let a = rec.allocate("a", 64, 8);
        let b = rec.allocate("b", 64, 8);
        // a accessed at positions 0..4, b at positions 4..10
        for i in 0..4u64 {
            rec.record(a, (i % 8) * 8, 8, AccessKind::Read);
        }
        for i in 0..6u64 {
            rec.record(b, (i % 8) * 8, 8, AccessKind::Write);
        }
        let (t, s) = rec.finish();
        (t, s, a, b)
    }

    #[test]
    fn profile_counts_and_lifetimes() {
        let (t, s, a, b) = two_var_setup();
        let p = AccessProfile::from_trace(&t, &s);
        assert_eq!(p.len(), 2);
        assert_eq!(p.trace_len, 10);
        let pa = p.get(a).unwrap();
        let pb = p.get(b).unwrap();
        assert_eq!(pa.accesses, 4);
        assert_eq!(pa.writes, 0);
        assert_eq!(pb.accesses, 6);
        assert_eq!(pb.writes, 6);
        assert_eq!(pa.lifetime, Interval::new(0, 3).unwrap());
        assert_eq!(pb.lifetime, Interval::new(4, 9).unwrap());
        assert_eq!(pa.name, "a");
        assert_eq!(pa.size, 64);
    }

    #[test]
    fn disjoint_lifetimes_have_zero_conflicts() {
        let (t, s, a, b) = two_var_setup();
        let p = AccessProfile::from_trace(&t, &s);
        assert_eq!(p.potential_conflicts(a, b), 0);
        assert_eq!(p.potential_conflicts(b, a), 0);
    }

    #[test]
    fn interleaved_lifetimes_report_min_access_count() {
        // Interleave: a b a b a b — both live in [0,5]
        let mut t = Trace::new();
        let mut s = SymbolTable::new();
        let a = s.allocate("a", 16, 8).unwrap();
        let b = s.allocate("b", 16, 8).unwrap();
        let ra = s.region(a).unwrap().base;
        let rb = s.region(b).unwrap().base;
        for i in 0..3 {
            t.push(MemAccess::read(ra + i * 4, 4).with_var(a));
            t.push(MemAccess::read(rb + i * 4, 4).with_var(b));
        }
        // one extra access of b after a dies
        t.push(MemAccess::read(rb, 4).with_var(b));
        let p = AccessProfile::from_trace(&t, &s);
        // intersection = [0, 4]; a has 3 accesses there, b has 2
        assert_eq!(p.potential_conflicts(a, b), 2);
        assert_eq!(p.potential_conflicts(a, b), p.potential_conflicts(b, a));
    }

    #[test]
    fn accesses_in_uses_inclusive_bounds() {
        let (t, s, _a, b) = two_var_setup();
        let p = AccessProfile::from_trace(&t, &s);
        let pb = p.get(b).unwrap();
        assert_eq!(pb.accesses_in(&Interval::new(4, 9).unwrap()), 6);
        assert_eq!(pb.accesses_in(&Interval::new(5, 8).unwrap()), 4);
        assert_eq!(pb.accesses_in(&Interval::new(0, 3).unwrap()), 0);
    }

    #[test]
    fn resolves_unannotated_events_through_symbol_table() {
        let mut s = SymbolTable::new();
        let a = s.allocate("a", 32, 8).unwrap();
        let base = s.region(a).unwrap().base;
        let mut t = Trace::new();
        t.push(MemAccess::read(base + 4, 4)); // no var annotation
        t.push(MemAccess::read(0xdead_0000, 4)); // resolves to nothing
        let p = AccessProfile::from_trace(&t, &s);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(a).unwrap().accesses, 1);
        assert_eq!(p.trace_len, 2);
    }

    #[test]
    fn ranking_by_access_count() {
        let (t, s, _a, b) = two_var_setup();
        let p = AccessProfile::from_trace(&t, &s);
        let ranked = p.by_access_count();
        assert_eq!(ranked[0].var, b);
        assert_eq!(ranked.len(), 2);
        assert!(p.try_get(VarId(99)).is_err());
    }

    #[test]
    fn access_density_handles_zero_size() {
        let vp = VariableProfile {
            var: VarId(0),
            name: "x".into(),
            size: 0,
            accesses: 5,
            writes: 0,
            lifetime: Interval::point(0),
            positions: vec![0, 1, 2, 3, 4],
        };
        assert_eq!(vp.access_density(), 5.0);
    }
}
