//! Lifetime intervals over trace positions.
//!
//! Section 3.1.1 of the paper defines the life-time of a variable as the period between its
//! definition (first access in the profile) and its last use, and computes edge weights from
//! the *intersection* of two variables' lifetimes. An [`Interval`] is a closed range
//! `[first, last]` of trace positions.

use crate::error::TraceError;
use std::fmt;

/// A closed interval `[first, last]` of trace positions (event indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Position of the first access (the variable's definition point).
    pub first: u64,
    /// Position of the last access (the variable's last use).
    pub last: u64,
}

impl Interval {
    /// Creates an interval, validating that `first <= last`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidInterval`] if `last < first`.
    pub fn new(first: u64, last: u64) -> Result<Self, TraceError> {
        if last < first {
            return Err(TraceError::InvalidInterval { first, last });
        }
        Ok(Interval { first, last })
    }

    /// Creates a single-point interval `[pos, pos]`.
    pub fn point(pos: u64) -> Self {
        Interval {
            first: pos,
            last: pos,
        }
    }

    /// Length of the interval in trace positions (inclusive of both ends, so never zero).
    pub fn len(&self) -> u64 {
        self.last - self.first + 1
    }

    /// Intervals are never empty; provided for API symmetry with collections.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` if `pos` lies inside the interval.
    pub fn contains(&self, pos: u64) -> bool {
        pos >= self.first && pos <= self.last
    }

    /// Returns `true` if the two intervals share at least one position.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.first <= other.last && other.first <= self.last
    }

    /// Computes the intersection interval, the `delta_{i,j}` of the paper:
    /// `[MAX(first_i, first_j), MIN(last_i, last_j)]`, or `None` if the lifetimes are
    /// disjoint.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Interval {
            first: self.first.max(other.first),
            last: self.last.min(other.last),
        })
    }

    /// Returns the smallest interval covering both inputs.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            first: self.first.min(other.first),
            last: self.last.max(other.last),
        }
    }

    /// Extends the interval to include `pos`, returning the grown interval.
    pub fn extended_to(&self, pos: u64) -> Interval {
        Interval {
            first: self.first.min(pos),
            last: self.last.max(pos),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.first, self.last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_order() {
        assert!(Interval::new(3, 2).is_err());
        let i = Interval::new(2, 5).unwrap();
        assert_eq!(i.len(), 4);
        assert!(!i.is_empty());
    }

    #[test]
    fn point_interval_has_length_one() {
        let p = Interval::point(7);
        assert_eq!(p.len(), 1);
        assert!(p.contains(7));
        assert!(!p.contains(6));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = Interval::new(0, 10).unwrap();
        let b = Interval::new(5, 20).unwrap();
        let c = Interval::new(11, 12).unwrap();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersection(&b), Some(Interval::new(5, 10).unwrap()));
        assert_eq!(b.intersection(&a), a.intersection(&b));
        assert_eq!(a.intersection(&c), None);
        // touching endpoints overlap (closed intervals)
        let d = Interval::new(10, 15).unwrap();
        assert_eq!(a.intersection(&d), Some(Interval::point(10)));
    }

    #[test]
    fn hull_and_extend() {
        let a = Interval::new(5, 8).unwrap();
        let b = Interval::new(1, 3).unwrap();
        assert_eq!(a.hull(&b), Interval::new(1, 8).unwrap());
        assert_eq!(a.extended_to(12), Interval::new(5, 12).unwrap());
        assert_eq!(a.extended_to(2), Interval::new(2, 8).unwrap());
        assert_eq!(a.extended_to(6), a);
    }

    #[test]
    fn display_format() {
        assert_eq!(Interval::new(1, 4).unwrap().to_string(), "[1, 4]");
    }
}
