//! Inferring a symbol table from a raw reference stream.
//!
//! Traces recorded outside the instrumented workloads (a `.cct` file from `ccache trace
//! record`, or one converted from another simulator) carry addresses but no variable
//! annotations, and the layout algorithms need *variables* — address ranges that live and
//! die together — to build a conflict graph. This module recovers them with the standard
//! trick from trace-driven layout tools: sort the touched cache lines, then split the
//! address space wherever two consecutive lines are further apart than a gap threshold.
//! Every cluster becomes one synthetic region (`r0`, `r1`, ...), which downstream code
//! treats exactly like a recorded variable.
//!
//! The inference is deterministic: the same trace and threshold always produce the same
//! table, which keeps search results reproducible.

use crate::region::SymbolTable;
use crate::trace::Trace;

/// Default clustering gap: two references further apart than this start a new region.
/// One 4 KiB page is a good default for traces of unknown provenance — allocators rarely
/// pack unrelated objects closer, and page granularity matches the cache's mapping
/// granularity.
pub const DEFAULT_REGION_GAP: u64 = 4096;

/// Infers a symbol table for a raw trace by clustering touched addresses.
///
/// Consecutive referenced `granularity`-sized blocks closer than `gap` bytes are merged
/// into one region; each region is registered as `r<i>` (in ascending address order) and
/// covers every byte from its first to its last referenced block inclusive. An empty
/// trace yields an empty table.
///
/// `granularity` rounds addresses down to block boundaries before clustering (use the
/// cache line size; 0 is treated as 1), so sub-block strides do not fragment regions.
///
/// # Example
///
/// ```
/// use ccache_trace::infer::infer_symbols;
/// use ccache_trace::synth::sequential_scan;
/// use ccache_trace::Trace;
///
/// // Two well-separated arrays.
/// let a = sequential_scan(0x1000, 512, 32, 4, 1, None);
/// let b = sequential_scan(0x8_0000, 256, 32, 4, 1, None);
/// let trace = Trace::concat([&a, &b]);
///
/// let symbols = infer_symbols(&trace, 4096, 32);
/// assert_eq!(symbols.len(), 2);
/// assert_eq!(symbols.resolve(0x1000), symbols.resolve(0x11ff));
/// assert_ne!(symbols.resolve(0x1000), symbols.resolve(0x8_0000));
/// ```
pub fn infer_symbols(trace: &Trace, gap: u64, granularity: u64) -> SymbolTable {
    let granularity = granularity.max(1);
    let mut blocks: Vec<u64> = trace
        .iter()
        .map(|e| e.addr / granularity * granularity)
        .collect();
    blocks.sort_unstable();
    blocks.dedup();

    let mut table = SymbolTable::with_base(0);
    let mut index = 0usize;
    let mut cluster: Option<(u64, u64)> = None; // (first block, last block)
    let flush = |table: &mut SymbolTable, index: &mut usize, first: u64, last: u64| {
        let size = last - first + granularity;
        table
            .insert_at(&format!("r{index}"), first, size)
            .expect("clusters are disjoint and ascending");
        *index += 1;
    };
    for block in blocks {
        cluster = Some(match cluster {
            None => (block, block),
            Some((first, last)) if block - last <= gap.max(granularity) => (first, block),
            Some((first, last)) => {
                flush(&mut table, &mut index, first, last);
                (block, block)
            }
        });
    }
    if let Some((first, last)) = cluster {
        flush(&mut table, &mut index, first, last);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MemAccess;
    use crate::synth::sequential_scan;

    #[test]
    fn empty_trace_yields_empty_table() {
        let table = infer_symbols(&Trace::new(), DEFAULT_REGION_GAP, 32);
        assert!(table.is_empty());
    }

    #[test]
    fn one_dense_scan_is_one_region() {
        let t = sequential_scan(0x2000, 2048, 32, 4, 3, None);
        let table = infer_symbols(&t, DEFAULT_REGION_GAP, 32);
        assert_eq!(table.len(), 1);
        let region = table.iter().next().unwrap();
        assert_eq!(region.base, 0x2000);
        assert!(region.size >= 2048);
        assert_eq!(region.name, "r0");
    }

    #[test]
    fn widely_separated_streams_become_distinct_regions() {
        let a = sequential_scan(0x0, 512, 32, 4, 1, None);
        let b = sequential_scan(0x10_0000, 512, 32, 4, 1, None);
        let c = sequential_scan(0x20_0000, 512, 32, 4, 1, None);
        let t = Trace::concat([&a, &b, &c]);
        let table = infer_symbols(&t, DEFAULT_REGION_GAP, 32);
        assert_eq!(table.len(), 3);
        // regions are named in ascending address order and resolve their own addresses
        let names: Vec<String> = table.iter().map(|r| r.name.clone()).collect();
        assert_eq!(names, ["r0", "r1", "r2"]);
        assert!(table.resolve(0x10_0010).is_some());
    }

    #[test]
    fn gap_threshold_controls_merging() {
        let mut t = Trace::new();
        t.push(MemAccess::read(0x0, 4));
        t.push(MemAccess::read(0x3000, 4)); // 12 KiB away
        assert_eq!(infer_symbols(&t, 4096, 32).len(), 2);
        assert_eq!(infer_symbols(&t, 64 * 1024, 32).len(), 1);
    }

    #[test]
    fn inference_is_deterministic_and_order_independent() {
        let a = sequential_scan(0x9000, 256, 32, 4, 1, None);
        let b = sequential_scan(0x0, 256, 32, 4, 1, None);
        let forward = Trace::concat([&a, &b]);
        let backward = Trace::concat([&b, &a]);
        let ta = infer_symbols(&forward, DEFAULT_REGION_GAP, 32);
        let tb = infer_symbols(&backward, DEFAULT_REGION_GAP, 32);
        assert_eq!(ta.len(), tb.len());
        for (ra, rb) in ta.iter().zip(tb.iter()) {
            assert_eq!((ra.base, ra.size, &ra.name), (rb.base, rb.size, &rb.name));
        }
    }
}
