//! The compact binary trace format (`.cct`) and its streaming reader/writer.
//!
//! Traces kept in memory as [`Trace`] values are convenient for experiments, but a trace
//! captured from a long-running program can be far larger than RAM. This module defines a
//! compact on-disk encoding plus a streaming [`TraceReader`] so such traces can be
//! replayed in bounded memory (the replay engine in `ccache-core` consumes the reader in
//! `run_batch`-sized chunks).
//!
//! # Format
//!
//! All multi-byte header fields are little-endian.
//!
//! ```text
//! Header (16 bytes):
//!   bytes 0..4   magic  b"CCTR"
//!   bytes 4..8   u32    format version (currently 1)
//!   bytes 8..16  u64    event count
//! Body: a sequence of runs, each holding consecutive events of one access kind:
//!   varint  h            h == 0 terminates the trace; otherwise
//!                        run length = h >> 1, is_write = h & 1
//!   then (h >> 1) times:
//!     varint  zigzag(addr - previous addr)   (wrapping u64 delta, first delta from 0)
//!     varint  size in bytes
//! ```
//!
//! Varints are LEB128 (7 data bits per byte, most-significant-bit continuation). Address
//! deltas are zigzag-encoded wrapping differences, so both ascending scans (tiny positive
//! deltas) and pointer chases (small negative deltas) stay short; the run-length header
//! amortises the read/write flag over every streak of same-kind accesses. Variable
//! annotations ([`MemAccess::var`]) are not preserved — the format records the address
//! stream the simulator replays, not the symbol table.
//!
//! Format violations are reported as [`std::io::Error`] with
//! [`std::io::ErrorKind::InvalidData`].
//!
//! # Example
//!
//! ```
//! use ccache_trace::binfmt::{read_trace, write_trace};
//! use ccache_trace::synth::sequential_scan;
//!
//! let trace = sequential_scan(0x1000, 256, 32, 4, 2, None);
//! let mut bytes = Vec::new();
//! write_trace(&trace, &mut bytes)?;
//! let back = read_trace(&bytes[..])?;
//! assert_eq!(back.len(), trace.len());
//! # Ok::<(), std::io::Error>(())
//! ```

use crate::event::{AccessKind, MemAccess};
use crate::trace::Trace;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// The four magic bytes that open every binary trace file.
pub const MAGIC: [u8; 4] = *b"CCTR";

/// The format version this module writes (and the only one it reads).
pub const FORMAT_VERSION: u32 = 1;

/// Size in bytes of the fixed file header.
pub const HEADER_LEN: usize = 16;

/// Maximum events the writer buffers into one run before flushing it; bounds writer
/// memory on uniform-kind streams (the format allows consecutive same-kind runs).
const MAX_RUN: usize = 4096;

/// The decoded fixed header of a binary trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version (see [`FORMAT_VERSION`]).
    pub version: u32,
    /// Number of events the body encodes.
    pub events: u64,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift == 63 && b > 1 {
            return Err(invalid("varint overflows 64 bits".to_owned()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(invalid("varint longer than 10 bytes".to_owned()));
        }
    }
}

fn zigzag(delta: u64) -> u64 {
    // Interpret the wrapping difference as signed and fold the sign into bit 0.
    let d = delta as i64;
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> u64 {
    ((z >> 1) ^ (z & 1).wrapping_neg()) as i64 as u64
}

/// Incremental writer of the binary format.
///
/// The header carries the total event count, so the count must be declared up front;
/// [`TraceWriter::finish`] fails if the number of events written does not match. For
/// whole in-memory traces, [`write_trace`] is more convenient.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    declared: u64,
    written: u64,
    prev_addr: u64,
    /// Encoded (delta, size) pairs of the run being accumulated.
    run: Vec<(u64, u64)>,
    run_is_write: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the file header declaring `events` events.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(mut sink: W, events: u64) -> io::Result<Self> {
        sink.write_all(&MAGIC)?;
        sink.write_all(&FORMAT_VERSION.to_le_bytes())?;
        sink.write_all(&events.to_le_bytes())?;
        Ok(TraceWriter {
            sink,
            declared: events,
            written: 0,
            prev_addr: 0,
            run: Vec::new(),
            run_is_write: false,
        })
    }

    /// Appends one event given as `(address, size, is_write)`.
    ///
    /// # Errors
    ///
    /// Fails if more events are written than the header declared, or on I/O errors.
    pub fn write(&mut self, addr: u64, size: u32, is_write: bool) -> io::Result<()> {
        if self.written == self.declared {
            return Err(invalid(format!(
                "trace writer declared {} events but more were written",
                self.declared
            )));
        }
        if (is_write != self.run_is_write || self.run.len() >= MAX_RUN) && !self.run.is_empty() {
            self.flush_run()?;
        }
        self.run_is_write = is_write;
        self.run
            .push((zigzag(addr.wrapping_sub(self.prev_addr)), u64::from(size)));
        self.prev_addr = addr;
        self.written += 1;
        Ok(())
    }

    /// Appends one [`MemAccess`] (the variable annotation is dropped).
    ///
    /// # Errors
    ///
    /// See [`TraceWriter::write`].
    pub fn write_event(&mut self, ev: &MemAccess) -> io::Result<()> {
        self.write(ev.addr, ev.size, ev.is_write())
    }

    fn flush_run(&mut self) -> io::Result<()> {
        if self.run.is_empty() {
            return Ok(());
        }
        let header = ((self.run.len() as u64) << 1) | u64::from(self.run_is_write);
        write_varint(&mut self.sink, header)?;
        for &(delta, size) in &self.run {
            write_varint(&mut self.sink, delta)?;
            write_varint(&mut self.sink, size)?;
        }
        self.run.clear();
        Ok(())
    }

    /// Flushes the final run, writes the end-of-trace marker and returns the sink.
    ///
    /// # Errors
    ///
    /// Fails if fewer events were written than the header declared, or on I/O errors.
    pub fn finish(mut self) -> io::Result<W> {
        if self.written != self.declared {
            return Err(invalid(format!(
                "trace writer declared {} events but only {} were written",
                self.declared, self.written
            )));
        }
        self.flush_run()?;
        write_varint(&mut self.sink, 0)?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Writes an in-memory trace in the binary format and returns the sink.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_trace<W: Write>(trace: &Trace, sink: W) -> io::Result<W> {
    let mut writer = TraceWriter::new(sink, trace.len() as u64)?;
    for ev in trace {
        writer.write_event(ev)?;
    }
    writer.finish()
}

/// Streaming decoder of the binary format.
///
/// The reader pulls events on demand, so a trace far larger than memory can be replayed:
/// [`TraceReader::read_chunk`] fills a bounded buffer with `(address, is_write)` pairs in
/// the shape `MemoryBackend::run_batch` consumes, and [`TraceReader::next_event`] yields
/// full [`MemAccess`] values one at a time (also available through the [`Iterator`]
/// implementation).
#[derive(Debug)]
pub struct TraceReader<R: BufRead> {
    source: R,
    header: TraceHeader,
    prev_addr: u64,
    run_left: u64,
    run_is_write: bool,
    delivered: u64,
    done: bool,
}

impl TraceReader<BufReader<File>> {
    /// Opens a binary trace file for streaming.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened or its header is invalid.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps a buffered byte source, validating the magic and version.
    ///
    /// # Errors
    ///
    /// Fails if the source does not start with the [`MAGIC`] bytes or declares an
    /// unsupported version.
    pub fn new(mut source: R) -> io::Result<Self> {
        let mut header = [0u8; HEADER_LEN];
        source.read_exact(&mut header)?;
        if header[0..4] != MAGIC {
            return Err(invalid("not a binary trace: bad magic".to_owned()));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(invalid(format!(
                "unsupported trace format version {version} (expected {FORMAT_VERSION})"
            )));
        }
        let events = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        Ok(TraceReader {
            source,
            header: TraceHeader { version, events },
            prev_addr: 0,
            run_left: 0,
            run_is_write: false,
            delivered: 0,
            done: false,
        })
    }

    /// The decoded file header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Events remaining according to the header.
    pub fn remaining(&self) -> u64 {
        self.header.events.saturating_sub(self.delivered)
    }

    /// Decodes the next event, or `None` at the end of the trace.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input, including an event count that does not
    /// match the header.
    pub fn next_event(&mut self) -> io::Result<Option<MemAccess>> {
        if self.done {
            return Ok(None);
        }
        if self.run_left == 0 {
            let h = read_varint(&mut self.source)?;
            if h == 0 {
                self.done = true;
                if self.delivered != self.header.events {
                    return Err(invalid(format!(
                        "trace header declares {} events but the body holds {}",
                        self.header.events, self.delivered
                    )));
                }
                return Ok(None);
            }
            self.run_left = h >> 1;
            self.run_is_write = h & 1 == 1;
        }
        let delta = read_varint(&mut self.source)?;
        let size = read_varint(&mut self.source)?;
        let size = u32::try_from(size)
            .map_err(|_| invalid(format!("access size {size} exceeds 32 bits")))?;
        self.prev_addr = self.prev_addr.wrapping_add(unzigzag(delta));
        self.run_left -= 1;
        self.delivered += 1;
        if self.delivered > self.header.events {
            return Err(invalid(format!(
                "trace body holds more events than the {} the header declares",
                self.header.events
            )));
        }
        Ok(Some(MemAccess {
            addr: self.prev_addr,
            size,
            kind: if self.run_is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            var: None,
        }))
    }

    /// Appends up to `max` decoded `(address, is_write)` pairs to `buf` and returns how
    /// many were appended; `0` means the trace is exhausted.
    ///
    /// This is the replay fast path: the buffer shape matches
    /// `MemoryBackend::run_batch`, so a replay loop alternates `buf.clear()` /
    /// `read_chunk` / `run_batch` in bounded memory.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    pub fn read_chunk(&mut self, buf: &mut Vec<(u64, bool)>, max: usize) -> io::Result<usize> {
        let mut n = 0;
        while n < max {
            match self.next_event()? {
                Some(ev) => {
                    buf.push((ev.addr, ev.is_write()));
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }

    /// Reads every remaining event into an in-memory [`Trace`].
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    pub fn read_to_trace(&mut self) -> io::Result<Trace> {
        let mut t = Trace::with_capacity(usize::try_from(self.remaining()).unwrap_or(0));
        while let Some(ev) = self.next_event()? {
            t.push(ev);
        }
        Ok(t)
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = io::Result<MemAccess>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_event().transpose()
    }
}

/// Decodes a whole binary trace from a byte source.
///
/// # Errors
///
/// Fails on a bad header or malformed body.
pub fn read_trace<R: Read>(source: R) -> io::Result<Trace> {
    TraceReader::new(BufReader::new(source))?.read_to_trace()
}

/// Returns `true` if `bytes` begin with the binary-trace magic.
pub fn is_binary_trace(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Returns `true` if the file at `path` begins with the binary-trace magic (anything
/// else — including files shorter than the magic — is treated as text).
///
/// # Errors
///
/// Propagates errors from opening or reading the file.
pub fn is_binary_trace_file<P: AsRef<Path>>(path: P) -> io::Result<bool> {
    let mut head = [0u8; MAGIC.len()];
    let mut file = File::open(path)?;
    let mut filled = 0;
    while filled < head.len() {
        let n = file.read(&mut head[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(is_binary_trace(&head[..filled]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::VarId;
    use crate::synth::{pointer_chase, pseudo_random, sequential_scan};

    fn round_trip(trace: &Trace) -> Trace {
        let mut bytes = Vec::new();
        write_trace(trace, &mut bytes).unwrap();
        read_trace(&bytes[..]).unwrap()
    }

    fn strip_vars(trace: &Trace) -> Trace {
        trace
            .iter()
            .map(|e| MemAccess { var: None, ..*e })
            .collect()
    }

    #[test]
    fn round_trips_synthetic_traces() {
        for trace in [
            sequential_scan(0x1000, 1024, 32, 4, 3, Some(VarId(1))),
            pseudo_random(0x8000, 4096, 8, 500, 7, None),
            pointer_chase(0x0, 512, 8, 100, None),
            Trace::new(),
        ] {
            assert_eq!(round_trip(&trace), strip_vars(&trace));
        }
    }

    #[test]
    fn header_reports_version_and_count() {
        let trace = sequential_scan(0, 256, 32, 4, 1, None);
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        let reader = TraceReader::new(&bytes[..]).unwrap();
        assert_eq!(
            *reader.header(),
            TraceHeader {
                version: FORMAT_VERSION,
                events: trace.len() as u64
            }
        );
        assert!(is_binary_trace(&bytes));
        assert!(!is_binary_trace(b"R 0x10 4\n"));
    }

    #[test]
    fn encoding_is_compact_for_sequential_scans() {
        // A scan has constant small deltas and one kind: ~2 bytes per event.
        let trace = sequential_scan(0x10_0000, 32 * 1024, 32, 4, 1, None);
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        assert!(
            bytes.len() < trace.len() * 4,
            "{} bytes for {} events",
            bytes.len(),
            trace.len()
        );
    }

    #[test]
    fn uniform_kind_streams_flush_in_bounded_runs() {
        // More same-kind events than MAX_RUN: the writer must flush intermediate runs
        // (bounding its memory) and the reader must stitch them back seamlessly.
        let trace = sequential_scan(0, (3 * MAX_RUN as u64 + 17) * 8, 8, 4, 1, None);
        assert!(trace.len() > 3 * MAX_RUN);
        assert_eq!(round_trip(&trace), trace);
    }

    #[test]
    fn read_chunk_preserves_order_across_boundaries() {
        let trace = pseudo_random(0x4000, 2048, 4, 300, 3, None);
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let mut got = Vec::new();
        loop {
            let before = got.len();
            reader.read_chunk(&mut got, 7).unwrap();
            if got.len() == before {
                break;
            }
        }
        let want: Vec<(u64, bool)> = trace.iter().map(|e| (e.addr, e.is_write())).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let err = TraceReader::new(&b"NOPE............"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let err = TraceReader::new(&bytes[..]).unwrap_err();
        assert!(err.to_string().contains("version 99"));
    }

    #[test]
    fn truncated_body_is_an_error() {
        let trace = sequential_scan(0, 256, 32, 4, 1, None);
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        bytes.truncate(bytes.len() - 3);
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let result: io::Result<Vec<MemAccess>> = reader.by_ref().collect();
        assert!(result.is_err());
    }

    #[test]
    fn mismatched_event_count_is_an_error() {
        let trace = sequential_scan(0, 128, 32, 4, 1, None);
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        // Lower the declared count below the body's true count.
        bytes[8..16].copy_from_slice(&1u64.to_le_bytes());
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let result: io::Result<Vec<MemAccess>> = reader.by_ref().collect();
        assert!(result.is_err());
    }

    #[test]
    fn writer_enforces_declared_count() {
        let mut w = TraceWriter::new(Vec::new(), 1).unwrap();
        w.write(0x10, 4, false).unwrap();
        assert!(w.write(0x20, 4, false).is_err());
        let w = TraceWriter::new(Vec::new(), 2).unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn wrapping_deltas_handle_extreme_addresses() {
        let mut t = Trace::new();
        t.push(MemAccess::read(u64::MAX - 4, 4));
        t.push(MemAccess::read(0, 4));
        t.push(MemAccess::write(u64::MAX, 1));
        assert_eq!(round_trip(&t), t);
    }
}
