//! Variable regions and the symbol table.
//!
//! The data-layout algorithm of the paper assigns *program variables* (arrays and heavily
//! accessed scalars) to cache columns. To do that we need to know where each variable lives
//! in the simulated address space. A [`VariableRegion`] is a named, contiguous byte range;
//! the [`SymbolTable`] owns all regions of one program (or one task), allocates fresh
//! addresses for them, and resolves addresses back to variables.

use crate::error::TraceError;
use crate::event::VarId;
use std::fmt;

/// A named contiguous address range occupied by one program variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VariableRegion {
    /// Identifier of the variable (index into the owning [`SymbolTable`]).
    pub id: VarId,
    /// Human-readable name of the variable, e.g. `"coeff_block"`.
    pub name: String,
    /// First byte address of the region.
    pub base: u64,
    /// Size of the region in bytes (always non-zero).
    pub size: u64,
}

impl VariableRegion {
    /// Returns the first address past the end of the region.
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// Returns `true` if `addr` lies inside the region.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Returns `true` if this region overlaps `other` by at least one byte.
    pub fn overlaps(&self, other: &VariableRegion) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

impl fmt::Display for VariableRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} `{}` [{:#x}, {:#x}) ({} bytes)",
            self.id,
            self.name,
            self.base,
            self.end(),
            self.size
        )
    }
}

/// The set of variable regions of one program, with address allocation.
///
/// Variables are laid out sequentially from a configurable base address, each aligned to the
/// requested alignment. The table supports address-to-variable resolution, which the trace
/// recorder and the access-profile builder both use.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    regions: Vec<VariableRegion>,
    next_addr: u64,
}

/// Default base address for variable allocation.
///
/// Starting away from address zero makes accidental null-ish addresses easy to spot in
/// traces and leaves room for regions placed manually below it.
pub const DEFAULT_BASE_ADDR: u64 = 0x1_0000;

impl SymbolTable {
    /// Creates an empty symbol table that allocates from [`DEFAULT_BASE_ADDR`].
    pub fn new() -> Self {
        SymbolTable {
            regions: Vec::new(),
            next_addr: DEFAULT_BASE_ADDR,
        }
    }

    /// Creates an empty symbol table that allocates from `base`.
    pub fn with_base(base: u64) -> Self {
        SymbolTable {
            regions: Vec::new(),
            next_addr: base,
        }
    }

    /// Number of variables in the table.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` if the table holds no variables.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Allocates a fresh region of `size` bytes aligned to `align` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyRegion`] if `size == 0` and [`TraceError::BadAlignment`]
    /// if `align` is zero or not a power of two.
    pub fn allocate(&mut self, name: &str, size: u64, align: u64) -> Result<VarId, TraceError> {
        if size == 0 {
            return Err(TraceError::EmptyRegion { name: name.into() });
        }
        if align == 0 || !align.is_power_of_two() {
            return Err(TraceError::BadAlignment { align });
        }
        let base = align_up(self.next_addr, align);
        let id = VarId(self.regions.len() as u32);
        self.regions.push(VariableRegion {
            id,
            name: name.to_owned(),
            base,
            size,
        });
        self.next_addr = base + size;
        Ok(id)
    }

    /// Inserts a region at an explicit address (used when modelling a fixed memory map).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyRegion`] for zero-sized regions and
    /// [`TraceError::OverlappingRegion`] if the range collides with an existing region.
    pub fn insert_at(&mut self, name: &str, base: u64, size: u64) -> Result<VarId, TraceError> {
        if size == 0 {
            return Err(TraceError::EmptyRegion { name: name.into() });
        }
        let candidate = VariableRegion {
            id: VarId(self.regions.len() as u32),
            name: name.to_owned(),
            base,
            size,
        };
        if let Some(existing) = self.regions.iter().find(|r| r.overlaps(&candidate)) {
            return Err(TraceError::OverlappingRegion {
                name: name.into(),
                existing: existing.name.clone(),
            });
        }
        let id = candidate.id;
        self.next_addr = self.next_addr.max(candidate.end());
        self.regions.push(candidate);
        Ok(id)
    }

    /// Returns the region of variable `id`, if it exists.
    pub fn region(&self, id: VarId) -> Option<&VariableRegion> {
        self.regions.get(id.index())
    }

    /// Returns the region of variable `id` or an [`TraceError::UnknownVariable`] error.
    pub fn try_region(&self, id: VarId) -> Result<&VariableRegion, TraceError> {
        self.region(id)
            .ok_or(TraceError::UnknownVariable { id: id.0 })
    }

    /// Looks a region up by name. Linear scan; intended for tests and small tables.
    pub fn by_name(&self, name: &str) -> Option<&VariableRegion> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Resolves an address to the variable whose region contains it.
    pub fn resolve(&self, addr: u64) -> Option<VarId> {
        self.regions.iter().find(|r| r.contains(addr)).map(|r| r.id)
    }

    /// Iterates over all regions in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = &VariableRegion> {
        self.regions.iter()
    }

    /// Returns the lowest address past every allocated region.
    pub fn high_water_mark(&self) -> u64 {
        self.next_addr
    }

    /// Total number of bytes occupied by all regions (not counting alignment gaps).
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.size).sum()
    }
}

impl<'a> IntoIterator for &'a SymbolTable {
    type Item = &'a VariableRegion;
    type IntoIter = std::slice::Iter<'a, VariableRegion>;

    fn into_iter(self) -> Self::IntoIter {
        self.regions.iter()
    }
}

/// Rounds `value` up to the next multiple of `align` (which must be a power of two).
pub(crate) fn align_up(value: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (value + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_assigns_sequential_ids_and_disjoint_ranges() {
        let mut st = SymbolTable::new();
        let a = st.allocate("a", 100, 8).unwrap();
        let b = st.allocate("b", 50, 8).unwrap();
        assert_eq!(a, VarId(0));
        assert_eq!(b, VarId(1));
        let ra = st.region(a).unwrap().clone();
        let rb = st.region(b).unwrap().clone();
        assert!(!ra.overlaps(&rb));
        assert!(rb.base >= ra.end());
        assert_eq!(st.len(), 2);
        assert_eq!(st.total_bytes(), 150);
    }

    #[test]
    fn allocate_respects_alignment() {
        let mut st = SymbolTable::with_base(0x1001);
        let a = st.allocate("a", 16, 64).unwrap();
        assert_eq!(st.region(a).unwrap().base % 64, 0);
    }

    #[test]
    fn allocate_rejects_zero_size_and_bad_alignment() {
        let mut st = SymbolTable::new();
        assert!(matches!(
            st.allocate("z", 0, 8),
            Err(TraceError::EmptyRegion { .. })
        ));
        assert!(matches!(
            st.allocate("a", 8, 3),
            Err(TraceError::BadAlignment { align: 3 })
        ));
        assert!(matches!(
            st.allocate("a", 8, 0),
            Err(TraceError::BadAlignment { align: 0 })
        ));
    }

    #[test]
    fn insert_at_detects_overlap() {
        let mut st = SymbolTable::new();
        st.insert_at("a", 0x1000, 0x100).unwrap();
        let err = st.insert_at("b", 0x10ff, 0x10).unwrap_err();
        assert!(matches!(err, TraceError::OverlappingRegion { .. }));
        // adjacent is fine
        st.insert_at("c", 0x1100, 0x10).unwrap();
    }

    #[test]
    fn resolve_maps_addresses_back_to_variables() {
        let mut st = SymbolTable::new();
        let a = st.allocate("a", 64, 8).unwrap();
        let b = st.allocate("b", 64, 8).unwrap();
        let ra = st.region(a).unwrap().base;
        let rb = st.region(b).unwrap().base;
        assert_eq!(st.resolve(ra), Some(a));
        assert_eq!(st.resolve(ra + 63), Some(a));
        assert_eq!(st.resolve(rb), Some(b));
        assert_eq!(st.resolve(rb + 64), None);
        assert_eq!(st.resolve(0), None);
    }

    #[test]
    fn by_name_and_display() {
        let mut st = SymbolTable::new();
        st.allocate("matrix", 256, 8).unwrap();
        let r = st.by_name("matrix").unwrap();
        assert!(r.to_string().contains("matrix"));
        assert!(st.by_name("nope").is_none());
    }

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 8), 16);
        assert_eq!(align_up(0x1001, 0x1000), 0x2000);
    }

    #[test]
    fn try_region_reports_unknown() {
        let st = SymbolTable::new();
        assert!(matches!(
            st.try_region(VarId(4)),
            Err(TraceError::UnknownVariable { id: 4 })
        ));
    }
}
