//! Property-based tests of the trace substrate.

use ccache_trace::synth::{interleave, pseudo_random, read_modify_write, sequential_scan};
use ccache_trace::{
    binfmt, textfmt, AccessKind, AccessProfile, Interval, MemAccess, SymbolTable, Trace,
    TraceRecorder,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Trace concatenation is associative in length and preserves event order.
    #[test]
    fn concat_preserves_length_and_order(
        lens in prop::collection::vec(0u64..64, 1..6)
    ) {
        let traces: Vec<Trace> = lens
            .iter()
            .enumerate()
            .map(|(i, &n)| sequential_scan(i as u64 * 0x1000, n * 8, 8, 4, 1, None))
            .collect();
        let combined = Trace::concat(traces.iter());
        let expected: usize = traces.iter().map(|t| t.len()).sum();
        prop_assert_eq!(combined.len(), expected);
        let mut offset = 0;
        for t in &traces {
            for (i, e) in t.iter().enumerate() {
                prop_assert_eq!(combined.get(offset + i), Some(e));
            }
            offset += t.len();
        }
    }

    /// Relocation by a constant offset shifts every address by exactly that offset and
    /// changes nothing else.
    #[test]
    fn relocate_is_a_pure_translation(count in 1usize..200, offset in 0u64..0x1000_0000) {
        let t = pseudo_random(0x5000, 4096, 4, count, 7, None);
        let r = t.relocate(offset);
        prop_assert_eq!(t.len(), r.len());
        for (a, b) in t.iter().zip(r.iter()) {
            prop_assert_eq!(a.addr + offset, b.addr);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.size, b.size);
        }
    }

    /// The footprint in lines never exceeds the number of events and shrinks (or stays
    /// equal) when the line size grows.
    #[test]
    fn footprint_is_monotone_in_line_size(count in 1usize..300) {
        let t = pseudo_random(0, 64 * 1024, 4, count, 3, None);
        let f32b = t.footprint_lines(32);
        let f64b = t.footprint_lines(64);
        let f128b = t.footprint_lines(128);
        prop_assert!(f32b <= t.len());
        prop_assert!(f64b <= f32b);
        prop_assert!(f128b <= f64b);
        prop_assert!(f128b >= 1);
    }

    /// Chunking by any quantum partitions the trace exactly.
    #[test]
    fn chunks_partition_the_trace(len in 1u64..200, quantum in 1usize..64) {
        let t = sequential_scan(0, len * 8, 8, 4, 1, None);
        let total: usize = t.chunks(quantum).map(|c| c.len()).sum();
        prop_assert_eq!(total, t.len());
        let max = t.chunks(quantum).map(|c| c.len()).max().unwrap_or(0);
        prop_assert!(max <= quantum);
    }

    /// Interleaving preserves per-source order and total length for any burst size.
    #[test]
    fn interleave_is_a_fair_merge(burst in 1usize..16, n1 in 0u64..50, n2 in 0u64..50) {
        let t1 = sequential_scan(0x1000, n1 * 8, 8, 4, 1, None);
        let t2 = read_modify_write(0x2000, n2 * 8, 8, 8, 1, None);
        let merged = interleave(&[t1.clone(), t2.clone()], burst);
        prop_assert_eq!(merged.len(), t1.len() + t2.len());
        let from_t1: Vec<u64> = merged.iter().filter(|e| e.addr < 0x2000).map(|e| e.addr).collect();
        let expected: Vec<u64> = t1.iter().map(|e| e.addr).collect();
        prop_assert_eq!(from_t1, expected);
    }

    /// Profiles account for every annotated access: per-variable counts sum to the trace
    /// length and lifetimes are consistent with the per-variable positions.
    #[test]
    fn profiles_account_for_every_access(ops in prop::collection::vec((0usize..5, 0u64..32, any::<bool>()), 1..400)) {
        let mut rec = TraceRecorder::new();
        let vars: Vec<_> = (0..5).map(|i| rec.allocate(&format!("v{i}"), 256, 8)).collect();
        for (v, off, w) in &ops {
            let kind = if *w { AccessKind::Write } else { AccessKind::Read };
            rec.record(vars[*v], *off * 8, 8, kind);
        }
        let (trace, symbols) = rec.finish();
        let profile = AccessProfile::from_trace(&trace, &symbols);
        let total: u64 = profile.iter().map(|p| p.accesses).sum();
        prop_assert_eq!(total, trace.len() as u64);
        for p in profile.iter() {
            prop_assert_eq!(p.accesses as usize, p.positions.len());
            prop_assert!(p.positions.windows(2).all(|w| w[0] < w[1]));
            prop_assert_eq!(p.lifetime.first, *p.positions.first().unwrap());
            prop_assert_eq!(p.lifetime.last, *p.positions.last().unwrap());
            prop_assert!(p.writes <= p.accesses);
        }
        // pairwise conflicts are symmetric and bounded by the smaller access count
        let vids = profile.variables();
        for &a in &vids {
            for &b in &vids {
                if a == b { continue; }
                let w = profile.potential_conflicts(a, b);
                prop_assert_eq!(w, profile.potential_conflicts(b, a));
                let ca = profile.get(a).unwrap().accesses;
                let cb = profile.get(b).unwrap().accesses;
                prop_assert!(w <= ca.min(cb));
            }
        }
    }

    /// Symbol tables never hand out overlapping regions and always resolve an address to
    /// the variable that owns it.
    #[test]
    fn symbol_tables_are_consistent(sizes in prop::collection::vec(1u64..4096, 1..10)) {
        let mut st = SymbolTable::new();
        let ids: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, s)| st.allocate(&format!("v{i}"), *s, 8).unwrap())
            .collect();
        let regions: Vec<_> = st.iter().cloned().collect();
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                prop_assert!(!a.overlaps(b));
            }
        }
        for (id, size) in ids.iter().zip(&sizes) {
            let r = st.region(*id).unwrap();
            prop_assert_eq!(st.resolve(r.base), Some(*id));
            prop_assert_eq!(st.resolve(r.base + size - 1), Some(*id));
        }
    }

    /// The binary format round-trips any event stream exactly (modulo the variable
    /// annotations it deliberately drops), whatever mix of kinds, sizes and address
    /// jumps the trace contains.
    #[test]
    fn binary_format_round_trips_arbitrary_traces(
        ops in prop::collection::vec(
            (any::<u64>(), 1u32..4096, any::<bool>()),
            0..500,
        )
    ) {
        let trace: Trace = ops
            .iter()
            .map(|&(addr, size, w)| if w {
                MemAccess::write(addr, size)
            } else {
                MemAccess::read(addr, size)
            })
            .collect();
        let mut bytes = Vec::new();
        binfmt::write_trace(&trace, &mut bytes).unwrap();
        let back = binfmt::read_trace(&bytes[..]).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// The text format round-trips the same streams (addresses here are what real
    /// programs produce; the text grammar caps sizes at u32 like `MemAccess`).
    #[test]
    fn text_format_round_trips_arbitrary_traces(
        ops in prop::collection::vec(
            (0u64..u64::MAX / 2, 1u32..4096, any::<bool>()),
            0..200,
        )
    ) {
        let trace: Trace = ops
            .iter()
            .map(|&(addr, size, w)| if w {
                MemAccess::write(addr, size)
            } else {
                MemAccess::read(addr, size)
            })
            .collect();
        let bytes = textfmt::write_trace(&trace, Vec::new()).unwrap();
        let back = textfmt::read_trace(&bytes[..]).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// Interval hull and intersection are consistent: the intersection (when it exists) is
    /// contained in the hull, and the hull length is at least both input lengths.
    #[test]
    fn interval_hull_contains_intersection(a in 0u64..500, b in 0u64..500, c in 0u64..500, d in 0u64..500) {
        let i1 = Interval::new(a.min(b), a.max(b)).unwrap();
        let i2 = Interval::new(c.min(d), c.max(d)).unwrap();
        let hull = i1.hull(&i2);
        prop_assert!(hull.len() >= i1.len());
        prop_assert!(hull.len() >= i2.len());
        if let Some(x) = i1.intersection(&i2) {
            prop_assert!(x.first >= hull.first && x.last <= hull.last);
            prop_assert!(x.len() <= i1.len().min(i2.len()));
        }
    }
}
