//! Parse ∘ serialize identity: `Json::parse(x.pretty())` (and `.compact()`) must
//! reproduce `x` for every value the artefact schema can emit.
//!
//! Serve replies now cross a wire as rendered JSON and are reparsed on the other side,
//! so the serializer/parser pair has to be a lossless round trip — in particular for
//! `f64` edge cases (`-0.0`, values at and beyond 1e15, `1e308`, subnormals), where an
//! integral float rendered without a fraction would reparse as an integer variant.

use ccache_json::{Json, ToJson};
use proptest::prelude::*;

/// Asserts both renderings of `doc` reparse to an equal document.
fn assert_round_trips(doc: &Json) {
    for text in [doc.pretty(), doc.compact()] {
        let back = Json::parse(&text).unwrap_or_else(|e| panic!("reparse of {text:?}: {e}"));
        assert_eq!(&back, doc, "round trip drifted through {text:?}");
        // And the re-rendering is byte-stable, so caches keyed on rendered text agree.
        assert_eq!(back.pretty(), doc.pretty());
    }
}

#[test]
fn f64_edge_values_round_trip_exactly() {
    let edges = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.5,
        -2.25,
        1e-5,
        1e15,       // the old serializer's ".0" cutoff
        1e15 + 2.0, // just past it: integral, still must reparse as Float
        -1e15 - 2.0,
        1e16,
        9_007_199_254_740_992.0, // 2^53
        1.8446744073709552e19,   // ≈ u64::MAX, integral float
        -9.223372036854776e18,   // ≈ i64::MIN
        1e300,
        1e308,
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        5e-324, // smallest subnormal
        1.5e308,
        -1e308,
    ];
    for v in edges {
        let doc = Json::Float(v);
        assert_round_trips(&doc);
        // Bit-exactness, which `PartialEq` on f64 is too weak to see for -0.0.
        let Json::Float(back) = Json::parse(&doc.compact()).unwrap() else {
            panic!("{v:?} reparsed as a non-Float variant");
        };
        assert_eq!(back.to_bits(), v.to_bits(), "bits drifted for {v:?}");
    }
}

#[test]
fn integral_floats_never_reparse_as_integers() {
    for v in [1e15, 1e16, 4e18, -3e15, 2.0, -2.0] {
        let text = Json::Float(v).compact();
        assert!(
            matches!(Json::parse(&text).unwrap(), Json::Float(_)),
            "{text} lost its Float variant"
        );
    }
}

#[test]
fn signed_to_json_normalizes_to_the_parser_variants() {
    // `to_json` on signed integers follows the parser's convention: non-negative
    // number text is UInt, Int is negative-only. Without the normalization,
    // `Json::Int(5)` would render "5" and reparse as `UInt(5)` — not an identity.
    assert_eq!(5i64.to_json(), Json::UInt(5));
    assert_eq!(0i32.to_json(), Json::UInt(0));
    assert_eq!((-5i64).to_json(), Json::Int(-5));
    assert_round_trips(&i64::MIN.to_json());
    assert_round_trips(&i64::MAX.to_json());
}

#[test]
fn non_finite_floats_render_null_by_design() {
    // The one deliberate non-identity: non-finite values serialize as null (the
    // serde_json convention), so they parse back as Json::Null.
    for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert_eq!(Json::parse(&Json::Float(v).pretty()).unwrap(), Json::Null);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_finite_floats_round_trip(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        if v.is_finite() {
            assert_round_trips(&Json::Float(v));
        }
    }

    #[test]
    fn random_scalar_documents_round_trip(
        u in any::<u64>(),
        i in any::<i64>(),
        bits in any::<u64>(),
        b in any::<bool>(),
    ) {
        let f = f64::from_bits(bits);
        let doc = Json::obj([
            ("u", u.to_json()),
            ("i", i.to_json()),
            ("f", if f.is_finite() { Json::Float(f) } else { Json::Null }),
            ("b", b.to_json()),
            ("s", format!("s{u}\n\"{i}\"").to_json()),
            ("arr", Json::arr([Json::Null, u.to_json(), i.to_json()])),
        ]);
        assert_round_trips(&doc);
    }
}
