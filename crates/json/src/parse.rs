//! A recursive-descent JSON parser for the document model.
//!
//! [`Json::parse`] reads the full JSON grammar (RFC 8259) into the same [`Json`] values
//! the serializer produces, preserving object key order. Integers without sign or
//! fraction become [`Json::UInt`], negative integers become [`Json::Int`], everything
//! else numeric becomes [`Json::Float`] — the same variants [`ToJson`](crate::ToJson)
//! implementations choose, so parse → serialize round-trips are stable.

use crate::Json;
use std::fmt;

/// A JSON syntax error, with the byte offset where parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What went wrong, e.g. `"expected ':' after object key"`.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting depth. Parsing is recursive, so untrusted input with
/// unbounded nesting would otherwise overflow the stack instead of erroring.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] (with byte offset) for malformed input, including
    /// trailing non-whitespace after the document.
    ///
    /// ```
    /// use ccache_json::Json;
    ///
    /// let doc = Json::parse(r#"{"name": "fig4", "points": [1, 2.5, -3]}"#).unwrap();
    /// assert_eq!(doc.get("name").and_then(Json::as_str), Some("fig4"));
    /// assert!(Json::parse("{oops}").is_err());
    /// ```
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("unexpected trailing characters"));
        }
        Ok(value)
    }

    /// Looks up a key in an object; `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is an integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object pairs in document order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')
                .map_err(|_| self.error("expected ':' after object key"))?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')
            .map_err(|_| self.error("expected a string"))?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("unpaired surrogate"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.error(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (the input is a &str, so boundaries
                    // are guaranteed valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).expect("input was a valid &str");
                    let c = text.chars().next().expect("peek saw a byte");
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let int_digits = self.pos - int_start;
        if int_digits == 0 {
            return Err(self.error("expected digits in number"));
        }
        // Leading zeros are only legal on "0" itself.
        if int_digits > 1 && self.bytes[int_start] == b'0' {
            return Err(self.error("leading zeros are not allowed"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if integral {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::Int(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_serializer_output() {
        let doc = Json::obj([
            ("name", Json::Str("fig4 \"quick\"".into())),
            ("n", Json::UInt(42)),
            ("neg", Json::Int(-7)),
            ("pi", Json::Float(3.25)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "arr",
                Json::arr([Json::UInt(1), Json::Str("two\n".into()), Json::Arr(vec![])]),
            ),
            ("obj", Json::obj([("k", Json::UInt(0))])),
        ]);
        for text in [doc.pretty(), doc.compact()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn number_variants_match_to_json_choices() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("-1.5e-1").unwrap(), Json::Float(-0.15));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
    }

    #[test]
    fn escapes_and_unicode_parse() {
        assert_eq!(
            Json::parse(r#""a\tb\u00e9\ud83d\ude00""#).unwrap(),
            Json::Str("a\tbé😀".into())
        );
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn malformed_documents_are_rejected_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01",
            "1.",
            "\"\\x\"",
            "\"unterminated",
            "[1] extra",
            "{\"a\":1,}",
            "nan",
            "- 1",
            "\"\\ud800\"",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.offset <= bad.len(), "{bad:?} offset out of range");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(50_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting deeper than"));
        // A document at a reasonable depth still parses.
        let ok = format!("{}{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
        // Depth is the *current* nesting, not a cumulative count of containers.
        let wide: String = std::iter::repeat_n("[],", 1000).collect();
        assert!(Json::parse(&format!("[{}[]]", wide)).is_ok());
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = Json::parse(r#"{"a": {"b": [1, 2.5, true, "s"]}}"#).unwrap();
        let arr = doc.get("a").and_then(|a| a.get("b")).unwrap();
        let items = arr.as_arr().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[0].as_usize(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_bool(), Some(true));
        assert_eq!(items[3].as_str(), Some("s"));
        assert!(doc.get("missing").is_none());
        assert!(items[0].get("x").is_none());
        assert_eq!(doc.as_obj().unwrap().len(), 1);
        assert!(Json::Int(-1).as_u64().is_none());
    }
}
