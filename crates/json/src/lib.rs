//! Dependency-free JSON serialization for experiment artefacts.
//!
//! The workspace writes figure data (`SweepReport`, Figure 5 series) as JSON files. The
//! build environment is offline, so instead of `serde`/`serde_json` this crate provides a
//! small explicit document model: build a [`Json`] value (usually through the [`ToJson`]
//! trait) and render it with [`Json::pretty`], or read one back with [`Json::parse`]
//! (experiment specs are JSON files). Key order is exactly insertion order and
//! formatting is deterministic, so two structurally equal reports serialize to
//! byte-identical text — the property the parallel-sweep tests rely on.
//!
//! ```
//! use ccache_json::{Json, ToJson};
//!
//! let doc = Json::obj([
//!     ("figure", 4u64.to_json()),
//!     ("series", vec![1u64, 2, 3].to_json()),
//! ]);
//! assert_eq!(doc.compact(), r#"{"figure":4,"series":[1,2,3]}"#);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;

pub use parse::ParseError;

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (the common case for counters and cycles).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating-point number; non-finite values render as `null` like serde_json.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Renders with two-space indentation (the `serde_json::to_string_pretty` layout).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Renders without any whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 {
                        // Integral floats keep a ".0" so they reparse as Float, not as
                        // UInt/Int — [`Json::parse`] must be an identity on serializer
                        // output at every magnitude (1e15 and beyond included).
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        push_indent(out, indent + 1);
                    }
                    item.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        push_indent(out, indent + 1);
                    }
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] document.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! impl_to_json_uint {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        })*
    };
}

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Json {
                // Non-negative values normalize to UInt — the variant [`Json::parse`]
                // produces for unsigned number text — so serialize → parse is an
                // identity on `to_json` output. Int is the negative-only variant.
                if *self >= 0 {
                    Json::UInt(*self as u64)
                } else {
                    Json::Int(*self as i64)
                }
            }
        })*
    };
}

impl_to_json_uint!(u8, u16, u32, u64, usize);
impl_to_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_layout_matches_serde_json_style() {
        let doc = Json::obj([
            ("name", "dequant".to_json()),
            ("cycles", 1234u64.to_json()),
            ("cpi", 2.5f64.to_json()),
            ("points", Json::arr([Json::UInt(1), Json::UInt(2)])),
            ("empty", Json::Arr(Vec::new())),
            ("none", Json::Null),
        ]);
        let expected = "{\n  \"name\": \"dequant\",\n  \"cycles\": 1234,\n  \"cpi\": 2.5,\n  \"points\": [\n    1,\n    2\n  ],\n  \"empty\": [],\n  \"none\": null\n}";
        assert_eq!(doc.pretty(), expected);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(2.0).compact(), "2.0");
        assert_eq!(Json::Float(2.25).compact(), "2.25");
        assert_eq!(Json::Float(f64::NAN).compact(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::Str("a\"b\\c\nd".into()).compact(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Str("\u{1}".into()).compact(), "\"\\u0001\"");
    }

    #[test]
    fn serialization_is_deterministic() {
        let build = || {
            Json::obj([
                ("a", vec![1u64, 2, 3].to_json()),
                ("b", Some("x").to_json()),
                ("c", (1u64, 2.5f64).to_json()),
            ])
        };
        assert_eq!(build().pretty(), build().pretty());
    }
}
