//! Error type for the search subsystem.

use ccache_core::CoreError;
use ccache_layout::LayoutError;
use ccache_sim::SimError;
use std::fmt;

/// Errors produced while building a search space or running a search.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptError {
    /// An error from the experiment layer (replay, mapping application).
    Core(CoreError),
    /// An error from the layout algorithms (invalid assignment, coloring failure).
    Layout(LayoutError),
    /// An error from the simulator (invalid geometry).
    Sim(SimError),
    /// No valid geometry survived search-space construction.
    EmptySpace {
        /// Why every candidate geometry was rejected.
        reason: String,
    },
    /// A request parameter was inconsistent (zero budget, empty population, ...).
    BadRequest {
        /// Explanation of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Core(e) => write!(f, "evaluation error: {e}"),
            OptError::Layout(e) => write!(f, "assignment error: {e}"),
            OptError::Sim(e) => write!(f, "geometry error: {e}"),
            OptError::EmptySpace { reason } => write!(f, "empty search space: {reason}"),
            OptError::BadRequest { reason } => write!(f, "invalid search request: {reason}"),
        }
    }
}

impl std::error::Error for OptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptError::Core(e) => Some(e),
            OptError::Layout(e) => Some(e),
            OptError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for OptError {
    fn from(e: CoreError) -> Self {
        OptError::Core(e)
    }
}

impl From<LayoutError> for OptError {
    fn from(e: LayoutError) -> Self {
        OptError::Layout(e)
    }
}

impl From<SimError> for OptError {
    fn from(e: SimError) -> Self {
        OptError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_component_errors_with_source() {
        use std::error::Error;
        let e: OptError = LayoutError::NoColumns.into();
        assert!(e.to_string().contains("assignment"));
        assert!(e.source().is_some());
        let e = OptError::EmptySpace {
            reason: "no geometry".to_owned(),
        };
        assert!(e.to_string().contains("no geometry"));
        assert!(e.source().is_none());
    }
}
