//! The joint search space: cache geometries × column assignments, and the genome
//! operations (encode/decode, mutation, crossover) strategies search it with.
//!
//! A **genome** is a geometry index plus one column per conflict-graph vertex of that
//! geometry. Geometry choices are materialised up front: for each candidate geometry the
//! space builds the unit split (column-sized pieces of large variables), the conflict
//! graph over those units, and the paper's heuristic assignment — the seed every search
//! starts from, which is what guarantees a search never reports a result worse than the
//! heuristic.
//!
//! Every operation is deterministic for a given RNG stream, and every generated genome is
//! valid by construction: columns in range and forced placements respected. Decoding
//! re-validates through [`ccache_layout::validate_vertex_columns`], so a corrupted key
//! cannot smuggle an out-of-space candidate into evaluation.

use crate::error::OptError;
use ccache_layout::{
    assign_columns, conflict_graph_from_trace, ColumnAssignment, ConflictGraph, LayoutOptions,
    UnitMap, WeightOptions,
};
use ccache_sim::{CacheConfig, SystemConfig};
use ccache_trace::{SymbolTable, Trace, VarId};
use rand::{rngs::StdRng, Rng};

/// The geometry knobs a search may vary. Every combination is validated against the
/// template's capacity; combinations the hardware model rejects are silently skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometrySearch {
    /// Candidate column (way) counts. Empty means "template only".
    pub columns: Vec<usize>,
    /// Candidate line sizes in bytes. Empty means "template only".
    pub line_sizes: Vec<u64>,
    /// Candidate TLB entry counts. Empty means "template only".
    pub tlb_entries: Vec<usize>,
}

impl GeometrySearch {
    /// No geometry search: only the template configuration is used, and the search
    /// optimizes column assignments alone.
    pub fn fixed() -> Self {
        GeometrySearch {
            columns: Vec::new(),
            line_sizes: Vec::new(),
            tlb_entries: Vec::new(),
        }
    }

    /// The default joint search: column counts 2/4/8, line sizes 16/32/64 and TLB sizes
    /// 16/64 around the template (invalid combinations are dropped per template).
    pub fn standard() -> Self {
        GeometrySearch {
            columns: vec![2, 4, 8],
            line_sizes: vec![16, 32, 64],
            tlb_entries: vec![16, 64],
        }
    }
}

/// One fully materialised geometry: the validated configuration plus everything needed to
/// express and score assignments under it.
#[derive(Debug, Clone)]
pub struct GeometryChoice {
    /// The validated system configuration.
    pub config: SystemConfig,
    /// Column-sized units of the workload's variables under this geometry.
    pub units: UnitMap,
    /// The conflict graph over those units.
    pub graph: ConflictGraph,
    /// Assignment options (column count, column size, forced placements).
    pub options: LayoutOptions,
    /// The paper's heuristic assignment for this geometry — the search seed.
    pub heuristic: ColumnAssignment,
    /// Vertices a search may move (everything not covered by a forced placement).
    pub free_vertices: Vec<usize>,
}

/// A candidate solution: a geometry and one column per graph vertex of that geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Genome {
    /// Index into [`SearchSpace::geometries`].
    pub geometry: usize,
    /// Column of every conflict-graph vertex (same indexing as the geometry's graph).
    pub columns: Vec<usize>,
}

impl Genome {
    /// The canonical byte encoding of this genome, used as the fitness-cache key:
    /// geometry as little-endian `u16`, then one byte per vertex column. Two genomes are
    /// the same candidate if and only if their encodings are equal.
    pub fn encode(&self) -> Vec<u8> {
        let mut key = Vec::with_capacity(2 + self.columns.len());
        key.extend_from_slice(&(self.geometry as u16).to_le_bytes());
        key.extend(self.columns.iter().map(|&c| c as u8));
        key
    }
}

/// The materialised search space over one workload.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Every valid geometry, template first.
    pub geometries: Vec<GeometryChoice>,
    /// The workload's symbol table (shared by all geometries).
    pub symbols: SymbolTable,
}

impl SearchSpace {
    /// Builds the space for a workload: the template geometry plus every valid
    /// combination from `search`, each with its unit split, conflict graph and heuristic
    /// assignment. `forced` pins variables to columns in every geometry (combinations
    /// whose column count cannot honour a forced placement are skipped).
    ///
    /// # Errors
    ///
    /// Returns [`OptError::EmptySpace`] if no geometry survives validation, and
    /// propagates layout errors from heuristic seeding.
    pub fn build(
        trace: &Trace,
        symbols: &SymbolTable,
        template: SystemConfig,
        search: &GeometrySearch,
        forced: &[(VarId, usize)],
    ) -> Result<SearchSpace, OptError> {
        template.validate()?;
        let capacity = template.cache.capacity_bytes();

        // Enumerate candidate (columns, line, tlb) triples, template first, deduped.
        let columns_list = non_empty_or(&search.columns, template.cache.columns());
        let lines_list = non_empty_or(&search.line_sizes, template.cache.line_size());
        let tlb_list = non_empty_or(&search.tlb_entries, template.tlb_entries);
        let mut triples = vec![(
            template.cache.columns(),
            template.cache.line_size(),
            template.tlb_entries,
        )];
        for &c in &columns_list {
            for &l in &lines_list {
                for &t in &tlb_list {
                    if !triples.contains(&(c, l, t)) {
                        triples.push((c, l, t));
                    }
                }
            }
        }

        // The unit split, conflict graph and heuristic seed depend only on the column
        // count (capacity is fixed, so column_bytes is determined by it) — memoise them
        // so varying line size and TLB entries does not re-scan the whole trace.
        type LayoutParts = (ConflictGraph, UnitMap, LayoutOptions, ColumnAssignment);
        let mut parts_by_columns: std::collections::BTreeMap<usize, Option<LayoutParts>> =
            std::collections::BTreeMap::new();

        let mut geometries = Vec::new();
        for (columns, line, tlb) in triples {
            let Ok(cache) = CacheConfig::builder()
                .capacity_bytes(capacity)
                .columns(columns)
                .line_size(line)
                .replacement(template.cache.replacement())
                .build()
            else {
                continue;
            };
            let config = SystemConfig {
                cache,
                tlb_entries: tlb,
                ..template
            };
            if config.validate().is_err() {
                continue;
            }
            if forced.iter().any(|&(_, col)| col >= columns) {
                continue;
            }
            let parts = parts_by_columns.entry(columns).or_insert_with(|| {
                let weight_options = WeightOptions {
                    column_bytes: cache.column_bytes(),
                    ..WeightOptions::default()
                };
                let (graph, units) = conflict_graph_from_trace(trace, symbols, &weight_options);
                let options = LayoutOptions {
                    columns,
                    column_bytes: cache.column_bytes(),
                    forced: forced.to_vec(),
                    ..LayoutOptions::default()
                };
                let heuristic = assign_columns(&graph, &options).ok()?;
                Some((graph, units, options, heuristic))
            });
            let Some((graph, units, options, heuristic)) = parts.clone() else {
                continue;
            };
            let forced_vars: Vec<VarId> = options.forced.iter().map(|&(v, _)| v).collect();
            let free_vertices: Vec<usize> = graph
                .vertices()
                .filter(|(_, vertex)| !forced_vars.contains(&vertex.var))
                .map(|(idx, _)| idx)
                .collect();
            geometries.push(GeometryChoice {
                config,
                units,
                graph,
                options,
                heuristic,
                free_vertices,
            });
        }
        if geometries.is_empty() {
            return Err(OptError::EmptySpace {
                reason: format!(
                    "no (columns, line, tlb) combination is valid for a {capacity}-byte cache"
                ),
            });
        }
        Ok(SearchSpace {
            geometries,
            symbols: symbols.clone(),
        })
    }

    /// The heuristic-seeded genome of geometry `g` — the candidate every strategy starts
    /// from for that geometry.
    pub fn seeded(&self, g: usize) -> Genome {
        Genome {
            geometry: g,
            columns: self.geometries[g].heuristic.vertex_columns.clone(),
        }
    }

    /// Decodes a canonical key back into a genome, validating it against the space.
    /// Returns `None` for unknown geometries, wrong lengths, out-of-range columns or
    /// violated forced placements — `decode(encode(g)) == Some(g)` for every genome the
    /// space can produce.
    pub fn decode(&self, key: &[u8]) -> Option<Genome> {
        if key.len() < 2 {
            return None;
        }
        let geometry = u16::from_le_bytes([key[0], key[1]]) as usize;
        let geo = self.geometries.get(geometry)?;
        let columns: Vec<usize> = key[2..].iter().map(|&b| b as usize).collect();
        ccache_layout::validate_vertex_columns(&geo.graph, &geo.options, &columns).ok()?;
        Some(Genome { geometry, columns })
    }

    /// `true` if the genome is a member of this space (valid geometry, columns and
    /// forced placements).
    pub fn is_valid(&self, genome: &Genome) -> bool {
        self.geometries.get(genome.geometry).is_some_and(|geo| {
            ccache_layout::validate_vertex_columns(&geo.graph, &geo.options, &genome.columns)
                .is_ok()
        })
    }

    /// A uniformly random genome: random geometry, every free vertex on a random column,
    /// forced vertices pinned.
    pub fn random(&self, rng: &mut StdRng) -> Genome {
        let geometry = rng.random_range(0..self.geometries.len());
        let geo = &self.geometries[geometry];
        let mut columns = geo.heuristic.vertex_columns.clone();
        for &v in &geo.free_vertices {
            columns[v] = rng.random_range(0..geo.options.columns);
        }
        Genome { geometry, columns }
    }

    /// Mutates a genome: occasionally jumps to another geometry (re-seeding from that
    /// geometry's heuristic), then re-rolls one or two free vertices. Forced placements
    /// are never touched, so every output is valid.
    pub fn mutate(&self, genome: &Genome, rng: &mut StdRng) -> Genome {
        let mut out = genome.clone();
        if self.geometries.len() > 1 && rng.random_bool(0.15) {
            let mut g = rng.random_range(0..self.geometries.len() - 1);
            if g >= out.geometry {
                g += 1;
            }
            out = self.seeded(g);
        }
        let geo = &self.geometries[out.geometry];
        if geo.free_vertices.is_empty() {
            return out;
        }
        let flips = 1 + rng.random_range(0..2usize);
        for _ in 0..flips {
            let v = geo.free_vertices[rng.random_range(0..geo.free_vertices.len())];
            out.columns[v] = rng.random_range(0..geo.options.columns);
        }
        out
    }

    /// Uniform crossover. Parents under the same geometry mix per-vertex; parents under
    /// different geometries cannot exchange genes (their vertex sets differ), so one of
    /// them is passed through unchanged.
    pub fn crossover(&self, a: &Genome, b: &Genome, rng: &mut StdRng) -> Genome {
        if a.geometry != b.geometry {
            return if rng.random_bool(0.5) {
                a.clone()
            } else {
                b.clone()
            };
        }
        let columns = a
            .columns
            .iter()
            .zip(&b.columns)
            .map(|(&ca, &cb)| if rng.random_bool(0.5) { ca } else { cb })
            .collect();
        Genome {
            geometry: a.geometry,
            columns,
        }
    }

    /// The number of distinct genomes, or `None` when it overflows `u128` (practically:
    /// "too many to enumerate"). Sum over geometries of `columns ^ free_vertices`.
    pub fn cardinality(&self) -> Option<u128> {
        let mut total: u128 = 0;
        for geo in &self.geometries {
            let mut n: u128 = 1;
            for _ in 0..geo.free_vertices.len() {
                n = n.checked_mul(geo.options.columns as u128)?;
            }
            total = total.checked_add(n)?;
        }
        Some(total)
    }

    /// Enumerates up to `limit` genomes in a fixed deterministic order: per geometry, the
    /// heuristic seed first, then odometer order over the free vertices.
    pub fn enumerate(&self, limit: usize) -> Vec<Genome> {
        let mut out = Vec::new();
        for (g, geo) in self.geometries.iter().enumerate() {
            if out.len() >= limit {
                break;
            }
            let seed = self.seeded(g);
            out.push(seed.clone());
            let k = geo.free_vertices.len();
            let c = geo.options.columns;
            let mut odometer = vec![0usize; k];
            'odometer: loop {
                if out.len() >= limit {
                    break;
                }
                let mut columns = geo.heuristic.vertex_columns.clone();
                for (slot, &v) in odometer.iter().zip(&geo.free_vertices) {
                    columns[v] = *slot;
                }
                if columns != seed.columns {
                    out.push(Genome {
                        geometry: g,
                        columns,
                    });
                }
                // advance the odometer; k == 0 has exactly one (empty) combination
                if k == 0 {
                    break;
                }
                for digit in odometer.iter_mut() {
                    *digit += 1;
                    if *digit < c {
                        continue 'odometer;
                    }
                    *digit = 0;
                }
                break;
            }
        }
        out
    }
}

fn non_empty_or<T: Copy>(list: &[T], fallback: T) -> Vec<T> {
    if list.is_empty() {
        vec![fallback]
    } else {
        list.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccache_trace::{AccessKind, TraceRecorder};
    use rand::SeedableRng;

    fn workload() -> (Trace, SymbolTable) {
        let mut rec = TraceRecorder::new();
        let a = rec.allocate("a", 256, 8);
        let b = rec.allocate("b", 256, 8);
        let c = rec.allocate("c", 1024, 8);
        for i in 0..64u64 {
            rec.record(a, (i % 32) * 8, 8, AccessKind::Read);
            rec.record(b, (i % 32) * 8, 8, AccessKind::Write);
            rec.record(c, (i * 16) % 1024, 8, AccessKind::Read);
        }
        rec.finish()
    }

    fn template() -> SystemConfig {
        SystemConfig {
            page_size: 256,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn fixed_search_yields_exactly_the_template() {
        let (t, s) = workload();
        let space = SearchSpace::build(&t, &s, template(), &GeometrySearch::fixed(), &[]).unwrap();
        assert_eq!(space.geometries.len(), 1);
        assert_eq!(space.geometries[0].config, template());
        // heuristic seed decodes to itself
        let seed = space.seeded(0);
        assert!(space.is_valid(&seed));
        assert_eq!(space.decode(&seed.encode()), Some(seed));
    }

    #[test]
    fn standard_search_keeps_only_valid_geometries() {
        let (t, s) = workload();
        let space =
            SearchSpace::build(&t, &s, template(), &GeometrySearch::standard(), &[]).unwrap();
        assert!(space.geometries.len() > 1);
        for geo in &space.geometries {
            assert!(geo.config.validate().is_ok());
            assert_eq!(geo.config.cache.capacity_bytes(), 2048);
            assert_eq!(geo.graph.vertex_count(), geo.units.len());
        }
        // the template is always geometry 0
        assert_eq!(space.geometries[0].config, template());
    }

    #[test]
    fn random_mutate_crossover_stay_in_space() {
        let (t, s) = workload();
        let space =
            SearchSpace::build(&t, &s, template(), &GeometrySearch::standard(), &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut genome = space.random(&mut rng);
        for _ in 0..200 {
            assert!(space.is_valid(&genome));
            let other = space.random(&mut rng);
            genome = space.crossover(&space.mutate(&genome, &mut rng), &other, &mut rng);
        }
    }

    #[test]
    fn forced_placements_survive_every_operation() {
        let (t, s) = workload();
        let forced = [(VarId(0), 1usize)];
        let space =
            SearchSpace::build(&t, &s, template(), &GeometrySearch::fixed(), &forced).unwrap();
        let geo = &space.geometries[0];
        // vertex of variable a is pinned to column 1 and absent from free_vertices
        let pinned: Vec<usize> = geo
            .graph
            .vertices()
            .filter(|(_, v)| v.var == VarId(0))
            .map(|(i, _)| i)
            .collect();
        assert!(!pinned.is_empty());
        for &p in &pinned {
            assert!(!geo.free_vertices.contains(&p));
            assert_eq!(geo.heuristic.vertex_columns[p], 1);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut genome = space.seeded(0);
        for _ in 0..100 {
            genome = space.mutate(&genome, &mut rng);
            for &p in &pinned {
                assert_eq!(genome.columns[p], 1);
            }
        }
    }

    #[test]
    fn decode_rejects_corrupt_keys() {
        let (t, s) = workload();
        let space = SearchSpace::build(&t, &s, template(), &GeometrySearch::fixed(), &[]).unwrap();
        assert_eq!(space.decode(&[]), None);
        assert_eq!(space.decode(&[9, 9]), None); // unknown geometry
        let mut key = space.seeded(0).encode();
        key.push(0); // wrong length
        assert_eq!(space.decode(&key), None);
        let mut key = space.seeded(0).encode();
        key[2] = 200; // column out of range
        assert_eq!(space.decode(&key), None);
    }

    #[test]
    fn enumerate_covers_small_spaces_without_duplicates() {
        let (t, s) = workload();
        let space = SearchSpace::build(&t, &s, template(), &GeometrySearch::fixed(), &[]).unwrap();
        let n = space.cardinality().unwrap();
        let genomes = space.enumerate(usize::MAX);
        assert_eq!(genomes.len() as u128, n);
        let mut keys: Vec<Vec<u8>> = genomes.iter().map(Genome::encode).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len() as u128, n);
        // a limit truncates deterministically
        let some = space.enumerate(5);
        assert_eq!(some.len(), 5);
        assert_eq!(some[0], space.seeded(0));
    }
}
