//! Replay-backed fitness with a canonical-genome cache and an evaluation budget.
//!
//! Search strategies propose genomes; the [`Evaluator`] decodes each into a concrete
//! candidate (geometry + [`CacheMapping`]), replays the trace
//! through [`ReplayFitness`], and memoises the result under the genome's canonical key —
//! so a duplicate candidate, however it was produced, **never replays twice**. Only real
//! replays count against the budget, which is what lets a strategy keep polishing a
//! converged population for free.
//!
//! Batches preserve input order and fan out over threads when the `parallel` feature is
//! on; because the cache is keyed canonically and filled in input order, the evaluator's
//! observable behaviour is byte-identical with the feature on or off.

use crate::error::OptError;
use crate::space::{Genome, SearchSpace};
use ccache_core::{CacheMapping, Candidate, FitnessMode, ReplayFitness, RunResult};
use ccache_layout::assignment_from_vertex_columns;
use ccache_sim::backend::BackendKind;
use ccache_telemetry::{Counter, Registry};
use ccache_trace::Trace;
use std::collections::BTreeMap;

/// The replayed quality of one candidate, ordered by `(misses, cycles)` — exact integer
/// comparison, so rankings cannot drift with float rounding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fitness {
    /// Cache misses (including bypasses) over the whole replay.
    pub misses: u64,
    /// Total cycles including the compute model (control cycles excluded).
    pub cycles: u64,
    /// References replayed.
    pub references: u64,
    /// Miss rate (`misses / references`), for reporting.
    pub miss_rate: f64,
}

impl Fitness {
    /// Extracts fitness from replay statistics.
    pub fn from_run(run: &RunResult) -> Self {
        Fitness {
            misses: run.misses,
            cycles: run.total_cycles(),
            references: run.references,
            miss_rate: run.miss_rate(),
        }
    }

    /// The comparison key: fewer misses is better, cycles break ties.
    pub fn key(&self) -> (u64, u64) {
        (self.misses, self.cycles)
    }
}

/// Memoising, budgeted fitness evaluation over one search space.
pub struct Evaluator<'a> {
    space: &'a SearchSpace,
    fitness: ReplayFitness,
    cache: BTreeMap<Vec<u8>, Fitness>,
    budget: usize,
    replays: usize,
    telemetry: EvaluatorTelemetry,
}

/// Pre-resolved telemetry handles, updated once per batch (never per genome).
struct EvaluatorTelemetry {
    evaluations: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
}

impl EvaluatorTelemetry {
    fn bind(registry: &Registry) -> Self {
        EvaluatorTelemetry {
            evaluations: registry.counter("opt.evaluations"),
            cache_hits: registry.counter("opt.fitness_cache.hits"),
            cache_misses: registry.counter("opt.fitness_cache.misses"),
        }
    }
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over `space` replaying `trace`, allowed `budget` real
    /// replays. `serial` forces single-threaded evaluation even when the `parallel`
    /// feature is compiled in (used to prove schedule independence).
    pub fn new(space: &'a SearchSpace, trace: Trace, budget: usize, serial: bool) -> Self {
        let fitness = if serial {
            ReplayFitness::new(trace).serial()
        } else {
            ReplayFitness::new(trace)
        };
        Evaluator {
            space,
            fitness,
            cache: BTreeMap::new(),
            budget,
            replays: 0,
            telemetry: EvaluatorTelemetry::bind(&Registry::global()),
        }
    }

    /// Rebinds the evaluator's telemetry to `registry` (the process-wide
    /// [`Registry::global`] is bound at construction), forwarding to the underlying
    /// [`ReplayFitness`] so its `opt.engine_pool.*` / `opt.warmup.*` counters land in
    /// the same registry. Purely observational — cache behaviour, budget accounting and
    /// results are unaffected.
    pub fn set_telemetry(&mut self, registry: &Registry) {
        self.telemetry = EvaluatorTelemetry::bind(registry);
        self.fitness.set_telemetry(registry);
    }

    /// Selects the fitness datapath (default: the full amortized
    /// [`FitnessMode::PooledCheckpoint`]). Every mode produces bit-identical results;
    /// tests use [`FitnessMode::Fresh`] as the oracle and the bench harness prices the
    /// rungs against each other.
    pub fn set_fitness_mode(&mut self, mode: FitnessMode) {
        self.fitness.set_mode(mode);
    }

    /// Real replays performed so far (cache hits are free).
    pub fn replays(&self) -> usize {
        self.replays
    }

    /// Replays still allowed.
    pub fn remaining(&self) -> usize {
        self.budget.saturating_sub(self.replays)
    }

    /// Number of distinct candidates scored so far.
    pub fn distinct(&self) -> usize {
        self.cache.len()
    }

    /// The cached fitness of a genome, if it has been evaluated.
    pub fn cached(&self, genome: &Genome) -> Option<Fitness> {
        self.cache.get(&genome.encode()).copied()
    }

    /// Evaluates a batch of genomes, returning fitness **in input order**. Cached
    /// genomes cost nothing; new distinct genomes are replayed (in parallel when
    /// enabled) until the budget runs out, after which unevaluated entries come back as
    /// `None`.
    ///
    /// # Errors
    ///
    /// Fails if a genome decodes to an invalid assignment or geometry — strategies only
    /// produce in-space genomes, so an error here is a bug, not a search miss.
    pub fn evaluate_batch(&mut self, genomes: &[Genome]) -> Result<Vec<Option<Fitness>>, OptError> {
        // Collect the distinct, uncached keys in first-appearance order, capped by the
        // remaining budget.
        let mut new_keys: Vec<Vec<u8>> = Vec::new();
        let mut new_genomes: Vec<&Genome> = Vec::new();
        let mut cache_hits = 0u64;
        for genome in genomes {
            let key = genome.encode();
            if self.cache.contains_key(&key) || new_keys.contains(&key) {
                cache_hits += 1;
                continue;
            }
            if new_keys.len() >= self.remaining() {
                continue;
            }
            new_keys.push(key);
            new_genomes.push(genome);
        }
        self.telemetry.cache_hits.add(cache_hits);
        self.telemetry.cache_misses.add(new_keys.len() as u64);

        let candidates: Vec<Candidate> = new_genomes
            .iter()
            .map(|g| self.candidate(g))
            .collect::<Result<_, _>>()?;
        let results = self.fitness.evaluate_batch(&candidates);
        self.replays += results.len();
        self.telemetry.evaluations.add(results.len() as u64);
        for (key, result) in new_keys.into_iter().zip(results) {
            self.cache.insert(key, Fitness::from_run(&result?));
        }

        Ok(genomes
            .iter()
            .map(|g| self.cache.get(&g.encode()).copied())
            .collect())
    }

    /// Scores a non-genome reference point (e.g. the set-associative baseline) on the
    /// same trace, outside the cache and the budget.
    ///
    /// Like every candidate replay, the backend is built through the shared
    /// [`BackendRegistry`](ccache_sim::BackendRegistry) (via `ReplayEngine::new`), so
    /// the optimizer cannot construct a backend the rest of the stack would not
    /// resolve by name.
    ///
    /// # Errors
    ///
    /// Fails if the configuration is invalid.
    pub fn reference_point(
        &self,
        backend: BackendKind,
        config: ccache_sim::SystemConfig,
        mapping: &CacheMapping,
    ) -> Result<Fitness, OptError> {
        let candidate = Candidate {
            config,
            mapping: mapping.clone(),
            backend,
        };
        Ok(Fitness::from_run(
            &self.fitness.evaluate("reference", &candidate)?,
        ))
    }

    /// Decodes a genome into the candidate the replay engine understands.
    fn candidate(&self, genome: &Genome) -> Result<Candidate, OptError> {
        let geo = &self.space.geometries[genome.geometry];
        let assignment = assignment_from_vertex_columns(&geo.graph, &geo.options, &genome.columns)?;
        let mapping =
            CacheMapping::from_assignment(&assignment, &geo.units, &self.space.symbols, &[]);
        Ok(Candidate::column_cache(geo.config, mapping))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::GeometrySearch;
    use ccache_sim::SystemConfig;
    use ccache_trace::{AccessKind, SymbolTable, TraceRecorder};

    fn workload() -> (Trace, SymbolTable) {
        let mut rec = TraceRecorder::new();
        let a = rec.allocate("a", 256, 8);
        let b = rec.allocate("b", 512, 8);
        for i in 0..128u64 {
            rec.record(a, (i % 32) * 8, 8, AccessKind::Read);
            rec.record(b, (i % 64) * 8, 8, AccessKind::Write);
        }
        rec.finish()
    }

    fn template() -> SystemConfig {
        SystemConfig {
            page_size: 256,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn duplicates_never_replay_twice() {
        let (t, s) = workload();
        let space = SearchSpace::build(&t, &s, template(), &GeometrySearch::fixed(), &[]).unwrap();
        let mut eval = Evaluator::new(&space, t, 100, false);
        let seed = space.seeded(0);
        let batch = vec![seed.clone(), seed.clone(), seed.clone()];
        let scores = eval.evaluate_batch(&batch).unwrap();
        assert_eq!(eval.replays(), 1);
        assert_eq!(eval.distinct(), 1);
        assert_eq!(scores[0], scores[2]);
        // a second batch with the same genome is free
        eval.evaluate_batch(std::slice::from_ref(&seed)).unwrap();
        assert_eq!(eval.replays(), 1);
        assert!(eval.cached(&seed).is_some());
    }

    #[test]
    fn budget_caps_real_replays_only() {
        let (t, s) = workload();
        let space = SearchSpace::build(&t, &s, template(), &GeometrySearch::fixed(), &[]).unwrap();
        let mut eval = Evaluator::new(&space, t, 2, false);
        let genomes = space.enumerate(5);
        let scores = eval.evaluate_batch(&genomes).unwrap();
        assert_eq!(eval.replays(), 2);
        assert_eq!(scores.iter().filter(|s| s.is_some()).count(), 2);
        assert_eq!(scores.iter().filter(|s| s.is_none()).count(), 3);
        assert_eq!(eval.remaining(), 0);
        // cached genomes still score with an exhausted budget
        let again = eval.evaluate_batch(&genomes[..2]).unwrap();
        assert!(again.iter().all(Option::is_some));
    }

    #[test]
    fn serial_and_parallel_agree() {
        let (t, s) = workload();
        let space =
            SearchSpace::build(&t, &s, template(), &GeometrySearch::standard(), &[]).unwrap();
        let genomes = space.enumerate(12);
        let mut par = Evaluator::new(&space, t.clone(), 100, false);
        let mut ser = Evaluator::new(&space, t, 100, true);
        let a = par.evaluate_batch(&genomes).unwrap();
        let b = ser.evaluate_batch(&genomes).unwrap();
        assert_eq!(a, b);
        assert_eq!(par.replays(), ser.replays());
    }

    #[test]
    fn reference_points_do_not_touch_the_budget() {
        let (t, s) = workload();
        let space = SearchSpace::build(&t, &s, template(), &GeometrySearch::fixed(), &[]).unwrap();
        let eval = Evaluator::new(&space, t, 1, false);
        let fit = eval
            .reference_point(
                BackendKind::SetAssociative,
                template(),
                &CacheMapping::new(),
            )
            .unwrap();
        assert!(fit.references > 0);
        assert_eq!(eval.replays(), 0);
    }
}
