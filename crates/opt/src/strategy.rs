//! The pluggable search strategies: exhaustive, random-restart hill climbing, and
//! (μ+λ) evolutionary search.
//!
//! Every strategy speaks the same [`SearchStrategy`] interface: walk a
//! [`SearchSpace`] through a budgeted [`Evaluator`], append one
//! [`GenerationPoint`] per round to the convergence log, and return the best genome
//! found. Strategies always evaluate the heuristic seeds first (template geometry
//! foremost), so the returned best is never worse than the paper's heuristic layout —
//! even with a budget of one.
//!
//! Determinism: every decision flows from the seeded [`StdRng`] stream and exact integer
//! fitness comparisons, with ties broken by the canonical genome encoding. For a fixed
//! seed the outcome is identical run-to-run and with thread-parallel evaluation on or
//! off.

use crate::error::OptError;
use crate::evaluate::{Evaluator, Fitness};
use crate::space::{Genome, SearchSpace};
use rand::{rngs::StdRng, Rng};

/// One row of the convergence table: the state of the search after a round.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationPoint {
    /// Round index (0-based): batch, restart segment or generation, per strategy.
    pub generation: usize,
    /// Cumulative real replays after the round (cache hits excluded).
    pub replays: usize,
    /// Best fitness found so far.
    pub best: Fitness,
}

/// A live listener for search progress: one callback per convergence row, fired the
/// moment the row is appended. This is how `tune` progress reaches telemetry gauges and
/// streaming `subscribe` clients while the search is still running.
pub trait TuneProgress {
    /// Called after each round with the freshly appended convergence row.
    fn on_generation(&mut self, point: &GenerationPoint);
}

/// The convergence log a search appends to: an owned list of [`GenerationPoint`] rows
/// plus an optional live [`TuneProgress`] observer that sees each row as it lands.
///
/// Strategies only ever [`push`](ProgressLog::push) and read [`len`](ProgressLog::len)
/// (the next generation index), so an observer can never change what gets logged —
/// convergence stays byte-identical whether anyone is listening or not.
#[derive(Default)]
pub struct ProgressLog<'a> {
    points: Vec<GenerationPoint>,
    observer: Option<&'a mut dyn TuneProgress>,
}

impl<'a> ProgressLog<'a> {
    /// An empty log with no observer.
    pub fn new() -> ProgressLog<'static> {
        ProgressLog {
            points: Vec::new(),
            observer: None,
        }
    }

    /// An empty log that forwards each appended row to `observer`.
    pub fn with_observer(observer: &'a mut dyn TuneProgress) -> ProgressLog<'a> {
        ProgressLog {
            points: Vec::new(),
            observer: Some(observer),
        }
    }

    /// Appends a row and notifies the observer, if any.
    pub fn push(&mut self, point: GenerationPoint) {
        if let Some(observer) = self.observer.as_mut() {
            observer.on_generation(&point);
        }
        self.points.push(point);
    }

    /// Rows appended so far — also the next round's generation index.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Read-only view of the rows.
    pub fn points(&self) -> &[GenerationPoint] {
        &self.points
    }

    /// Consumes the log, returning the rows.
    pub fn into_points(self) -> Vec<GenerationPoint> {
        self.points
    }
}

impl std::fmt::Debug for ProgressLog<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressLog")
            .field("points", &self.points)
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

/// The best candidate found, with deterministic tie-breaking on the canonical key.
#[derive(Debug, Clone)]
pub struct BestCandidate {
    /// The winning genome.
    pub genome: Genome,
    /// Its replayed fitness.
    pub fitness: Fitness,
}

impl BestCandidate {
    /// Replaces the incumbent if `candidate` is strictly better, or equal-fitness with a
    /// lexicographically smaller canonical key (so outcomes never depend on visit order).
    fn consider(slot: &mut Option<BestCandidate>, genome: &Genome, fitness: Fitness) {
        let replace = match slot {
            None => true,
            Some(best) => {
                fitness.key() < best.fitness.key()
                    || (fitness.key() == best.fitness.key()
                        && genome.encode() < best.genome.encode())
            }
        };
        if replace {
            *slot = Some(BestCandidate {
                genome: genome.clone(),
                fitness,
            });
        }
    }
}

/// Consecutive rounds a stochastic strategy tolerates without a single fresh replay
/// (everything proposed was already cached) before concluding the reachable space is
/// exhausted. Keeps tiny spaces from spinning forever on a large budget.
const DRY_ROUND_LIMIT: usize = 32;

/// A search procedure over genomes.
pub trait SearchStrategy {
    /// The strategy's stable CLI name.
    fn name(&self) -> &'static str;

    /// Runs the search until the evaluator's budget is exhausted (or the space is
    /// covered), returning the best candidate found.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; a search over a well-formed space does not fail.
    fn search(
        &self,
        space: &SearchSpace,
        eval: &mut Evaluator<'_>,
        rng: &mut StdRng,
        log: &mut ProgressLog<'_>,
    ) -> Result<BestCandidate, OptError>;
}

/// Evaluates the heuristic seed of every geometry (template first) and returns the
/// incumbent best. Called by every strategy before its own loop.
fn evaluate_seeds(
    space: &SearchSpace,
    eval: &mut Evaluator<'_>,
) -> Result<Option<BestCandidate>, OptError> {
    let seeds: Vec<Genome> = (0..space.geometries.len())
        .map(|g| space.seeded(g))
        .collect();
    let scores = eval.evaluate_batch(&seeds)?;
    let mut best = None;
    for (genome, fitness) in seeds.iter().zip(scores) {
        if let Some(fitness) = fitness {
            BestCandidate::consider(&mut best, genome, fitness);
        }
    }
    Ok(best)
}

fn log_round(log: &mut ProgressLog<'_>, eval: &Evaluator<'_>, best: &Option<BestCandidate>) {
    if let Some(best) = best {
        log.push(GenerationPoint {
            generation: log.len(),
            replays: eval.replays(),
            best: best.fitness,
        });
    }
}

fn missing_best() -> OptError {
    OptError::BadRequest {
        reason: "search budget must allow at least one evaluation".to_owned(),
    }
}

/// Full enumeration in canonical order — exact for small spaces, a deterministic prefix
/// scan when the space exceeds the budget.
#[derive(Debug, Clone, Default)]
pub struct Exhaustive {
    /// Genomes evaluated per round (one convergence row each).
    pub batch: usize,
}

impl SearchStrategy for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn search(
        &self,
        space: &SearchSpace,
        eval: &mut Evaluator<'_>,
        _rng: &mut StdRng,
        log: &mut ProgressLog<'_>,
    ) -> Result<BestCandidate, OptError> {
        let batch = if self.batch == 0 { 64 } else { self.batch };
        let mut best = evaluate_seeds(space, eval)?;
        log_round(log, eval, &best);
        // +seeds again is fine: they come from the cache and cost nothing.
        let genomes = space.enumerate(eval.remaining().saturating_add(eval.distinct()));
        for chunk in genomes.chunks(batch) {
            if eval.remaining() == 0 {
                break;
            }
            let scores = eval.evaluate_batch(chunk)?;
            for (genome, fitness) in chunk.iter().zip(scores) {
                if let Some(fitness) = fitness {
                    BestCandidate::consider(&mut best, genome, fitness);
                }
            }
            log_round(log, eval, &best);
        }
        best.ok_or_else(missing_best)
    }
}

/// Hill climbing with random restarts: batched neighbour proposals, greedy moves, and a
/// jump to a fresh random genome after `patience` non-improving batches.
#[derive(Debug, Clone)]
pub struct HillClimb {
    /// Neighbours proposed per round.
    pub neighbours: usize,
    /// Non-improving rounds tolerated before a random restart.
    pub patience: usize,
}

impl Default for HillClimb {
    fn default() -> Self {
        HillClimb {
            neighbours: 16,
            patience: 3,
        }
    }
}

impl SearchStrategy for HillClimb {
    fn name(&self) -> &'static str {
        "hill-climb"
    }

    fn search(
        &self,
        space: &SearchSpace,
        eval: &mut Evaluator<'_>,
        rng: &mut StdRng,
        log: &mut ProgressLog<'_>,
    ) -> Result<BestCandidate, OptError> {
        let mut best = evaluate_seeds(space, eval)?;
        log_round(log, eval, &best);
        let Some(start) = &best else {
            return Err(missing_best());
        };
        let mut current = start.clone();
        let mut stuck = 0usize;
        let mut dry = 0usize;
        while eval.remaining() > 0 && dry <= DRY_ROUND_LIMIT {
            let replays_before = eval.replays();
            let neighbours: Vec<Genome> = (0..self.neighbours.max(1))
                .map(|_| space.mutate(&current.genome, rng))
                .collect();
            let scores = eval.evaluate_batch(&neighbours)?;
            let mut round_best: Option<BestCandidate> = None;
            for (genome, fitness) in neighbours.iter().zip(scores) {
                if let Some(fitness) = fitness {
                    BestCandidate::consider(&mut round_best, genome, fitness);
                    BestCandidate::consider(&mut best, genome, fitness);
                }
            }
            match round_best {
                Some(rb) if rb.fitness.key() < current.fitness.key() => {
                    current = rb;
                    stuck = 0;
                }
                Some(_) => stuck += 1,
                None => {} // budget ran dry mid-round; the loop exits
            }
            if stuck > self.patience {
                // restart from a fresh random point; its score arrives with the next
                // neighbour round
                let genome = space.random(rng);
                let fitness = eval
                    .evaluate_batch(std::slice::from_ref(&genome))?
                    .pop()
                    .flatten();
                if let Some(fitness) = fitness {
                    BestCandidate::consider(&mut best, &genome, fitness);
                    current = BestCandidate { genome, fitness };
                }
                stuck = 0;
            }
            dry = if eval.replays() == replays_before {
                dry + 1
            } else {
                0
            };
            log_round(log, eval, &best);
        }
        best.ok_or_else(missing_best)
    }
}

/// (μ+λ) evolutionary search: tournament parent selection, uniform crossover, point
/// mutation, and truncation survival over the union of parents and offspring.
#[derive(Debug, Clone)]
pub struct Evolutionary {
    /// Survivor population size μ.
    pub mu: usize,
    /// Offspring per generation λ.
    pub lambda: usize,
    /// Probability an offspring is a crossover of two parents (otherwise a mutant clone).
    pub crossover_rate: f64,
}

impl Default for Evolutionary {
    fn default() -> Self {
        Evolutionary {
            mu: 8,
            lambda: 16,
            crossover_rate: 0.9,
        }
    }
}

impl SearchStrategy for Evolutionary {
    fn name(&self) -> &'static str {
        "evolutionary"
    }

    fn search(
        &self,
        space: &SearchSpace,
        eval: &mut Evaluator<'_>,
        rng: &mut StdRng,
        log: &mut ProgressLog<'_>,
    ) -> Result<BestCandidate, OptError> {
        let mu = self.mu.max(2);
        let lambda = self.lambda.max(1);
        let mut best = evaluate_seeds(space, eval)?;
        log_round(log, eval, &best);
        if best.is_none() {
            return Err(missing_best());
        }

        // Initial population: the heuristic seeds plus random genomes up to μ.
        let mut init: Vec<Genome> = (0..space.geometries.len().min(mu))
            .map(|g| space.seeded(g))
            .collect();
        while init.len() < mu {
            init.push(space.random(rng));
        }
        let scores = eval.evaluate_batch(&init)?;
        let mut population: Vec<BestCandidate> = init
            .into_iter()
            .zip(scores)
            .filter_map(|(genome, fitness)| {
                fitness.map(|fitness| BestCandidate { genome, fitness })
            })
            .collect();
        for member in &population {
            BestCandidate::consider(&mut best, &member.genome, member.fitness);
        }
        sort_population(&mut population);

        let mut dry = 0usize;
        while eval.remaining() > 0 && !population.is_empty() && dry <= DRY_ROUND_LIMIT {
            let replays_before = eval.replays();
            let offspring: Vec<Genome> = (0..lambda)
                .map(|_| {
                    let a = tournament(&population, rng);
                    let child = if rng.random_bool(self.crossover_rate) {
                        let b = tournament(&population, rng);
                        space.crossover(&population[a].genome, &population[b].genome, rng)
                    } else {
                        population[a].genome.clone()
                    };
                    space.mutate(&child, rng)
                })
                .collect();
            let scores = eval.evaluate_batch(&offspring)?;
            for (genome, fitness) in offspring.into_iter().zip(scores) {
                let Some(fitness) = fitness else { continue };
                BestCandidate::consider(&mut best, &genome, fitness);
                population.push(BestCandidate { genome, fitness });
            }
            // (μ+λ) truncation: parents compete with offspring; duplicates collapse so
            // a converged population keeps exploring distinct genomes.
            sort_population(&mut population);
            population.dedup_by(|a, b| a.genome == b.genome);
            population.truncate(mu);
            dry = if eval.replays() == replays_before {
                dry + 1
            } else {
                0
            };
            log_round(log, eval, &best);
        }
        best.ok_or_else(missing_best)
    }
}

/// Sorts by fitness key then canonical encoding — a strict total order, so the survivor
/// set is schedule-independent.
fn sort_population(population: &mut [BestCandidate]) {
    population.sort_by(|a, b| {
        a.fitness
            .key()
            .cmp(&b.fitness.key())
            .then_with(|| a.genome.encode().cmp(&b.genome.encode()))
    });
}

/// Binary tournament: two uniform picks, the fitter index wins.
fn tournament(population: &[BestCandidate], rng: &mut StdRng) -> usize {
    let a = rng.random_range(0..population.len());
    let b = rng.random_range(0..population.len());
    if population[a].fitness.key() <= population[b].fitness.key() {
        a
    } else {
        b
    }
}

/// The strategies `ccache tune` can request by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyKind {
    /// Full enumeration (small spaces) — [`Exhaustive`].
    Exhaustive,
    /// Random-restart hill climbing — [`HillClimb`].
    HillClimb,
    /// (μ+λ) evolutionary search — [`Evolutionary`].
    #[default]
    Evolutionary,
}

impl StrategyKind {
    /// Every kind, for sweeps and help text.
    pub const ALL: [StrategyKind; 3] = [
        StrategyKind::Exhaustive,
        StrategyKind::HillClimb,
        StrategyKind::Evolutionary,
    ];

    /// Parses a strategy name as used on the command line.
    pub fn parse(s: &str) -> Option<StrategyKind> {
        match s {
            "exhaustive" | "exact" => Some(StrategyKind::Exhaustive),
            "hill-climb" | "hill" | "climb" => Some(StrategyKind::HillClimb),
            "evolutionary" | "evolve" | "ea" => Some(StrategyKind::Evolutionary),
            _ => None,
        }
    }

    /// Builds the strategy with its default parameters.
    pub fn build(self) -> Box<dyn SearchStrategy> {
        match self {
            StrategyKind::Exhaustive => Box::new(Exhaustive::default()),
            StrategyKind::HillClimb => Box::new(HillClimb::default()),
            StrategyKind::Evolutionary => Box::new(Evolutionary::default()),
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StrategyKind::Exhaustive => "exhaustive",
            StrategyKind::HillClimb => "hill-climb",
            StrategyKind::Evolutionary => "evolutionary",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::GeometrySearch;
    use ccache_sim::SystemConfig;
    use ccache_trace::{AccessKind, SymbolTable, Trace, TraceRecorder};
    use rand::SeedableRng;

    fn workload() -> (Trace, SymbolTable) {
        let mut rec = TraceRecorder::new();
        let a = rec.allocate("a", 256, 8);
        let b = rec.allocate("b", 256, 8);
        let c = rec.allocate("c", 1024, 8);
        for i in 0..96u64 {
            rec.record(a, (i % 32) * 8, 8, AccessKind::Read);
            rec.record(b, (i % 32) * 8, 8, AccessKind::Write);
            rec.record(c, (i * 8) % 1024, 8, AccessKind::Read);
        }
        rec.finish()
    }

    fn template() -> SystemConfig {
        SystemConfig {
            page_size: 256,
            ..SystemConfig::default()
        }
    }

    fn run_kind(
        kind: StrategyKind,
        budget: usize,
        seed: u64,
    ) -> (BestCandidate, Vec<GenerationPoint>) {
        let (t, s) = workload();
        let space = SearchSpace::build(&t, &s, template(), &GeometrySearch::fixed(), &[]).unwrap();
        let mut eval = Evaluator::new(&space, t, budget, false);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut log = ProgressLog::new();
        let best = kind
            .build()
            .search(&space, &mut eval, &mut rng, &mut log)
            .unwrap();
        (best, log.into_points())
    }

    #[test]
    fn every_strategy_is_at_least_as_good_as_the_heuristic() {
        let (t, s) = workload();
        let space = SearchSpace::build(&t, &s, template(), &GeometrySearch::fixed(), &[]).unwrap();
        let mut eval = Evaluator::new(&space, t, 1, false);
        let heuristic = eval
            .evaluate_batch(&[space.seeded(0)])
            .unwrap()
            .pop()
            .flatten()
            .unwrap();
        for kind in StrategyKind::ALL {
            let (best, log) = run_kind(kind, 60, 42);
            assert!(
                best.fitness.key() <= heuristic.key(),
                "{kind} regressed past the heuristic seed"
            );
            assert!(!log.is_empty());
            // convergence is monotone
            for w in log.windows(2) {
                assert!(w[1].best.key() <= w[0].best.key());
                assert!(w[1].replays >= w[0].replays);
            }
        }
    }

    #[test]
    fn fixed_seed_is_reproducible() {
        for kind in StrategyKind::ALL {
            let (a, la) = run_kind(kind, 40, 7);
            let (b, lb) = run_kind(kind, 40, 7);
            assert_eq!(a.genome, b.genome);
            assert_eq!(a.fitness.key(), b.fitness.key());
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn budget_of_one_still_returns_the_heuristic() {
        for kind in StrategyKind::ALL {
            let (best, _) = run_kind(kind, 1, 1);
            assert!(best.fitness.references > 0);
        }
    }

    #[test]
    fn kinds_parse_and_display() {
        for kind in StrategyKind::ALL {
            assert_eq!(StrategyKind::parse(&kind.to_string()), Some(kind));
        }
        assert_eq!(
            StrategyKind::parse("evolve"),
            Some(StrategyKind::Evolutionary)
        );
        assert_eq!(StrategyKind::parse("bogus"), None);
        assert_eq!(StrategyKind::default(), StrategyKind::Evolutionary);
    }
}
