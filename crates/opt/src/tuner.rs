//! The top-level tuner: build the space, run a strategy, package the result.
//!
//! [`tune`] is the one-call interface the CLI and tests use. It is fully deterministic
//! for a fixed [`TuneRequest`]: the convergence log, the winning genome and every
//! reported number are identical across runs and across thread-parallel evaluation on or
//! off. The heuristic seed is always evaluated first, so the reported best is never
//! worse than the paper's `assign_columns` layout on the template geometry.

use crate::error::OptError;
use crate::evaluate::{Evaluator, Fitness};
use crate::space::{GeometrySearch, SearchSpace};
use crate::strategy::{BestCandidate, GenerationPoint, ProgressLog, StrategyKind, TuneProgress};
use ccache_core::CacheMapping;
use ccache_json::{Json, ToJson};
use ccache_layout::assignment_from_vertex_columns;
use ccache_sim::backend::BackendKind;
use ccache_sim::SystemConfig;
use ccache_telemetry::Registry;
use ccache_trace::{SymbolTable, Trace, VarId};
use rand::{rngs::StdRng, SeedableRng};

/// Everything a tuning run needs besides the workload itself.
#[derive(Debug, Clone)]
pub struct TuneRequest {
    /// The geometry template: capacity, latencies and page size are fixed; columns,
    /// line size and TLB entries vary within [`TuneRequest::geometry`].
    pub template: SystemConfig,
    /// The geometry knobs to search ([`GeometrySearch::fixed`] pins the template).
    pub geometry: GeometrySearch,
    /// The search strategy to run.
    pub strategy: StrategyKind,
    /// Maximum number of real replays (cache hits are free).
    pub budget: usize,
    /// RNG seed; fixes the entire search trajectory.
    pub seed: u64,
    /// Force single-threaded evaluation (results are identical either way).
    pub serial: bool,
    /// Variables pinned to columns in every candidate.
    pub forced: Vec<(VarId, usize)>,
    /// The backend of the comparison row (default: the set-associative cache; the ideal
    /// scratchpad gives a lower-bound row instead).
    pub baseline: BackendKind,
}

impl Default for TuneRequest {
    fn default() -> Self {
        TuneRequest {
            template: SystemConfig::default(),
            geometry: GeometrySearch::standard(),
            strategy: StrategyKind::default(),
            budget: 256,
            seed: 42,
            serial: false,
            forced: Vec::new(),
            baseline: BackendKind::SetAssociative,
        }
    }
}

/// A reported fitness triple plus the layout cost `W` where one is defined.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredLayout {
    /// Replayed fitness.
    pub fitness: Fitness,
    /// The paper's cost `W` of the assignment (`None` for the set-associative baseline,
    /// which has no assignment).
    pub cost: Option<u64>,
}

/// The winning configuration in reportable form.
#[derive(Debug, Clone, PartialEq)]
pub struct BestConfig {
    /// Columns (ways) of the winning geometry.
    pub columns: usize,
    /// Line size in bytes.
    pub line_size: u64,
    /// TLB entries.
    pub tlb_entries: usize,
    /// Total capacity in bytes (always the template's).
    pub capacity_bytes: u64,
    /// Page size in bytes (always the template's).
    pub page_size: u64,
}

impl BestConfig {
    fn from_config(config: &SystemConfig) -> Self {
        BestConfig {
            columns: config.cache.columns(),
            line_size: config.cache.line_size(),
            tlb_entries: config.tlb_entries,
            capacity_bytes: config.cache.capacity_bytes(),
            page_size: config.page_size,
        }
    }
}

/// The full result of one tuning run.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Name of the strategy that ran.
    pub strategy: String,
    /// The seed the run used.
    pub seed: u64,
    /// The replay budget the run was allowed.
    pub budget: usize,
    /// Real replays performed.
    pub replays: usize,
    /// Distinct candidates scored.
    pub distinct: usize,
    /// Number of geometries in the search space.
    pub geometries: usize,
    /// Exact space size when it fits in a `u128`.
    pub cardinality: Option<u128>,
    /// The winning geometry.
    pub best_config: BestConfig,
    /// The winning per-variable column assignment, as `(variable name, columns)` in
    /// symbol-table order.
    pub best_assignment: Vec<(String, Vec<usize>)>,
    /// The winning candidate's score.
    pub best: ScoredLayout,
    /// The paper's heuristic layout on the template geometry.
    pub heuristic: ScoredLayout,
    /// The set-associative baseline on the template geometry (no mapping).
    pub baseline: ScoredLayout,
    /// One row per search round.
    pub convergence: Vec<GenerationPoint>,
}

impl TuneOutcome {
    /// Miss-rate improvement of the best layout over the heuristic layout
    /// (positive = better; zero when the search only matched the seed).
    pub fn improvement_vs_heuristic(&self) -> f64 {
        self.heuristic.fitness.miss_rate - self.best.fitness.miss_rate
    }

    /// Miss-rate improvement of the best layout over the set-associative baseline.
    pub fn improvement_vs_baseline(&self) -> f64 {
        self.baseline.fitness.miss_rate - self.best.fitness.miss_rate
    }
}

fn fitness_json(fitness: &Fitness) -> Json {
    Json::obj([
        ("misses", fitness.misses.to_json()),
        ("cycles", fitness.cycles.to_json()),
        ("references", fitness.references.to_json()),
        ("miss_rate", fitness.miss_rate.to_json()),
    ])
}

fn scored_json(scored: &ScoredLayout) -> Json {
    let mut pairs = vec![
        ("misses", scored.fitness.misses.to_json()),
        ("cycles", scored.fitness.cycles.to_json()),
        ("references", scored.fitness.references.to_json()),
        ("miss_rate", scored.fitness.miss_rate.to_json()),
    ];
    if let Some(cost) = scored.cost {
        pairs.push(("cost", cost.to_json()));
    }
    Json::obj(pairs)
}

impl ToJson for TuneOutcome {
    fn to_json(&self) -> Json {
        Json::obj([
            ("strategy", self.strategy.to_json()),
            ("seed", self.seed.to_json()),
            ("budget", (self.budget as u64).to_json()),
            ("replays", (self.replays as u64).to_json()),
            ("distinct_candidates", (self.distinct as u64).to_json()),
            ("geometries", (self.geometries as u64).to_json()),
            (
                "cardinality",
                match self.cardinality {
                    Some(n) if n <= u64::MAX as u128 => (n as u64).to_json(),
                    _ => Json::Null,
                },
            ),
            (
                "best",
                Json::obj([
                    (
                        "config",
                        Json::obj([
                            ("columns", (self.best_config.columns as u64).to_json()),
                            ("line_size", self.best_config.line_size.to_json()),
                            (
                                "tlb_entries",
                                (self.best_config.tlb_entries as u64).to_json(),
                            ),
                            ("capacity_bytes", self.best_config.capacity_bytes.to_json()),
                            ("page_size", self.best_config.page_size.to_json()),
                        ]),
                    ),
                    (
                        "assignment",
                        Json::arr(self.best_assignment.iter().map(|(name, cols)| {
                            Json::obj([
                                ("variable", name.to_json()),
                                (
                                    "columns",
                                    Json::arr(cols.iter().map(|&c| (c as u64).to_json())),
                                ),
                            ])
                        })),
                    ),
                    ("misses", self.best.fitness.misses.to_json()),
                    ("cycles", self.best.fitness.cycles.to_json()),
                    ("references", self.best.fitness.references.to_json()),
                    ("miss_rate", self.best.fitness.miss_rate.to_json()),
                    (
                        "cost",
                        match self.best.cost {
                            Some(c) => c.to_json(),
                            None => Json::Null,
                        },
                    ),
                ]),
            ),
            ("heuristic", scored_json(&self.heuristic)),
            ("baseline", scored_json(&self.baseline)),
            (
                "improvement",
                Json::obj([
                    (
                        "vs_heuristic_miss_rate",
                        self.improvement_vs_heuristic().to_json(),
                    ),
                    (
                        "vs_baseline_miss_rate",
                        self.improvement_vs_baseline().to_json(),
                    ),
                ]),
            ),
            (
                "convergence",
                Json::arr(self.convergence.iter().map(|point| {
                    Json::obj([
                        ("generation", (point.generation as u64).to_json()),
                        ("replays", (point.replays as u64).to_json()),
                        ("best", fitness_json(&point.best)),
                    ])
                })),
            ),
        ])
    }
}

/// Forwards each generation to the telemetry registry, then to an optional
/// caller-supplied observer. Keeps the per-generation instrumentation (one counter
/// increment and one gauge store) out of the strategies themselves.
struct TelemetryProgress<'a> {
    generations: ccache_telemetry::Counter,
    best_misses: ccache_telemetry::Gauge,
    next: Option<&'a mut dyn TuneProgress>,
}

impl<'a> TelemetryProgress<'a> {
    fn new(registry: &Registry, next: Option<&'a mut dyn TuneProgress>) -> Self {
        TelemetryProgress {
            generations: registry.counter("opt.generations"),
            best_misses: registry.gauge("opt.best.misses"),
            next,
        }
    }
}

impl TuneProgress for TelemetryProgress<'_> {
    fn on_generation(&mut self, point: &GenerationPoint) {
        self.generations.incr();
        self.best_misses.set(point.best.misses);
        if let Some(next) = self.next.as_deref_mut() {
            next.on_generation(point);
        }
    }
}

/// Runs one tuning search over a workload.
///
/// Equivalent to [`tune_observed`] with the process-wide registry and no live
/// progress observer; the full convergence log is still available on the returned
/// [`TuneOutcome`].
///
/// # Errors
///
/// Fails when the template geometry is invalid, the space is empty, the budget is zero,
/// or evaluation fails.
pub fn tune(
    trace: &Trace,
    symbols: &SymbolTable,
    request: &TuneRequest,
) -> Result<TuneOutcome, OptError> {
    tune_observed(trace, symbols, request, &Registry::global(), None)
}

/// Runs one tuning search, streaming per-generation progress.
///
/// Identical search trajectory and result to [`tune`] — observation never steers the
/// search. `telemetry` receives the `opt.*` counters and gauges (per-generation count,
/// best-so-far misses, fitness-cache traffic); `progress` — when given — is called once
/// per completed generation, after the telemetry update, from the calling thread.
///
/// # Errors
///
/// Fails when the template geometry is invalid, the space is empty, the budget is zero,
/// or evaluation fails.
pub fn tune_observed(
    trace: &Trace,
    symbols: &SymbolTable,
    request: &TuneRequest,
    telemetry: &Registry,
    progress: Option<&mut dyn TuneProgress>,
) -> Result<TuneOutcome, OptError> {
    if request.budget == 0 {
        return Err(OptError::BadRequest {
            reason: "budget must be at least 1 replay".to_owned(),
        });
    }
    let space = SearchSpace::build(
        trace,
        symbols,
        request.template,
        &request.geometry,
        &request.forced,
    )?;
    let mut eval = Evaluator::new(&space, trace.clone(), request.budget, request.serial);
    eval.set_telemetry(telemetry);

    // Reference points: the paper's heuristic layout (geometry 0 is always the
    // template) and the plain set-associative cache. The heuristic replay is also the
    // search seed, so it is paid for exactly once.
    let heuristic_genome = space.seeded(0);
    let heuristic_fitness = eval
        .evaluate_batch(std::slice::from_ref(&heuristic_genome))?
        .pop()
        .flatten()
        .ok_or_else(|| OptError::BadRequest {
            reason: "budget must allow the heuristic seed evaluation".to_owned(),
        })?;
    let heuristic = ScoredLayout {
        fitness: heuristic_fitness,
        cost: Some(space.geometries[0].heuristic.cost),
    };
    let baseline = ScoredLayout {
        fitness: eval.reference_point(request.baseline, request.template, &CacheMapping::new())?,
        cost: None,
    };

    let mut rng = StdRng::seed_from_u64(request.seed);
    let mut observer = TelemetryProgress::new(telemetry, progress);
    let mut log = ProgressLog::with_observer(&mut observer);
    let strategy = request.strategy.build();
    let mut best = strategy.search(&space, &mut eval, &mut rng, &mut log)?;
    let convergence = log.into_points();

    // The seeds are evaluated first by every strategy, so this cannot trigger; it is a
    // guarantee, not a hope.
    if heuristic.fitness.key() < best.fitness.key() {
        best = BestCandidate {
            genome: heuristic_genome,
            fitness: heuristic.fitness,
        };
    }

    let geo = &space.geometries[best.genome.geometry];
    let assignment =
        assignment_from_vertex_columns(&geo.graph, &geo.options, &best.genome.columns)?;
    let best_assignment: Vec<(String, Vec<usize>)> = symbols
        .iter()
        .filter_map(|region| {
            let cols = assignment.columns_of(region.id);
            if cols.is_empty() {
                None
            } else {
                Some((region.name.clone(), cols.to_vec()))
            }
        })
        .collect();

    Ok(TuneOutcome {
        strategy: strategy.name().to_owned(),
        seed: request.seed,
        budget: request.budget,
        replays: eval.replays(),
        distinct: eval.distinct(),
        geometries: space.geometries.len(),
        cardinality: space.cardinality(),
        best_config: BestConfig::from_config(&geo.config),
        best_assignment,
        best: ScoredLayout {
            fitness: best.fitness,
            cost: Some(assignment.cost),
        },
        heuristic,
        baseline,
        convergence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccache_trace::{AccessKind, TraceRecorder};

    fn workload() -> (Trace, SymbolTable) {
        let mut rec = TraceRecorder::new();
        let hot = rec.allocate("hot", 256, 8);
        let table = rec.allocate("table", 256, 8);
        let stream = rec.allocate("stream", 4096, 8);
        for i in 0..256u64 {
            rec.record(hot, (i % 32) * 8, 8, AccessKind::Read);
            rec.record(table, (i % 32) * 8, 8, AccessKind::Read);
            rec.record(stream, (i * 16) % 4096, 8, AccessKind::Write);
        }
        rec.finish()
    }

    fn request() -> TuneRequest {
        TuneRequest {
            template: SystemConfig {
                page_size: 256,
                ..SystemConfig::default()
            },
            geometry: GeometrySearch::fixed(),
            budget: 40,
            ..TuneRequest::default()
        }
    }

    #[test]
    fn tune_never_loses_to_the_heuristic() {
        let (t, s) = workload();
        for strategy in StrategyKind::ALL {
            let outcome = tune(
                &t,
                &s,
                &TuneRequest {
                    strategy,
                    ..request()
                },
            )
            .unwrap();
            assert!(
                outcome.best.fitness.key() <= outcome.heuristic.fitness.key(),
                "{strategy} lost to the heuristic"
            );
            assert!(outcome.improvement_vs_heuristic() >= 0.0);
            assert!(!outcome.convergence.is_empty());
            assert!(outcome.replays <= outcome.budget);
            assert!(!outcome.best_assignment.is_empty());
        }
    }

    #[test]
    fn fixed_seed_means_identical_json() {
        let (t, s) = workload();
        let a = tune(&t, &s, &request()).unwrap();
        let b = tune(&t, &s, &request()).unwrap();
        assert_eq!(a.to_json().pretty(), b.to_json().pretty());
    }

    #[test]
    fn serial_and_parallel_runs_match_byte_for_byte() {
        let (t, s) = workload();
        let parallel = tune(&t, &s, &request()).unwrap();
        let serial = tune(
            &t,
            &s,
            &TuneRequest {
                serial: true,
                ..request()
            },
        )
        .unwrap();
        assert_eq!(parallel.to_json().pretty(), serial.to_json().pretty());
    }

    #[test]
    fn observed_runs_stream_every_generation_and_match_tune() {
        struct Collect(Vec<GenerationPoint>);
        impl TuneProgress for Collect {
            fn on_generation(&mut self, point: &GenerationPoint) {
                self.0.push(point.clone());
            }
        }

        let (t, s) = workload();
        let plain = tune(&t, &s, &request()).unwrap();

        let registry = Registry::new();
        let mut collect = Collect(Vec::new());
        let observed = tune_observed(&t, &s, &request(), &registry, Some(&mut collect)).unwrap();

        // Observation never steers the search.
        assert_eq!(plain.to_json().pretty(), observed.to_json().pretty());
        // The live stream is exactly the convergence log, in order.
        assert_eq!(collect.0, observed.convergence);
        // Telemetry saw one increment per generation and the final best gauge.
        assert_eq!(
            registry.counter_value("opt.generations"),
            observed.convergence.len() as u64
        );
        assert_eq!(
            registry.gauge_value("opt.best.misses"),
            observed.convergence.last().unwrap().best.misses
        );
        assert!(registry.counter_value("opt.evaluations") > 0);
    }

    #[test]
    fn zero_budget_is_rejected() {
        let (t, s) = workload();
        let err = tune(
            &t,
            &s,
            &TuneRequest {
                budget: 0,
                ..request()
            },
        )
        .unwrap_err();
        assert!(matches!(err, OptError::BadRequest { .. }));
    }

    #[test]
    fn json_report_has_the_contract_fields() {
        let (t, s) = workload();
        let outcome = tune(&t, &s, &request()).unwrap();
        let text = outcome.to_json().pretty();
        for field in [
            "\"strategy\"",
            "\"best\"",
            "\"heuristic\"",
            "\"baseline\"",
            "\"improvement\"",
            "\"convergence\"",
            "\"assignment\"",
            "\"miss_rate\"",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }
}
