//! Autotuning for software-controlled caches: search cache geometries and column
//! assignments with replay-driven fitness.
//!
//! The paper's premise is that software can pick better column mappings than hardware
//! LRU — but its Section 3 algorithm is a single heuristic. This crate searches the
//! *joint* space of cache geometry (columns, line size, TLB entries) and per-unit column
//! assignment, scoring every candidate by actually replaying the workload through
//! `ccache-core`'s batched [`ReplayEngine`](ccache_core::ReplayEngine) — the
//! simulation-in-the-loop fitness used by evolutionary memory-subsystem design (Díaz
//! Álvarez et al.; Risco-Martín et al.).
//!
//! * [`space`] — the [`SearchSpace`]: materialised geometries, genome encode/decode,
//!   mutation and crossover, all valid by construction.
//! * [`evaluate`] — the budgeted [`Evaluator`]: canonical-key fitness cache (duplicate
//!   candidates never re-replay) over [`ReplayFitness`](ccache_core::ReplayFitness)
//!   batches (thread-parallel with the `parallel` feature, byte-identical without).
//! * [`strategy`] — [`SearchStrategy`] implementations: [`Exhaustive`],
//!   [`HillClimb`] and [`Evolutionary`] (μ+λ).
//! * [`tuner`] — the one-call [`tune`] driver and its JSON-serialisable
//!   [`TuneOutcome`].
//!
//! Determinism is a hard guarantee, not an aspiration: a fixed seed fixes the whole
//! trajectory, and every strategy evaluates the paper's heuristic layout first, so the
//! reported best is never worse than the heuristic.
//!
//! # Example
//!
//! ```
//! use ccache_opt::{tune, GeometrySearch, StrategyKind, TuneRequest};
//! use ccache_sim::SystemConfig;
//! use ccache_trace::{AccessKind, TraceRecorder};
//!
//! // Record a workload: two hot tables that conflict with a streaming buffer.
//! let mut rec = TraceRecorder::new();
//! let a = rec.allocate("a", 256, 8);
//! let b = rec.allocate("b", 4096, 8);
//! for i in 0..128u64 {
//!     rec.record(a, (i % 32) * 8, 8, AccessKind::Read);
//!     rec.record(b, (i * 16) % 4096, 8, AccessKind::Write);
//! }
//! let (trace, symbols) = rec.finish();
//!
//! let request = TuneRequest {
//!     template: SystemConfig { page_size: 256, ..SystemConfig::default() },
//!     geometry: GeometrySearch::fixed(),
//!     strategy: StrategyKind::HillClimb,
//!     budget: 20,
//!     ..TuneRequest::default()
//! };
//! let outcome = tune(&trace, &symbols, &request)?;
//! // the search can only match or beat the paper's heuristic layout
//! assert!(outcome.best.fitness.miss_rate <= outcome.heuristic.fitness.miss_rate);
//! # Ok::<(), ccache_opt::OptError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod error;
pub mod evaluate;
pub mod space;
pub mod strategy;
pub mod tuner;

pub use error::OptError;
pub use evaluate::{Evaluator, Fitness};
pub use space::{Genome, GeometryChoice, GeometrySearch, SearchSpace};
pub use strategy::{
    BestCandidate, Evolutionary, Exhaustive, GenerationPoint, HillClimb, ProgressLog,
    SearchStrategy, StrategyKind, TuneProgress,
};
pub use tuner::{tune, tune_observed, BestConfig, ScoredLayout, TuneOutcome, TuneRequest};

/// Convenient glob-import of the types most programs need.
pub mod prelude {
    pub use crate::error::OptError;
    pub use crate::evaluate::{Evaluator, Fitness};
    pub use crate::space::{Genome, GeometrySearch, SearchSpace};
    pub use crate::strategy::{SearchStrategy, StrategyKind, TuneProgress};
    pub use crate::tuner::{tune, tune_observed, TuneOutcome, TuneRequest};
}
