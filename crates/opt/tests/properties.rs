//! Property-based tests of the search subsystem's invariants.
//!
//! The contracts under test (satellite requirements of the search-subsystem PR):
//!
//! * every genome produced by `random`, `mutate` or `crossover` is valid — columns in
//!   range, forced placements respected;
//! * `decode(encode(g)) == g` for every genome the space can produce;
//! * a fixed seed produces an identical best result (and convergence log) with
//!   thread-parallel evaluation on and off.

use ccache_core::FitnessMode;
use ccache_opt::{
    tune, Evaluator, Fitness, GeometrySearch, ProgressLog, SearchSpace, StrategyKind, TuneRequest,
};
use ccache_sim::SystemConfig;
use ccache_telemetry::Registry;
use ccache_trace::{AccessKind, SymbolTable, Trace, TraceRecorder, VarId};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Builds a random small workload: `vars` variables with varied sizes, `events` accesses
/// round-robining with a drifting stride.
fn workload(vars: usize, events: u64) -> (Trace, SymbolTable) {
    let mut rec = TraceRecorder::new();
    let ids: Vec<VarId> = (0..vars)
        .map(|i| rec.allocate(&format!("v{i}"), 64 * (i as u64 % 5 + 1), 8))
        .collect();
    for e in 0..events {
        let var = ids[(e as usize) % ids.len()];
        let size = 64 * ((e as usize % ids.len()) as u64 % 5 + 1);
        rec.record(var, (e * 24) % size, 8, AccessKind::Read);
    }
    rec.finish()
}

fn template() -> SystemConfig {
    SystemConfig {
        page_size: 256,
        ..SystemConfig::default()
    }
}

fn space(vars: usize, events: u64, joint: bool, forced: &[(VarId, usize)]) -> SearchSpace {
    let (t, s) = workload(vars, events);
    let search = if joint {
        GeometrySearch::standard()
    } else {
        GeometrySearch::fixed()
    };
    SearchSpace::build(&t, &s, template(), &search, forced).expect("space builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mutation and crossover are closed over the valid-genome set, and encoding round
    /// trips exactly, from any seeded starting point.
    #[test]
    fn genome_operations_stay_valid_and_round_trip(
        seed in 0u64..1_000_000,
        vars in 2usize..7,
        joint in any::<bool>(),
    ) {
        let space = space(vars, 200, joint, &[]);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut genome = space.random(&mut rng);
        for step in 0..60 {
            prop_assert!(space.is_valid(&genome), "invalid genome at step {}", step);
            prop_assert_eq!(space.decode(&genome.encode()).as_ref(), Some(&genome));
            let partner = space.random(&mut rng);
            prop_assert!(space.is_valid(&partner));
            genome = match step % 3 {
                0 => space.mutate(&genome, &mut rng),
                1 => space.crossover(&genome, &partner, &mut rng),
                _ => space.crossover(&space.mutate(&partner, &mut rng), &genome, &mut rng),
            };
        }
    }

    /// Forced placements survive arbitrary chains of genome operations in every geometry.
    #[test]
    fn forced_placements_are_never_moved(seed in 0u64..1_000_000, col in 0usize..2) {
        let forced = [(VarId(0), col)];
        let space = space(4, 160, true, &forced);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut genome = space.random(&mut rng);
        for _ in 0..40 {
            let geo = &space.geometries[genome.geometry];
            for (idx, vertex) in geo.graph.vertices() {
                if vertex.var == VarId(0) {
                    prop_assert_eq!(genome.columns[idx], col);
                }
            }
            genome = space.mutate(&genome, &mut rng);
        }
    }

    /// The amortized fitness datapaths are invisible: for any random duplicate-heavy,
    /// geometry-diverse batch, pooled and pooled-checkpoint evaluation return
    /// bit-identical [`Fitness`] values and identical `opt.evaluations` /
    /// `opt.fitness_cache.*` counter deltas as the fresh-engine oracle, with
    /// thread-parallel evaluation on and off.
    #[test]
    fn pooled_datapaths_match_the_fresh_oracle(
        seed in 0u64..1_000_000,
        dup in 1usize..4,
        joint in any::<bool>(),
    ) {
        let (t, s) = workload(4, 200);
        let search = if joint { GeometrySearch::standard() } else { GeometrySearch::fixed() };
        let space = SearchSpace::build(&t, &s, template(), &search, &[]).expect("space builds");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut genomes = Vec::new();
        for _ in 0..6 {
            let g = space.random(&mut rng);
            for _ in 0..dup {
                genomes.push(g.clone());
            }
        }

        let run = |mode: FitnessMode, serial: bool| {
            let registry = Registry::new();
            let mut eval = Evaluator::new(&space, t.clone(), 100, serial);
            eval.set_telemetry(&registry);
            eval.set_fitness_mode(mode);
            let scores = eval.evaluate_batch(&genomes).unwrap();
            let bits: Vec<Option<(u64, u64, u64, u64)>> = scores
                .iter()
                .map(|f| f.map(|f: Fitness| (f.misses, f.cycles, f.references, f.miss_rate.to_bits())))
                .collect();
            let counters = (
                registry.counter_value("opt.evaluations"),
                registry.counter_value("opt.fitness_cache.hits"),
                registry.counter_value("opt.fitness_cache.misses"),
            );
            (bits, counters)
        };

        let (oracle, oracle_counters) = run(FitnessMode::Fresh, true);
        for mode in [FitnessMode::Pooled, FitnessMode::PooledCheckpoint] {
            for serial in [false, true] {
                let (bits, counters) = run(mode, serial);
                prop_assert_eq!(&bits, &oracle, "fitness mismatch in {:?} serial={}", mode, serial);
                prop_assert_eq!(counters, oracle_counters);
            }
        }
    }

    /// For any seed and strategy, parallel and serial evaluation produce identical
    /// winners, identical replay counts and an identical convergence log.
    #[test]
    fn fixed_seed_matches_across_parallel_and_serial(
        seed in 0u64..1_000_000,
        kind_idx in 0usize..3,
    ) {
        let kind = StrategyKind::ALL[kind_idx];
        let (t, s) = workload(5, 240);
        let space = SearchSpace::build(&t, &s, template(), &GeometrySearch::fixed(), &[])
            .expect("space builds");

        let run = |serial: bool| {
            let mut eval = Evaluator::new(&space, t.clone(), 30, serial);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut log = ProgressLog::new();
            let best = kind.build().search(&space, &mut eval, &mut rng, &mut log).unwrap();
            (best, eval.replays(), log.into_points())
        };
        let (best_par, replays_par, log_par) = run(false);
        let (best_ser, replays_ser, log_ser) = run(true);
        prop_assert_eq!(best_par.genome, best_ser.genome);
        prop_assert_eq!(best_par.fitness.key(), best_ser.fitness.key());
        prop_assert_eq!(replays_par, replays_ser);
        prop_assert_eq!(log_par, log_ser);
    }
}

/// The end-to-end determinism contract at the `tune` level: identical JSON byte-for-byte
/// across repeated runs and across the parallel/serial switch, and the best never loses
/// to the heuristic.
#[test]
fn tune_is_deterministic_and_never_worse_than_heuristic() {
    let (t, s) = workload(6, 400);
    for strategy in StrategyKind::ALL {
        let request = TuneRequest {
            template: template(),
            geometry: GeometrySearch::standard(),
            strategy,
            budget: 40,
            seed: 1234,
            ..TuneRequest::default()
        };
        let a = tune(&t, &s, &request).unwrap();
        let b = tune(&t, &s, &request).unwrap();
        let serial = tune(
            &t,
            &s,
            &TuneRequest {
                serial: true,
                ..request
            },
        )
        .unwrap();
        use ccache_json::ToJson;
        assert_eq!(a.to_json().pretty(), b.to_json().pretty());
        assert_eq!(a.to_json().pretty(), serial.to_json().pretty());
        assert!(a.best.fitness.key() <= a.heuristic.fitness.key());
    }
}
