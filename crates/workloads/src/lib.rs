//! Instrumented embedded workloads for the column-caching reproduction.
//!
//! Every workload in this crate is a *real* Rust kernel (inverse quantisation, IDCT,
//! motion-compensation add, LZ77 compression, FIR, matmul, histogram, triad) executed over
//! [`instrument::Tracked`] buffers, so a run produces both a verifiable functional result
//! and the variable-annotated memory-reference stream that the layout algorithm
//! (`ccache-layout`) and the cache simulator (`ccache-sim`) consume.
//!
//! * [`mpeg`] — the paper's Figure 4 benchmark: `dequant`, `plus` and `idct`, plus the
//!   combined application and its per-procedure phases.
//! * [`gzipsim`] — the gzip-like compression job of Figure 5 (hash-chain LZ77).
//! * [`multitask`] — the round-robin scheduler that interleaves several jobs' streams.
//! * [`kernels`] — additional embedded kernels (FIR, matmul, histogram, triad) for
//!   ablations and examples.
//! * [`mod@corpus`] — the named registry over all of the above, used by search tooling to
//!   select workloads by string (`ccache tune --workload mpeg-combined`).
//!
//! # Example
//!
//! ```
//! use ccache_workloads::mpeg::{run_dequant, MpegConfig};
//!
//! let run = run_dequant(&MpegConfig::small());
//! assert!(run.references() > 0);
//! assert!(run.symbols.by_name("dq_quant_tbl").is_some());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod corpus;
pub mod gzipsim;
pub mod instrument;
pub mod kernels;
pub mod mpeg;
pub mod multitask;

pub use corpus::{corpus, CORPUS_NAMES};
pub use gzipsim::{run_gzip, run_gzip_job, GzipConfig};
pub use instrument::{Tracked, WorkloadRun};
pub use mpeg::{run_combined, run_dequant, run_idct, run_plus, MpegConfig};
pub use multitask::{figure5_quanta, round_robin, Job, Schedule};

/// Convenient glob-import of the types most programs need.
pub mod prelude {
    pub use crate::corpus::{corpus, CORPUS_NAMES};
    pub use crate::gzipsim::{run_gzip_job, GzipConfig};
    pub use crate::instrument::{Tracked, WorkloadRun};
    pub use crate::kernels::{run_fir, run_histogram, run_matmul, run_triad};
    pub use crate::mpeg::{run_combined, run_dequant, run_idct, run_plus, MpegConfig};
    pub use crate::multitask::{figure5_quanta, round_robin, Job, Schedule};
}
