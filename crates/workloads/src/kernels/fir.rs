//! FIR filter kernel: a small, constantly reused coefficient array plus a circular delay
//! line against a streaming input and output — a classic candidate for scratchpad mapping.

use crate::instrument::{Tracked, WorkloadRun};
use ccache_trace::TraceRecorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the FIR workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FirConfig {
    /// Number of filter taps (coefficients).
    pub taps: usize,
    /// Number of input samples processed.
    pub samples: usize,
    /// Seed for the input signal and coefficients.
    pub seed: u64,
}

impl Default for FirConfig {
    fn default() -> Self {
        FirConfig {
            taps: 32,
            samples: 4096,
            seed: 0xf1f1,
        }
    }
}

impl FirConfig {
    /// A small configuration for fast tests.
    pub fn small() -> Self {
        FirConfig {
            taps: 8,
            samples: 64,
            seed: 3,
        }
    }
}

fn generate(config: &FirConfig) -> (Vec<i32>, Vec<i32>) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let coeffs = (0..config.taps)
        .map(|_| rng.random_range(-64..=64))
        .collect();
    let input = (0..config.samples)
        .map(|_| rng.random_range(-1024..=1024))
        .collect();
    (coeffs, input)
}

/// Reference (uninstrumented) FIR filter: `y[n] = sum_k c[k] * x[n - k]` with zero history.
pub fn fir_reference(coeffs: &[i32], input: &[i32]) -> Vec<i64> {
    input
        .iter()
        .enumerate()
        .map(|(n, _)| {
            coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| {
                    if n >= k {
                        i64::from(c) * i64::from(input[n - k])
                    } else {
                        0
                    }
                })
                .sum()
        })
        .collect()
}

/// Runs the instrumented FIR filter inside an existing recorder; returns an output checksum.
pub fn record_fir(rec: &mut TraceRecorder, config: &FirConfig) -> u64 {
    let (coeff_data, input_data) = generate(config);
    let coeffs = Tracked::from_slice(rec, "fir_coeffs", &coeff_data);
    let input = Tracked::from_slice(rec, "fir_input", &input_data);
    let mut delay: Tracked<i32> = Tracked::new(rec, "fir_delay", config.taps);
    let mut output: Tracked<i64> = Tracked::new(rec, "fir_output", config.samples);

    let mut checksum = 0u64;
    for n in 0..config.samples {
        // shift the new sample into the circular delay line
        let x = input.get(rec, n);
        delay.set(rec, n % config.taps, x);
        let mut acc: i64 = 0;
        for k in 0..config.taps.min(n + 1) {
            let c = coeffs.get(rec, k);
            let d = delay.get(rec, (n - k) % config.taps);
            acc += i64::from(c) * i64::from(d);
        }
        output.set(rec, n, acc);
        checksum = checksum.wrapping_mul(1000003).wrapping_add(acc as u64);
    }
    checksum
}

/// Runs the instrumented FIR filter standalone.
pub fn run_fir(config: &FirConfig) -> WorkloadRun {
    let mut rec = TraceRecorder::new();
    let checksum = record_fir(&mut rec, config);
    let (trace, symbols) = rec.finish();
    WorkloadRun {
        name: "fir".to_owned(),
        trace,
        symbols,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_manual_convolution() {
        let coeffs = vec![1, 2, 3];
        let input = vec![1, 0, 0, 4];
        let out = fir_reference(&coeffs, &input);
        // y[0]=1, y[1]=2, y[2]=3, y[3]=4*1=4
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn instrumented_output_matches_reference() {
        let cfg = FirConfig::small();
        let run = run_fir(&cfg);
        let (coeffs, input) = generate(&cfg);
        let reference = fir_reference(&coeffs, &input);
        let mut checksum = 0u64;
        for y in reference {
            checksum = checksum.wrapping_mul(1000003).wrapping_add(y as u64);
        }
        assert_eq!(run.checksum, checksum);
    }

    #[test]
    fn coefficients_are_hot_and_input_is_streamed() {
        let cfg = FirConfig::default();
        let run = run_fir(&cfg);
        let coeff_var = run.symbols.by_name("fir_coeffs").unwrap().id;
        let input_var = run.symbols.by_name("fir_input").unwrap().id;
        let coeff_accesses = run.trace.count_for(coeff_var);
        let input_accesses = run.trace.count_for(input_var);
        assert_eq!(input_accesses, cfg.samples);
        assert!(coeff_accesses > input_accesses * 4);
    }
}
