//! Blocked integer matrix multiply: three matrices with heavy, structured reuse.

use crate::instrument::{Tracked, WorkloadRun};
use ccache_trace::TraceRecorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the matrix-multiply workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulConfig {
    /// Matrix dimension `n` (matrices are `n × n`).
    pub n: usize,
    /// Blocking factor (tile edge length); 0 or 1 disables blocking.
    pub tile: usize,
    /// Seed for the matrix data.
    pub seed: u64,
}

impl Default for MatmulConfig {
    fn default() -> Self {
        MatmulConfig {
            n: 24,
            tile: 8,
            seed: 0xabcd,
        }
    }
}

impl MatmulConfig {
    /// A small configuration for fast tests.
    pub fn small() -> Self {
        MatmulConfig {
            n: 8,
            tile: 4,
            seed: 5,
        }
    }
}

fn generate(config: &MatmulConfig) -> (Vec<i32>, Vec<i32>) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n;
    let a = (0..n * n).map(|_| rng.random_range(-8..=8)).collect();
    let b = (0..n * n).map(|_| rng.random_range(-8..=8)).collect();
    (a, b)
}

/// Reference (uninstrumented) matrix multiply `C = A × B` in row-major order.
pub fn matmul_reference(a: &[i32], b: &[i32], n: usize) -> Vec<i64> {
    let mut c = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i64;
            for k in 0..n {
                acc += i64::from(a[i * n + k]) * i64::from(b[k * n + j]);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Runs the instrumented blocked matrix multiply inside an existing recorder; returns a
/// checksum of `C`.
pub fn record_matmul(rec: &mut TraceRecorder, config: &MatmulConfig) -> u64 {
    let n = config.n;
    let tile = if config.tile <= 1 { n } else { config.tile };
    let (a_data, b_data) = generate(config);
    let a = Tracked::from_slice(rec, "mm_a", &a_data);
    let b = Tracked::from_slice(rec, "mm_b", &b_data);
    let mut c: Tracked<i64> = Tracked::new(rec, "mm_c", n * n);

    for ii in (0..n).step_by(tile) {
        for jj in (0..n).step_by(tile) {
            for kk in (0..n).step_by(tile) {
                for i in ii..(ii + tile).min(n) {
                    for j in jj..(jj + tile).min(n) {
                        let mut acc = c.get(rec, i * n + j);
                        for k in kk..(kk + tile).min(n) {
                            let av = a.get(rec, i * n + k);
                            let bv = b.get(rec, k * n + j);
                            acc += i64::from(av) * i64::from(bv);
                        }
                        c.set(rec, i * n + j, acc);
                    }
                }
            }
        }
    }

    let mut checksum = 0u64;
    for i in 0..n * n {
        checksum = checksum.wrapping_mul(31).wrapping_add(c.peek(i) as u64);
    }
    checksum
}

/// Runs the instrumented matrix multiply standalone.
pub fn run_matmul(config: &MatmulConfig) -> WorkloadRun {
    let mut rec = TraceRecorder::new();
    let checksum = record_matmul(&mut rec, config);
    let (trace, symbols) = rec.finish();
    WorkloadRun {
        name: "matmul".to_owned(),
        trace,
        symbols,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_multiplies_identity_correctly() {
        let n = 3;
        let identity = vec![1, 0, 0, 0, 1, 0, 0, 0, 1];
        let m = vec![1, 2, 3, 4, 5, 6, 7, 8, 9];
        let c = matmul_reference(&m, &identity, n);
        assert_eq!(c, m.iter().map(|&x| i64::from(x)).collect::<Vec<_>>());
    }

    #[test]
    fn blocked_instrumented_matches_reference_checksum() {
        let cfg = MatmulConfig::small();
        let run = run_matmul(&cfg);
        let (a, b) = generate(&cfg);
        let c = matmul_reference(&a, &b, cfg.n);
        let mut checksum = 0u64;
        for v in c {
            checksum = checksum.wrapping_mul(31).wrapping_add(v as u64);
        }
        assert_eq!(run.checksum, checksum);
    }

    #[test]
    fn unblocked_and_blocked_agree() {
        let blocked = run_matmul(&MatmulConfig {
            tile: 4,
            ..MatmulConfig::small()
        });
        let unblocked = run_matmul(&MatmulConfig {
            tile: 0,
            ..MatmulConfig::small()
        });
        assert_eq!(blocked.checksum, unblocked.checksum);
        // same arithmetic, different reference streams
        assert_ne!(blocked.trace, unblocked.trace);
    }

    #[test]
    fn all_three_matrices_are_touched() {
        let run = run_matmul(&MatmulConfig::small());
        for name in ["mm_a", "mm_b", "mm_c"] {
            let var = run.symbols.by_name(name).unwrap().id;
            assert!(run.trace.count_for(var) > 0, "{name} never accessed");
        }
    }
}
