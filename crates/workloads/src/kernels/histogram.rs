//! Histogram kernel: a streaming input updating a small, hot bucket table.

use crate::instrument::{Tracked, WorkloadRun};
use ccache_trace::TraceRecorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the histogram workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramConfig {
    /// Number of input samples.
    pub samples: usize,
    /// Number of histogram buckets.
    pub buckets: usize,
    /// Seed for the input distribution.
    pub seed: u64,
}

impl Default for HistogramConfig {
    fn default() -> Self {
        HistogramConfig {
            samples: 8192,
            buckets: 64,
            seed: 0x4157,
        }
    }
}

impl HistogramConfig {
    /// A small configuration for fast tests.
    pub fn small() -> Self {
        HistogramConfig {
            samples: 200,
            buckets: 16,
            seed: 2,
        }
    }
}

fn generate(config: &HistogramConfig) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.samples)
        .map(|_| rng.random_range(0..config.buckets as u32 * 4))
        .collect()
}

/// Reference (uninstrumented) histogram.
pub fn histogram_reference(input: &[u32], buckets: usize) -> Vec<u64> {
    let mut h = vec![0u64; buckets];
    for &x in input {
        h[x as usize % buckets] += 1;
    }
    h
}

/// Runs the instrumented histogram inside an existing recorder; returns a checksum.
pub fn record_histogram(rec: &mut TraceRecorder, config: &HistogramConfig) -> u64 {
    let data = generate(config);
    let input = Tracked::from_slice(rec, "hist_input", &data);
    let mut table: Tracked<u64> = Tracked::new(rec, "hist_table", config.buckets);
    for i in 0..config.samples {
        let x = input.get(rec, i) as usize % config.buckets;
        let cur = table.get(rec, x);
        table.set(rec, x, cur + 1);
    }
    let mut checksum = 0u64;
    for b in 0..config.buckets {
        checksum = checksum.wrapping_mul(257).wrapping_add(table.peek(b));
    }
    checksum
}

/// Runs the instrumented histogram standalone.
pub fn run_histogram(config: &HistogramConfig) -> WorkloadRun {
    let mut rec = TraceRecorder::new();
    let checksum = record_histogram(&mut rec, config);
    let (trace, symbols) = rec.finish();
    WorkloadRun {
        name: "histogram".to_owned(),
        trace,
        symbols,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_counts_every_sample() {
        let h = histogram_reference(&[0, 1, 1, 5, 17], 16);
        assert_eq!(h.iter().sum::<u64>(), 5);
        // 17 % 16 = 1, so bucket 1 collects 1, 1 and 17
        assert_eq!(h[1], 3);
        assert_eq!(h[0], 1);
        assert_eq!(h[5], 1);
    }

    #[test]
    fn instrumented_matches_reference() {
        let cfg = HistogramConfig::small();
        let run = run_histogram(&cfg);
        let h = histogram_reference(&generate(&cfg), cfg.buckets);
        let mut checksum = 0u64;
        for v in h {
            checksum = checksum.wrapping_mul(257).wrapping_add(v);
        }
        assert_eq!(run.checksum, checksum);
    }

    #[test]
    fn table_is_reused_heavily() {
        let cfg = HistogramConfig::default();
        let run = run_histogram(&cfg);
        let table = run.symbols.by_name("hist_table").unwrap();
        // 2 accesses (read + write) per sample
        assert_eq!(run.trace.count_for(table.id), cfg.samples * 2);
        assert!(table.size < 2048);
    }
}
