//! Additional embedded kernels used for ablation studies, examples and tests.
//!
//! These are not part of the paper's evaluation but exercise the same machinery with
//! different locality structures: a FIR filter (small hot coefficient array + streaming
//! signal), a blocked matrix multiply (three matrices with heavy reuse), a histogram
//! (streaming input + small hot table) and a STREAM-style triad (pure streaming).

pub mod fir;
pub mod histogram;
pub mod matmul;
pub mod triad;

pub use fir::{fir_reference, run_fir, FirConfig};
pub use histogram::{histogram_reference, run_histogram, HistogramConfig};
pub use matmul::{matmul_reference, run_matmul, MatmulConfig};
pub use triad::{run_triad, triad_reference, TriadConfig};
