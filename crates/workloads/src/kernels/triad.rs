//! STREAM-style triad kernel: `a[i] = b[i] + scalar * c[i]` — pure streaming with no reuse,
//! the pattern that pollutes a shared cache and benefits from being confined to one column.

use crate::instrument::{Tracked, WorkloadRun};
use ccache_trace::TraceRecorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the triad workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriadConfig {
    /// Number of elements per stream.
    pub elements: usize,
    /// The scalar multiplier.
    pub scalar: i32,
    /// Seed for the stream data.
    pub seed: u64,
}

impl Default for TriadConfig {
    fn default() -> Self {
        TriadConfig {
            elements: 4096,
            scalar: 3,
            seed: 0x7a1d,
        }
    }
}

impl TriadConfig {
    /// A small configuration for fast tests.
    pub fn small() -> Self {
        TriadConfig {
            elements: 128,
            scalar: 2,
            seed: 9,
        }
    }
}

fn generate(config: &TriadConfig) -> (Vec<i32>, Vec<i32>) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let b = (0..config.elements)
        .map(|_| rng.random_range(-100..=100))
        .collect();
    let c = (0..config.elements)
        .map(|_| rng.random_range(-100..=100))
        .collect();
    (b, c)
}

/// Reference (uninstrumented) triad.
pub fn triad_reference(b: &[i32], c: &[i32], scalar: i32) -> Vec<i64> {
    b.iter()
        .zip(c)
        .map(|(&bi, &ci)| i64::from(bi) + i64::from(scalar) * i64::from(ci))
        .collect()
}

/// Runs the instrumented triad inside an existing recorder; returns a checksum of `a`.
pub fn record_triad(rec: &mut TraceRecorder, config: &TriadConfig) -> u64 {
    let (b_data, c_data) = generate(config);
    let b = Tracked::from_slice(rec, "triad_b", &b_data);
    let c = Tracked::from_slice(rec, "triad_c", &c_data);
    let mut a: Tracked<i64> = Tracked::new(rec, "triad_a", config.elements);
    let mut checksum = 0u64;
    for i in 0..config.elements {
        let bv = b.get(rec, i);
        let cv = c.get(rec, i);
        let av = i64::from(bv) + i64::from(config.scalar) * i64::from(cv);
        a.set(rec, i, av);
        checksum = checksum.wrapping_mul(10007).wrapping_add(av as u64);
    }
    checksum
}

/// Runs the instrumented triad standalone.
pub fn run_triad(config: &TriadConfig) -> WorkloadRun {
    let mut rec = TraceRecorder::new();
    let checksum = record_triad(&mut rec, config);
    let (trace, symbols) = rec.finish();
    WorkloadRun {
        name: "triad".to_owned(),
        trace,
        symbols,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_computes_expected_values() {
        let a = triad_reference(&[1, 2, 3], &[10, 20, 30], 2);
        assert_eq!(a, vec![21, 42, 63]);
    }

    #[test]
    fn instrumented_matches_reference() {
        let cfg = TriadConfig::small();
        let run = run_triad(&cfg);
        let (b, c) = generate(&cfg);
        let a = triad_reference(&b, &c, cfg.scalar);
        let mut checksum = 0u64;
        for v in a {
            checksum = checksum.wrapping_mul(10007).wrapping_add(v as u64);
        }
        assert_eq!(run.checksum, checksum);
    }

    #[test]
    fn every_element_touched_exactly_once_per_stream() {
        let cfg = TriadConfig::small();
        let run = run_triad(&cfg);
        for name in ["triad_a", "triad_b", "triad_c"] {
            let var = run.symbols.by_name(name).unwrap().id;
            assert_eq!(run.trace.count_for(var), cfg.elements, "{name}");
        }
        assert_eq!(run.trace.len(), cfg.elements * 3);
    }
}
