//! Instrumented data structures.
//!
//! The workloads in this crate are *real* Rust kernels operating on real data; what makes
//! them usable as cache-experiment drivers is that every element access is also reported to
//! a [`TraceRecorder`], producing the variable-annotated reference stream the paper's
//! profiler would produce. [`Tracked`] wraps a typed buffer and records a memory reference
//! for each `get`/`set`.

use ccache_trace::{AccessKind, TraceRecorder, VarId};

/// A typed buffer whose element accesses are recorded in a [`TraceRecorder`].
///
/// The recorder is passed explicitly to each access so that several tracked buffers can
/// share one recorder without interior mutability.
///
/// # Example
///
/// ```
/// use ccache_trace::TraceRecorder;
/// use ccache_workloads::instrument::Tracked;
///
/// let mut rec = TraceRecorder::new();
/// let mut xs: Tracked<i32> = Tracked::new(&mut rec, "xs", 8);
/// xs.set(&mut rec, 3, 42);
/// assert_eq!(xs.get(&mut rec, 3), 42);
/// assert_eq!(rec.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Tracked<T> {
    var: VarId,
    elem_size: u64,
    data: Vec<T>,
}

impl<T: Copy + Default> Tracked<T> {
    /// Allocates a tracked buffer of `len` default-initialised elements, registering it
    /// under `name` in the recorder's symbol table.
    pub fn new(rec: &mut TraceRecorder, name: &str, len: usize) -> Self {
        let elem_size = std::mem::size_of::<T>().max(1) as u64;
        let var = rec.allocate_array(name, len as u64, elem_size);
        Tracked {
            var,
            elem_size,
            data: vec![T::default(); len],
        }
    }

    /// Allocates a tracked buffer initialised from a slice.
    pub fn from_slice(rec: &mut TraceRecorder, name: &str, values: &[T]) -> Self {
        let mut t = Tracked::new(rec, name, values.len());
        t.data.copy_from_slice(values);
        t
    }
}

impl<T: Copy> Tracked<T> {
    /// The variable identifier of this buffer.
    pub fn var(&self) -> VarId {
        self.var
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `i`, recording the access.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, rec: &mut TraceRecorder, i: usize) -> T {
        rec.record(
            self.var,
            i as u64 * self.elem_size,
            self.elem_size as u32,
            AccessKind::Read,
        );
        self.data[i]
    }

    /// Writes element `i`, recording the access.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn set(&mut self, rec: &mut TraceRecorder, i: usize, value: T) {
        rec.record(
            self.var,
            i as u64 * self.elem_size,
            self.elem_size as u32,
            AccessKind::Write,
        );
        self.data[i] = value;
    }

    /// Reads element `i` without recording (for checksums and assertions in tests).
    #[inline]
    pub fn peek(&self, i: usize) -> T {
        self.data[i]
    }

    /// Writes element `i` without recording (for test setup).
    #[inline]
    pub fn poke(&mut self, i: usize, value: T) {
        self.data[i] = value;
    }

    /// The untracked underlying data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

/// Result of running one instrumented workload: the reference stream, the symbol table of
/// the variables it used, and a checksum of the functional output (so tests can verify the
/// kernel actually computed something correct while generating its trace).
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Name of the workload (e.g. `"dequant"`).
    pub name: String,
    /// The recorded reference stream.
    pub trace: ccache_trace::Trace,
    /// The variables the workload allocated.
    pub symbols: ccache_trace::SymbolTable,
    /// A checksum of the workload's functional output.
    pub checksum: u64,
}

impl WorkloadRun {
    /// Number of memory references in the run.
    pub fn references(&self) -> usize {
        self.trace.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_records_reads_and_writes() {
        let mut rec = TraceRecorder::new();
        let mut buf: Tracked<u32> = Tracked::new(&mut rec, "buf", 16);
        assert_eq!(buf.len(), 16);
        assert!(!buf.is_empty());
        buf.set(&mut rec, 0, 7);
        buf.set(&mut rec, 15, 9);
        let v = buf.get(&mut rec, 0);
        assert_eq!(v, 7);
        assert_eq!(buf.peek(15), 9);
        let (trace, symbols) = rec.finish();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.write_count(), 2);
        assert_eq!(symbols.by_name("buf").unwrap().size, 64);
        // all events attributed to the buffer's variable
        assert!(trace.iter().all(|e| e.var == Some(buf.var())));
    }

    #[test]
    fn from_slice_and_poke_do_not_record() {
        let mut rec = TraceRecorder::new();
        let mut buf = Tracked::from_slice(&mut rec, "b", &[1i16, 2, 3]);
        buf.poke(1, 5);
        assert_eq!(buf.peek(1), 5);
        assert_eq!(buf.as_slice(), &[1, 5, 3]);
        assert_eq!(rec.len(), 0);
    }

    #[test]
    fn element_offsets_follow_element_size() {
        let mut rec = TraceRecorder::new();
        let buf: Tracked<u64> = Tracked::new(&mut rec, "q", 4);
        buf.get(&mut rec, 2);
        let (trace, symbols) = rec.finish();
        let base = symbols.by_name("q").unwrap().base;
        assert_eq!(trace.get(0).unwrap().addr, base + 16);
        assert_eq!(trace.get(0).unwrap().size, 8);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        let mut rec = TraceRecorder::new();
        let buf: Tracked<u8> = Tracked::new(&mut rec, "b", 2);
        buf.get(&mut rec, 2);
    }
}
