//! The named workload corpus: every instrumented workload reachable by one string.
//!
//! Search tooling (`ccache tune`) and scripts need to select a workload by name rather
//! than by calling the individual `run_*` constructors, so this module maintains the
//! registry. Each entry builds a full [`WorkloadRun`] — trace, symbol table, functional
//! checksum — at either the paper scale or a reduced quick scale, deterministically: the
//! same name and scale always produce the same reference stream.

use crate::gzipsim::{run_gzip_job, GzipConfig};
use crate::instrument::WorkloadRun;
use crate::kernels::{
    run_fir, run_histogram, run_matmul, run_triad, FirConfig, HistogramConfig, MatmulConfig,
    TriadConfig,
};
use crate::mpeg::{run_combined, run_dequant, run_idct, run_plus, MpegConfig};

/// Every workload name [`corpus`] accepts, in the order reported to users.
pub const CORPUS_NAMES: [&str; 9] = [
    "mpeg-combined",
    "mpeg-dequant",
    "mpeg-idct",
    "mpeg-plus",
    "gzip",
    "fir",
    "matmul",
    "histogram",
    "triad",
];

/// Builds the named workload at full (`quick == false`) or reduced (`quick == true`)
/// scale. Returns `None` for unknown names; [`CORPUS_NAMES`] lists the valid ones.
pub fn corpus(name: &str, quick: bool) -> Option<WorkloadRun> {
    let mpeg = if quick {
        MpegConfig::small()
    } else {
        MpegConfig::default()
    };
    Some(match name {
        "mpeg-combined" => run_combined(&mpeg),
        "mpeg-dequant" => run_dequant(&mpeg),
        "mpeg-idct" => run_idct(&mpeg),
        "mpeg-plus" => run_plus(&mpeg),
        "gzip" => {
            let config = GzipConfig {
                input_len: if quick { 4 * 1024 } else { 24 * 1024 },
                ..GzipConfig::default()
            };
            run_gzip_job(&config, 0, "gzip")
        }
        "fir" => run_fir(&if quick {
            FirConfig::small()
        } else {
            FirConfig::default()
        }),
        "matmul" => run_matmul(&if quick {
            MatmulConfig::small()
        } else {
            MatmulConfig::default()
        }),
        "histogram" => run_histogram(&if quick {
            HistogramConfig::small()
        } else {
            HistogramConfig::default()
        }),
        "triad" => run_triad(&if quick {
            TriadConfig::small()
        } else {
            TriadConfig::default()
        }),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_builds_at_both_scales() {
        for name in CORPUS_NAMES {
            for quick in [true, false] {
                // full-scale runs are big; only exercise quick here, full for one entry
                if !quick && name != "fir" {
                    continue;
                }
                let run = corpus(name, quick).unwrap_or_else(|| panic!("{name} missing"));
                assert!(!run.trace.is_empty(), "{name} produced an empty trace");
                assert!(!run.symbols.is_empty(), "{name} has no symbols");
            }
        }
    }

    #[test]
    fn unknown_names_return_none() {
        assert!(corpus("mp3", true).is_none());
        assert!(corpus("", false).is_none());
    }

    #[test]
    fn corpus_builds_are_deterministic() {
        let a = corpus("mpeg-dequant", true).unwrap();
        let b = corpus("mpeg-dequant", true).unwrap();
        assert_eq!(a.trace.len(), b.trace.len());
        assert_eq!(a.checksum, b.checksum);
        for (ea, eb) in a.trace.iter().zip(b.trace.iter()) {
            assert_eq!(ea, eb);
        }
    }
}
