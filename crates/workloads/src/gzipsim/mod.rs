//! A gzip-like compression job (LZ77 with a hash-chain match finder).
//!
//! Figure 5 of the paper runs three `gzip` jobs round-robin on one processor and measures
//! how job A's CPI varies with the scheduling quantum. What matters for that experiment is
//! the memory behaviour of a real compressor: a streaming input, a streaming output, and a
//! hash table + chain table that are revisited constantly and suffer when another job's
//! quantum evicts them. This module implements exactly that structure — a deflate-style
//! LZ77 compressor with hash-chain match finding — in both an uninstrumented form (for
//! correctness tests and round-trips) and an instrumented form that records its reference
//! stream.

pub mod lz77;

pub use lz77::{compress, decompress, GzipConfig, Token};

use crate::instrument::{Tracked, WorkloadRun};
use ccache_trace::TraceRecorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates compressible pseudo-text: words drawn from a per-seed dictionary with some
/// random bytes mixed in, similar in spirit to the text inputs of the SPEC gzip benchmark.
///
/// The dictionary is deliberately large (96 distinct pseudo-words) so that the
/// compressor's hash table sees a wide spread of trigrams — a small dictionary would leave
/// most of the hash table untouched and hide the cache behaviour the Figure 5 experiment
/// depends on.
pub fn generate_input(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dictionary: Vec<Vec<u8>> = (0..96)
        .map(|_| {
            let word_len = rng.random_range(3..=9);
            let mut word: Vec<u8> = (0..word_len)
                .map(|_| rng.random_range(b'a'..=b'z'))
                .collect();
            word.push(b' ');
            word
        })
        .collect();
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        if rng.random_bool(0.92) {
            let w = &dictionary[rng.random_range(0..dictionary.len())];
            out.extend_from_slice(w);
        } else {
            out.push(rng.random_range(0u8..=255));
        }
    }
    out.truncate(len);
    out
}

/// Runs the instrumented compressor inside an existing recorder, prefixing variable names
/// with `prefix` so several jobs can share one symbol table. Returns a checksum of the
/// emitted tokens.
pub fn record_gzip(rec: &mut TraceRecorder, config: &GzipConfig, prefix: &str) -> u64 {
    let input_data = generate_input(config.input_len, config.seed);
    let hash_size = config.hash_size();

    let input = Tracked::from_slice(rec, &format!("{prefix}input"), &input_data);
    // head[h] = most recent position with hash h (+1; 0 = empty)
    let mut head: Tracked<u32> = Tracked::new(rec, &format!("{prefix}hash_head"), hash_size);
    // prev[pos % window] = previous position in the chain (+1; 0 = end)
    let mut prev: Tracked<u32> =
        Tracked::new(rec, &format!("{prefix}prev_chain"), config.window_len);
    let mut output: Tracked<u8> =
        Tracked::new(rec, &format!("{prefix}output"), config.input_len + 16);

    let mut out_pos = 0usize;
    let mut emit =
        |output: &mut Tracked<u8>, rec: &mut TraceRecorder, byte: u8, checksum: &mut u64| {
            if out_pos < output.len() {
                output.set(rec, out_pos, byte);
            }
            out_pos += 1;
            *checksum = checksum
                .wrapping_mul(16777619)
                .wrapping_add(u64::from(byte));
        };

    let mut checksum = 0u64;
    let n = input_data.len();
    let mut pos = 0usize;
    while pos < n {
        if pos + lz77::MIN_MATCH > n {
            let lit = input.get(rec, pos);
            emit(&mut output, rec, 0, &mut checksum);
            emit(&mut output, rec, lit, &mut checksum);
            pos += 1;
            continue;
        }
        // hash the next three bytes
        let b0 = input.get(rec, pos);
        let b1 = input.get(rec, pos + 1);
        let b2 = input.get(rec, pos + 2);
        let h = lz77::hash3(b0, b1, b2, config.hash_bits);

        // walk the hash chain looking for the longest match inside the window
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut candidate = head.get(rec, h) as usize;
        let mut chain_budget = config.max_chain;
        while candidate > 0 && chain_budget > 0 {
            let cand_pos = candidate - 1;
            if cand_pos >= pos || pos - cand_pos > config.window_len {
                break;
            }
            // compare bytes
            let mut len = 0usize;
            while pos + len < n
                && len < config.max_match
                && input.get(rec, cand_pos + len) == input.get(rec, pos + len)
            {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_dist = pos - cand_pos;
            }
            candidate = prev.get(rec, cand_pos % config.window_len) as usize;
            chain_budget -= 1;
        }

        // insert the current position into the hash chain
        let old_head = head.get(rec, h);
        prev.set(rec, pos % config.window_len, old_head);
        head.set(rec, h, (pos + 1) as u32);

        if best_len >= lz77::MIN_MATCH {
            emit(&mut output, rec, 1, &mut checksum);
            emit(&mut output, rec, (best_dist >> 8) as u8, &mut checksum);
            emit(&mut output, rec, (best_dist & 0xff) as u8, &mut checksum);
            emit(&mut output, rec, best_len as u8, &mut checksum);
            pos += best_len;
        } else {
            let lit = input.get(rec, pos);
            emit(&mut output, rec, 0, &mut checksum);
            emit(&mut output, rec, lit, &mut checksum);
            pos += 1;
        }
    }
    checksum
}

/// Runs one instrumented gzip job standalone.
pub fn run_gzip(config: &GzipConfig) -> WorkloadRun {
    let mut rec = TraceRecorder::new();
    let checksum = record_gzip(&mut rec, config, "gz_");
    let (trace, symbols) = rec.finish();
    WorkloadRun {
        name: "gzip".to_owned(),
        trace,
        symbols,
        checksum,
    }
}

/// Runs an instrumented gzip job whose variables live in a private address-space region
/// starting at `base` (so several jobs do not share any cache lines), with per-job seed.
pub fn run_gzip_job(config: &GzipConfig, base: u64, job_name: &str) -> WorkloadRun {
    let mut rec = TraceRecorder::with_base(base);
    let checksum = record_gzip(&mut rec, config, &format!("{job_name}_"));
    let (trace, symbols) = rec.finish();
    WorkloadRun {
        name: job_name.to_owned(),
        trace,
        symbols,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_input_is_deterministic_and_compressible() {
        let a = generate_input(2000, 42);
        let b = generate_input(2000, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2000);
        let tokens = compress(&a, &GzipConfig::small());
        let matches = tokens
            .iter()
            .filter(|t| matches!(t, Token::Match { .. }))
            .count();
        assert!(
            matches > 10,
            "dictionary text should produce matches, got {matches}"
        );
        assert_ne!(generate_input(2000, 43), a);
    }

    #[test]
    fn instrumented_run_touches_hash_structures() {
        let cfg = GzipConfig::small();
        let run = run_gzip(&cfg);
        assert!(run.references() > cfg.input_len);
        let head = run.symbols.by_name("gz_hash_head").unwrap();
        let prev = run.symbols.by_name("gz_prev_chain").unwrap();
        assert!(run.trace.count_for(head.id) > 0);
        assert!(run.trace.count_for(prev.id) > 0);
        assert_ne!(run.checksum, 0);
    }

    #[test]
    fn instrumented_run_is_deterministic() {
        let cfg = GzipConfig::small();
        assert_eq!(run_gzip(&cfg).checksum, run_gzip(&cfg).checksum);
    }

    #[test]
    fn jobs_with_different_bases_do_not_overlap() {
        let cfg = GzipConfig::small();
        let a = run_gzip_job(&cfg, 0x100_0000, "jobA");
        let b = run_gzip_job(&cfg, 0x200_0000, "jobB");
        let a_max = a.trace.stats().max_addr;
        let b_min = b.trace.stats().min_addr;
        assert!(a_max < b_min, "job address spaces must be disjoint");
    }
}
