//! Uninstrumented LZ77 compressor/decompressor used as the functional reference.

/// Minimum match length worth emitting (as in deflate).
pub const MIN_MATCH: usize = 3;

/// Configuration of the gzip-like job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GzipConfig {
    /// Number of input bytes to compress.
    pub input_len: usize,
    /// Sliding-window length in bytes (power of two).
    pub window_len: usize,
    /// Number of bits of the hash (table has `1 << hash_bits` entries).
    pub hash_bits: u32,
    /// Maximum number of chain links followed per position.
    pub max_chain: usize,
    /// Maximum match length.
    pub max_match: usize,
    /// Seed of the generated input data.
    pub seed: u64,
}

impl Default for GzipConfig {
    /// A job sized for the Figure 5 experiment: one job's hot working set (hash head
    /// table, chain table and the recent input window, roughly 10 KiB) fits in a 16 KiB
    /// cache on its own, but three such jobs together do not — so the critical job's hit
    /// rate depends on how often it is interrupted. Everything fits easily in 128 KiB.
    fn default() -> Self {
        GzipConfig {
            input_len: 24 * 1024,
            window_len: 1024,
            hash_bits: 10,
            max_chain: 16,
            max_match: 64,
            seed: 1,
        }
    }
}

impl GzipConfig {
    /// A tiny configuration for fast unit tests.
    pub fn small() -> Self {
        GzipConfig {
            input_len: 1500,
            window_len: 512,
            hash_bits: 8,
            max_chain: 8,
            max_match: 32,
            seed: 11,
        }
    }

    /// Number of entries in the hash-head table.
    pub fn hash_size(&self) -> usize {
        1usize << self.hash_bits
    }

    /// Returns a copy with a different input seed (for independent jobs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference of `len` bytes starting `dist` bytes before the current position.
    Match {
        /// Backwards distance in bytes (at least 1).
        dist: usize,
        /// Match length in bytes (at least [`MIN_MATCH`]).
        len: usize,
    },
}

/// 3-byte hash with `bits` output bits (same shape as deflate's insert hash).
#[inline]
pub fn hash3(b0: u8, b1: u8, b2: u8, bits: u32) -> usize {
    let h = (u32::from(b0) << 10) ^ (u32::from(b1) << 5) ^ u32::from(b2);
    (h.wrapping_mul(2654435761) >> (32 - bits)) as usize
}

/// Compresses `input` with hash-chain LZ77 and returns the token stream.
pub fn compress(input: &[u8], config: &GzipConfig) -> Vec<Token> {
    let n = input.len();
    let hash_size = config.hash_size();
    let mut head = vec![0u32; hash_size];
    let mut prev = vec![0u32; config.window_len];
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < n {
        if pos + MIN_MATCH > n {
            out.push(Token::Literal(input[pos]));
            pos += 1;
            continue;
        }
        let h = hash3(input[pos], input[pos + 1], input[pos + 2], config.hash_bits);
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut candidate = head[h] as usize;
        let mut budget = config.max_chain;
        while candidate > 0 && budget > 0 {
            let cand_pos = candidate - 1;
            if cand_pos >= pos || pos - cand_pos > config.window_len {
                break;
            }
            let mut len = 0usize;
            while pos + len < n
                && len < config.max_match
                && input[cand_pos + len] == input[pos + len]
            {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_dist = pos - cand_pos;
            }
            candidate = prev[cand_pos % config.window_len] as usize;
            budget -= 1;
        }
        prev[pos % config.window_len] = head[h];
        head[h] = (pos + 1) as u32;
        if best_len >= MIN_MATCH {
            out.push(Token::Match {
                dist: best_dist,
                len: best_len,
            });
            pos += best_len;
        } else {
            out.push(Token::Literal(input[pos]));
            pos += 1;
        }
    }
    out
}

/// Decompresses a token stream back into bytes.
pub fn decompress(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { dist, len } => {
                let start = out.len() - dist;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    out
}

/// Compressed size in bytes under a deflate-like cost model: a literal costs one byte and
/// a match costs three (length plus a two-byte distance).
pub fn encoded_size(tokens: &[Token]) -> usize {
    tokens
        .iter()
        .map(|t| match t {
            Token::Literal(_) => 1,
            Token::Match { .. } => 3,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gzipsim::generate_input;

    #[test]
    fn roundtrip_on_dictionary_text() {
        let input = generate_input(5000, 3);
        let tokens = compress(&input, &GzipConfig::small());
        let restored = decompress(&tokens);
        assert_eq!(restored, input);
    }

    #[test]
    fn roundtrip_on_incompressible_data() {
        // pseudo-random bytes: few matches, must still round-trip
        let input: Vec<u8> = (0..2000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let tokens = compress(&input, &GzipConfig::small());
        assert_eq!(decompress(&tokens), input);
    }

    #[test]
    fn roundtrip_on_highly_repetitive_data() {
        let input = vec![b'a'; 4096];
        let cfg = GzipConfig::small();
        let tokens = compress(&input, &cfg);
        assert_eq!(decompress(&tokens), input);
        // long runs compress extremely well
        assert!(encoded_size(&tokens) < input.len() / 4);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let cfg = GzipConfig::small();
        assert!(compress(&[], &cfg).is_empty());
        assert_eq!(decompress(&compress(b"ab", &cfg)), b"ab");
        assert_eq!(decompress(&compress(b"a", &cfg)), b"a");
    }

    #[test]
    fn compression_ratio_beats_identity_on_text() {
        let input = generate_input(20_000, 9);
        let tokens = compress(&input, &GzipConfig::default());
        let ratio = encoded_size(&tokens) as f64 / input.len() as f64;
        assert!(
            ratio < 0.8,
            "expected some compression, got ratio {ratio:.2}"
        );
    }

    #[test]
    fn matches_never_reach_before_start() {
        let input = generate_input(3000, 5);
        let tokens = compress(&input, &GzipConfig::small());
        let mut produced = 0usize;
        for t in &tokens {
            match *t {
                Token::Literal(_) => produced += 1,
                Token::Match { dist, len } => {
                    assert!(dist <= produced, "match reaches before the output start");
                    assert!(len >= MIN_MATCH);
                    produced += len;
                }
            }
        }
        assert_eq!(produced, input.len());
    }

    #[test]
    fn hash_is_stable_and_in_range() {
        let bits = 8;
        for b in 0..=255u8 {
            let h = hash3(b, b.wrapping_add(1), b.wrapping_add(2), bits);
            assert!(h < 1 << bits);
        }
        assert_eq!(hash3(1, 2, 3, 11), hash3(1, 2, 3, 11));
    }
}
