//! The `idct` routine: 2-D 8×8 inverse discrete cosine transform over a macroblock buffer.
//!
//! The kernel performs the separable row/column IDCT: a first pass transforms every row of
//! every block in a multi-block macroblock buffer, then a second pass transforms every
//! column. The buffer (48 blocks × 128 bytes = 6 KiB by default) is therefore walked twice
//! and does not fit in the paper's 2 KiB on-chip memory — which is why `idct` prefers the
//! cache organisation over the scratchpad (Figure 4(c)).

use super::blocks::{generate_coefficients, MpegConfig, BLOCK_COEFFS};
use crate::instrument::{Tracked, WorkloadRun};
use ccache_trace::TraceRecorder;
use std::f64::consts::PI;

/// Fixed-point scale used by the instrumented kernel (11 fractional bits).
const FIX_SHIFT: i64 = 11;
const FIX_ONE: f64 = (1i64 << FIX_SHIFT) as f64;

/// The 8×8 IDCT basis table `c(u)/2 * cos((2x+1) u π / 16)` in fixed point, indexed
/// `[u * 8 + x]`.
fn cosine_table_fixed() -> [i32; BLOCK_COEFFS] {
    let mut t = [0i32; BLOCK_COEFFS];
    for u in 0..8 {
        let cu = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
        for x in 0..8 {
            let v = 0.5 * cu * ((2.0 * x as f64 + 1.0) * u as f64 * PI / 16.0).cos();
            t[u * 8 + x] = (v * FIX_ONE).round() as i32;
        }
    }
    t
}

/// Reference (uninstrumented) direct 2-D IDCT of one block in double precision, rounded to
/// integers. Used by tests to validate the separable fixed-point kernel.
pub fn idct_block_reference(coeffs: &[i16; BLOCK_COEFFS]) -> [i16; BLOCK_COEFFS] {
    let mut out = [0i16; BLOCK_COEFFS];
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0f64;
            for v in 0..8 {
                for u in 0..8 {
                    let cu = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
                    let cv = if v == 0 { (0.5f64).sqrt() } else { 1.0 };
                    acc += 0.25
                        * cu
                        * cv
                        * f64::from(coeffs[v * 8 + u])
                        * ((2.0 * x as f64 + 1.0) * u as f64 * PI / 16.0).cos()
                        * ((2.0 * y as f64 + 1.0) * v as f64 * PI / 16.0).cos();
                }
            }
            out[y * 8 + x] = acc.round().clamp(-32768.0, 32767.0) as i16;
        }
    }
    out
}

/// Runs the instrumented separable IDCT over the whole macroblock buffer inside an
/// existing recorder; returns a checksum of the spatial-domain samples.
pub fn record_idct(rec: &mut TraceRecorder, config: &MpegConfig) -> u64 {
    let input = generate_coefficients(config.idct_blocks, config.seed);
    // The macroblock buffer holds every block's coefficients and is transformed in place
    // (row pass, then column pass). It is the structure that exceeds the on-chip memory.
    let mut macroblock: Tracked<i16> =
        Tracked::new(rec, "idct_macroblock", config.idct_blocks * BLOCK_COEFFS);
    let cos_fixed = cosine_table_fixed();
    let cos_table = Tracked::from_slice(rec, "idct_cos_tbl", &cos_fixed);
    let mut row_buf: Tracked<i32> = Tracked::new(rec, "idct_row_buf", 8);

    // Load the coefficient stream into the macroblock buffer (one streaming pass).
    let coeff_stream = Tracked::from_slice(rec, "idct_coeff_in", &input);
    for i in 0..config.idct_blocks * BLOCK_COEFFS {
        let c = coeff_stream.get(rec, i);
        macroblock.set(rec, i, c);
    }

    // Row pass over every block.
    for b in 0..config.idct_blocks {
        let base = b * BLOCK_COEFFS;
        for row in 0..8 {
            for x in 0..8 {
                let mut acc: i64 = 0;
                for u in 0..8 {
                    let coeff = i64::from(macroblock.get(rec, base + row * 8 + u));
                    let cosv = i64::from(cos_table.get(rec, u * 8 + x));
                    acc += coeff * cosv;
                }
                row_buf.set(rec, x, ((acc + (1 << (FIX_SHIFT - 1))) >> FIX_SHIFT) as i32);
            }
            for x in 0..8 {
                let v = row_buf.get(rec, x);
                macroblock.set(rec, base + row * 8 + x, v.clamp(-32768, 32767) as i16);
            }
        }
    }

    // Column pass over every block.
    let mut checksum = 0u64;
    for b in 0..config.idct_blocks {
        let base = b * BLOCK_COEFFS;
        for col in 0..8 {
            for y in 0..8 {
                let mut acc: i64 = 0;
                for v in 0..8 {
                    let coeff = i64::from(macroblock.get(rec, base + v * 8 + col));
                    let cosv = i64::from(cos_table.get(rec, v * 8 + y));
                    acc += coeff * cosv;
                }
                row_buf.set(rec, y, ((acc + (1 << (FIX_SHIFT - 1))) >> FIX_SHIFT) as i32);
            }
            for y in 0..8 {
                let v = row_buf.get(rec, y).clamp(-32768, 32767) as i16;
                macroblock.set(rec, base + y * 8 + col, v);
                checksum = checksum.wrapping_mul(131).wrapping_add(v as u16 as u64);
            }
        }
    }
    checksum
}

/// Runs the instrumented `idct` routine standalone.
pub fn run_idct(config: &MpegConfig) -> WorkloadRun {
    let mut rec = TraceRecorder::new();
    let checksum = record_idct(&mut rec, config);
    let (trace, symbols) = rec.finish();
    WorkloadRun {
        name: "idct".to_owned(),
        trace,
        symbols,
        checksum,
    }
}

/// Uninstrumented separable fixed-point IDCT of one block (same arithmetic as the
/// instrumented kernel), for accuracy tests.
pub fn idct_block_separable(coeffs: &[i16; BLOCK_COEFFS]) -> [i16; BLOCK_COEFFS] {
    let cos = cosine_table_fixed();
    let mut work = [0i16; BLOCK_COEFFS];
    work.copy_from_slice(coeffs);
    // row pass
    for row in 0..8 {
        let mut tmp = [0i32; 8];
        for x in 0..8 {
            let mut acc: i64 = 0;
            for u in 0..8 {
                acc += i64::from(work[row * 8 + u]) * i64::from(cos[u * 8 + x]);
            }
            tmp[x] = ((acc + (1 << (FIX_SHIFT - 1))) >> FIX_SHIFT) as i32;
        }
        for x in 0..8 {
            work[row * 8 + x] = tmp[x].clamp(-32768, 32767) as i16;
        }
    }
    // column pass
    let mut out = [0i16; BLOCK_COEFFS];
    for col in 0..8 {
        let mut tmp = [0i32; 8];
        for y in 0..8 {
            let mut acc: i64 = 0;
            for v in 0..8 {
                acc += i64::from(work[v * 8 + col]) * i64::from(cos[v * 8 + y]);
            }
            tmp[y] = ((acc + (1 << (FIX_SHIFT - 1))) >> FIX_SHIFT) as i32;
        }
        for y in 0..8 {
            out[y * 8 + col] = tmp[y].clamp(-32768, 32767) as i16;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_only_block_transforms_to_flat_output() {
        let mut coeffs = [0i16; BLOCK_COEFFS];
        coeffs[0] = 80; // pure DC
        let out = idct_block_reference(&coeffs);
        // a DC-only block becomes a constant block of value DC/8
        assert!(out.iter().all(|&v| v == out[0]));
        assert_eq!(out[0], 10);
    }

    #[test]
    fn separable_fixed_point_matches_reference_within_tolerance() {
        let cfg = MpegConfig::small();
        let input = generate_coefficients(cfg.idct_blocks, cfg.seed);
        for b in 0..cfg.idct_blocks {
            let mut block = [0i16; BLOCK_COEFFS];
            block.copy_from_slice(&input[b * BLOCK_COEFFS..(b + 1) * BLOCK_COEFFS]);
            let exact = idct_block_reference(&block);
            let fixed = idct_block_separable(&block);
            for i in 0..BLOCK_COEFFS {
                let err = (i32::from(exact[i]) - i32::from(fixed[i])).abs();
                assert!(
                    err <= 3,
                    "block {b} coeff {i}: exact {} vs fixed {}",
                    exact[i],
                    fixed[i]
                );
            }
        }
    }

    #[test]
    fn zero_block_stays_zero() {
        let zero = [0i16; BLOCK_COEFFS];
        assert_eq!(idct_block_reference(&zero), zero);
        assert_eq!(idct_block_separable(&zero), zero);
    }

    #[test]
    fn instrumented_run_is_deterministic_and_nontrivial() {
        let cfg = MpegConfig::small();
        let a = run_idct(&cfg);
        let b = run_idct(&cfg);
        assert_eq!(a.checksum, b.checksum);
        assert_ne!(a.checksum, 0);
        assert!(a.references() > 0);
    }

    #[test]
    fn macroblock_buffer_exceeds_on_chip_memory() {
        let cfg = MpegConfig::default();
        let run = run_idct(&cfg);
        let mb = run.symbols.by_name("idct_macroblock").unwrap();
        assert!(
            mb.size > 2048,
            "macroblock buffer must exceed 2 KiB, is {}",
            mb.size
        );
        // and it is accessed many times (row + column passes), unlike a pure stream
        assert!(run.trace.count_for(mb.id) as u64 > mb.size / 2);
    }

    #[test]
    fn checksum_depends_on_input_seed() {
        let a = run_idct(&MpegConfig::small());
        let b = run_idct(&MpegConfig::small().with_seed(999));
        assert_ne!(a.checksum, b.checksum);
    }
}
