//! MPEG decoder kernels used in the paper's Figure 4 experiments.
//!
//! The paper evaluates three routines of an MPEG application — `dequant`, `plus` and
//! `idct` — following the embedded benchmark used by Panda, Dutt and Nicolau. Each routine
//! here is a real Rust kernel over instrumented buffers, so running it yields both a
//! functional result (checked by tests against an uninstrumented reference) and the
//! variable-annotated reference stream consumed by the layout algorithm and simulator.
//!
//! The working-set structure mirrors the paper's observations:
//!
//! * [`dequant`] and [`plus`] keep their heavily-accessed data (coefficient block, quant
//!   table, working blocks) well under 2 KB, so an all-scratchpad organisation is ideal;
//! * [`idct`] re-walks a multi-block macroblock buffer larger than 2 KB (row pass then
//!   column pass), so it cannot fit in the scratchpad and prefers the cache.

pub mod blocks;
pub mod dequant;
pub mod idct;
pub mod plus;

pub use blocks::{Block, MpegConfig, BLOCK_COEFFS, DEFAULT_INTRA_QUANT};
pub use dequant::{dequant_block, run_dequant};
pub use idct::{idct_block_reference, run_idct};
pub use plus::{plus_block, run_plus};

use crate::instrument::WorkloadRun;

/// Runs all three routines in sequence (dequant → idct → plus), concatenating their traces
/// into one application trace with a shared symbol table. This is the "overall application"
/// of Figure 4(d).
pub fn run_combined(config: &MpegConfig) -> WorkloadRun {
    // The three kernels share a recorder so variables get distinct, non-overlapping
    // addresses and the combined trace has consistent annotations.
    let mut rec = ccache_trace::TraceRecorder::new();
    let c1 = dequant::record_dequant(&mut rec, config);
    let c2 = idct::record_idct(&mut rec, config);
    let c3 = plus::record_plus(&mut rec, config);
    let (trace, symbols) = rec.finish();
    WorkloadRun {
        name: "mpeg-combined".to_owned(),
        trace,
        symbols,
        checksum: c1 ^ c2.rotate_left(21) ^ c3.rotate_left(42),
    }
}

/// Returns the three phase traces (dequant, idct, plus) with a shared symbol table, for
/// dynamic-layout experiments that remap columns between procedures.
pub fn run_phases(
    config: &MpegConfig,
) -> (
    Vec<(String, ccache_trace::Trace)>,
    ccache_trace::SymbolTable,
) {
    let mut rec = ccache_trace::TraceRecorder::new();
    let start0 = rec.len();
    dequant::record_dequant(&mut rec, config);
    let start1 = rec.len();
    idct::record_idct(&mut rec, config);
    let start2 = rec.len();
    plus::record_plus(&mut rec, config);
    let end = rec.len();
    let (trace, symbols) = rec.finish();
    let phases = vec![
        ("dequant".to_owned(), trace.slice(start0, start1)),
        ("idct".to_owned(), trace.slice(start1, start2)),
        ("plus".to_owned(), trace.slice(start2, end)),
    ];
    (phases, symbols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_run_concatenates_all_three_routines() {
        let cfg = MpegConfig::small();
        let combined = run_combined(&cfg);
        let d = run_dequant(&cfg);
        let i = run_idct(&cfg);
        let p = run_plus(&cfg);
        assert_eq!(
            combined.trace.len(),
            d.trace.len() + i.trace.len() + p.trace.len()
        );
        assert!(combined.symbols.len() >= d.symbols.len());
        assert_ne!(combined.checksum, 0);
    }

    #[test]
    fn phases_partition_the_combined_trace() {
        let cfg = MpegConfig::small();
        let (phases, symbols) = run_phases(&cfg);
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].0, "dequant");
        assert!(phases.iter().all(|(_, t)| !t.is_empty()));
        assert!(symbols.len() >= 6);
        let combined = run_combined(&cfg);
        let total: usize = phases.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(total, combined.trace.len());
    }
}
