//! The `plus` routine: motion-compensation addition of prediction and residual blocks.
//!
//! Each output sample is `clamp(prediction + residual, 0, 255)`, accumulated in place into
//! the prediction buffer. Like `dequant`, the heavily accessed data (the two block buffers)
//! fits within 2 KB, so the paper finds the all-scratchpad organisation optimal for it
//! (Figure 4(b)).

use super::blocks::{generate_coefficients, generate_samples, MpegConfig, BLOCK_COEFFS};
use crate::instrument::{Tracked, WorkloadRun};
use ccache_trace::TraceRecorder;

/// Reference (uninstrumented) saturating addition of one prediction/residual block pair.
pub fn plus_block(pred: &[i16; BLOCK_COEFFS], resid: &[i16; BLOCK_COEFFS]) -> [i16; BLOCK_COEFFS] {
    let mut out = [0i16; BLOCK_COEFFS];
    for i in 0..BLOCK_COEFFS {
        out[i] = (i32::from(pred[i]) + i32::from(resid[i])).clamp(0, 255) as i16;
    }
    out
}

/// Runs the instrumented `plus` routine inside an existing recorder; returns a checksum of
/// the reconstructed samples.
pub fn record_plus(rec: &mut TraceRecorder, config: &MpegConfig) -> u64 {
    let pred_data = generate_samples(config.plus_blocks, config.seed ^ 0x9e37);
    let resid_data = generate_coefficients(config.plus_blocks, config.seed ^ 0x79b9);
    let mut pred_blocks = Tracked::from_slice(rec, "pl_pred_blocks", &pred_data);
    let resid_blocks = Tracked::from_slice(rec, "pl_resid_blocks", &resid_data);

    let mut checksum = 0u64;
    for b in 0..config.plus_blocks {
        let base = b * BLOCK_COEFFS;
        for i in 0..BLOCK_COEFFS {
            let p = pred_blocks.get(rec, base + i);
            let r = resid_blocks.get(rec, base + i);
            let s = (i32::from(p) + i32::from(r)).clamp(0, 255) as i16;
            pred_blocks.set(rec, base + i, s);
            checksum = checksum.wrapping_mul(31).wrapping_add(s as u64);
        }
    }
    checksum
}

/// Runs the instrumented `plus` routine standalone.
pub fn run_plus(config: &MpegConfig) -> WorkloadRun {
    let mut rec = TraceRecorder::new();
    let checksum = record_plus(&mut rec, config);
    let (trace, symbols) = rec.finish();
    WorkloadRun {
        name: "plus".to_owned(),
        trace,
        symbols,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_saturates_to_byte_range() {
        let mut pred = [0i16; BLOCK_COEFFS];
        let mut resid = [0i16; BLOCK_COEFFS];
        pred[0] = 250;
        resid[0] = 20; // overflows 255
        pred[1] = 5;
        resid[1] = -20; // underflows 0
        pred[2] = 100;
        resid[2] = 27;
        let out = plus_block(&pred, &resid);
        assert_eq!(out[0], 255);
        assert_eq!(out[1], 0);
        assert_eq!(out[2], 127);
        assert!(out.iter().all(|&v| (0..=255).contains(&v)));
    }

    #[test]
    fn instrumented_run_matches_reference() {
        let cfg = MpegConfig::small();
        let run = run_plus(&cfg);
        let pred = generate_samples(cfg.plus_blocks, cfg.seed ^ 0x9e37);
        let resid = generate_coefficients(cfg.plus_blocks, cfg.seed ^ 0x79b9);
        let mut checksum = 0u64;
        for b in 0..cfg.plus_blocks {
            let base = b * BLOCK_COEFFS;
            let mut p = [0i16; BLOCK_COEFFS];
            let mut r = [0i16; BLOCK_COEFFS];
            p.copy_from_slice(&pred[base..base + BLOCK_COEFFS]);
            r.copy_from_slice(&resid[base..base + BLOCK_COEFFS]);
            for s in plus_block(&p, &r) {
                checksum = checksum.wrapping_mul(31).wrapping_add(s as u64);
            }
        }
        assert_eq!(run.checksum, checksum);
    }

    #[test]
    fn working_set_fits_2kb_and_every_sample_is_processed() {
        let cfg = MpegConfig::default();
        let run = run_plus(&cfg);
        let pred = run.symbols.by_name("pl_pred_blocks").unwrap();
        let resid = run.symbols.by_name("pl_resid_blocks").unwrap();
        assert!(pred.size + resid.size <= 2048);
        // each sample: read pred, read resid, write pred
        assert_eq!(run.trace.len(), cfg.plus_blocks * BLOCK_COEFFS * 3);
        assert_eq!(
            run.trace.count_for(resid.id),
            cfg.plus_blocks * BLOCK_COEFFS
        );
    }
}
