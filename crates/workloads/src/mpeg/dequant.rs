//! The `dequant` routine: inverse quantisation of 8×8 coefficient blocks.
//!
//! The kernel inverse-quantises a resident buffer of coefficient blocks *in place*: each
//! coefficient is read, multiplied by the intra quantiser matrix entry and the quantiser
//! scale (MPEG-2 style, with saturation and odd-ification mismatch control), and written
//! back. Its heavily accessed data — the coefficient buffer and the 64-entry quantiser
//! matrix — fits within the paper's 2 KB on-chip memory, which is why the all-scratchpad
//! organisation is optimal for it (Figure 4(a)): once the data is resident there are no
//! misses at all, whereas a cache pays a cold miss per line.

use super::blocks::{generate_coefficients, MpegConfig, BLOCK_COEFFS, DEFAULT_INTRA_QUANT};
use crate::instrument::{Tracked, WorkloadRun};
use ccache_trace::TraceRecorder;

/// Reference (uninstrumented) inverse quantisation of one block.
///
/// `quant_scale` is the MPEG quantiser scale code. Values saturate to `[-2048, 2047]` and
/// non-zero results are forced odd (mismatch control).
pub fn dequant_block(
    coeffs: &[i16; BLOCK_COEFFS],
    quant: &[u16; BLOCK_COEFFS],
    quant_scale: u16,
) -> [i16; BLOCK_COEFFS] {
    let mut out = [0i16; BLOCK_COEFFS];
    for i in 0..BLOCK_COEFFS {
        out[i] = dequant_coeff(coeffs[i], quant[i], quant_scale, i == 0);
    }
    out
}

/// Inverse-quantises one coefficient.
fn dequant_coeff(coeff: i16, quant: u16, quant_scale: u16, is_dc: bool) -> i16 {
    if coeff == 0 {
        return 0;
    }
    let value = if is_dc {
        // DC coefficients use a fixed scale of 8 in intra blocks.
        i32::from(coeff) * 8
    } else {
        (i32::from(coeff) * i32::from(quant) * i32::from(quant_scale) * 2) / 16
    };
    let mut value = value.clamp(-2048, 2047);
    if !is_dc && value != 0 && value % 2 == 0 {
        // mismatch control: force the value odd, toward zero
        value -= value.signum();
    }
    value as i16
}

/// Runs the instrumented `dequant` routine inside an existing recorder and returns a
/// checksum of the reconstructed coefficients.
pub fn record_dequant(rec: &mut TraceRecorder, config: &MpegConfig) -> u64 {
    let input = generate_coefficients(config.dequant_blocks, config.seed);
    let mut coeff_blocks = Tracked::from_slice(rec, "dq_coeff_blocks", &input);
    let quant_table = Tracked::from_slice(rec, "dq_quant_tbl", &DEFAULT_INTRA_QUANT);

    let mut checksum = 0u64;
    for b in 0..config.dequant_blocks {
        let base = b * BLOCK_COEFFS;
        for i in 0..BLOCK_COEFFS {
            let c = coeff_blocks.get(rec, base + i);
            let q = quant_table.get(rec, i);
            let r = dequant_coeff(c, q, config.quant_scale, i == 0);
            coeff_blocks.set(rec, base + i, r);
            checksum = checksum
                .wrapping_mul(1099511628211)
                .wrapping_add(r as u16 as u64);
        }
    }
    checksum
}

/// Runs the instrumented `dequant` routine standalone.
pub fn run_dequant(config: &MpegConfig) -> WorkloadRun {
    let mut rec = TraceRecorder::new();
    let checksum = record_dequant(&mut rec, config);
    let (trace, symbols) = rec.finish();
    WorkloadRun {
        name: "dequant".to_owned(),
        trace,
        symbols,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_coefficients_stay_zero() {
        let coeffs = [0i16; BLOCK_COEFFS];
        let out = dequant_block(&coeffs, &DEFAULT_INTRA_QUANT, 8);
        assert_eq!(out, [0i16; BLOCK_COEFFS]);
    }

    #[test]
    fn dc_uses_fixed_scale_and_ac_uses_matrix() {
        let mut coeffs = [0i16; BLOCK_COEFFS];
        coeffs[0] = 10; // DC
        coeffs[1] = 4; // AC with quant 16
        let out = dequant_block(&coeffs, &DEFAULT_INTRA_QUANT, 8);
        assert_eq!(out[0], 80);
        // 4 * 16 * 8 * 2 / 16 = 64, even -> odd-ified to 63
        assert_eq!(out[1], 63);
    }

    #[test]
    fn saturation_clamps_large_values() {
        let mut coeffs = [0i16; BLOCK_COEFFS];
        coeffs[5] = 2000;
        coeffs[6] = -2000;
        let out = dequant_block(&coeffs, &DEFAULT_INTRA_QUANT, 31);
        assert_eq!(out[5], 2047);
        // -2000 saturates to -2048, which mismatch control then forces odd (toward zero)
        assert_eq!(out[6], -2047);
    }

    #[test]
    fn mismatch_control_makes_nonzero_ac_odd() {
        let mut coeffs = [0i16; BLOCK_COEFFS];
        for (i, c) in coeffs.iter_mut().enumerate().skip(1) {
            *c = (i as i16 % 7) - 3;
        }
        let out = dequant_block(&coeffs, &DEFAULT_INTRA_QUANT, 8);
        for (i, &o) in out.iter().enumerate().skip(1) {
            if o != 0 {
                assert_eq!(
                    out[i].rem_euclid(2),
                    1,
                    "coefficient {i} is even: {}",
                    out[i]
                );
            }
        }
    }

    #[test]
    fn instrumented_run_matches_reference() {
        let cfg = MpegConfig::small();
        let run = run_dequant(&cfg);
        // recompute the checksum with the pure reference implementation
        let input = generate_coefficients(cfg.dequant_blocks, cfg.seed);
        let mut checksum = 0u64;
        for b in 0..cfg.dequant_blocks {
            let mut block = [0i16; BLOCK_COEFFS];
            block.copy_from_slice(&input[b * BLOCK_COEFFS..(b + 1) * BLOCK_COEFFS]);
            let out = dequant_block(&block, &DEFAULT_INTRA_QUANT, cfg.quant_scale);
            for r in out {
                checksum = checksum
                    .wrapping_mul(1099511628211)
                    .wrapping_add(r as u16 as u64);
            }
        }
        assert_eq!(run.checksum, checksum);
    }

    #[test]
    fn hot_data_fits_in_2kb_and_trace_is_annotated() {
        let cfg = MpegConfig::default();
        let run = run_dequant(&cfg);
        let quant = run.symbols.by_name("dq_quant_tbl").unwrap();
        let blocks = run.symbols.by_name("dq_coeff_blocks").unwrap();
        assert!(quant.size + blocks.size <= 2048);
        assert_eq!(run.references(), run.trace.len());
        assert!(run.trace.iter().all(|e| e.var.is_some()));
        // every coefficient incurs a load, a quant-table read and a store
        assert_eq!(run.trace.len(), cfg.dequant_blocks * BLOCK_COEFFS * 3);
    }
}
