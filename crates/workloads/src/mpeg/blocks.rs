//! 8×8 coefficient blocks and quantisation tables shared by the MPEG kernels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of coefficients in one 8×8 block.
pub const BLOCK_COEFFS: usize = 64;

/// One 8×8 block of 16-bit coefficients or samples.
pub type Block = [i16; BLOCK_COEFFS];

/// The default MPEG-2 intra quantiser matrix (ISO/IEC 13818-2, Table 7-2 ordering by rows).
pub const DEFAULT_INTRA_QUANT: [u16; BLOCK_COEFFS] = [
    8, 16, 19, 22, 26, 27, 29, 34, //
    16, 16, 22, 24, 27, 29, 34, 37, //
    19, 22, 26, 27, 29, 34, 34, 38, //
    22, 22, 26, 27, 29, 34, 37, 40, //
    22, 26, 27, 29, 32, 35, 40, 48, //
    26, 27, 29, 32, 35, 40, 48, 58, //
    26, 27, 29, 34, 38, 46, 56, 69, //
    27, 29, 35, 38, 46, 56, 69, 83,
];

/// Configuration of the MPEG workloads.
///
/// Each routine processes its own number of blocks, mirroring the working-set structure the
/// paper reports: the `dequant` and `plus` buffers fit within the 2 KiB on-chip memory
/// (all their heavily accessed data can live in the scratchpad), while the `idct`
/// macroblock buffer exceeds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpegConfig {
    /// Blocks inverse-quantised in place by `dequant` (buffer = `dequant_blocks` × 128 B).
    pub dequant_blocks: usize,
    /// Block pairs added by `plus` (two buffers of `plus_blocks` × 128 B each).
    pub plus_blocks: usize,
    /// Blocks in the macroblock buffer transformed by `idct`
    /// (buffer = `idct_blocks` × 128 B).
    pub idct_blocks: usize,
    /// Seed for the pseudo-random coefficient data.
    pub seed: u64,
    /// Quantiser scale code applied by `dequant` (1..=31).
    pub quant_scale: u16,
}

impl Default for MpegConfig {
    /// Default working sets for the 2 KiB / 4-column memory of Figure 4:
    /// dequant 12 blocks (1536 B buffer + 128 B table ≤ 2 KiB), plus 7 block pairs
    /// (2 × 896 B ≤ 2 KiB), idct 48 blocks (6 KiB macroblock buffer > 2 KiB).
    fn default() -> Self {
        MpegConfig {
            dequant_blocks: 12,
            plus_blocks: 7,
            idct_blocks: 48,
            seed: 0x5eed_c0de,
            quant_scale: 8,
        }
    }
}

impl MpegConfig {
    /// A small configuration for fast unit tests (working-set shape is preserved: dequant
    /// and plus fit 2 KiB, idct does not).
    pub fn small() -> Self {
        MpegConfig {
            dequant_blocks: 4,
            plus_blocks: 3,
            idct_blocks: 20,
            seed: 7,
            quant_scale: 4,
        }
    }

    /// Returns a copy with a different data seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates `blocks` blocks of plausible quantised DCT coefficients: a large DC term,
/// rapidly decaying AC terms and plenty of zeros (as a zig-zag scanned MPEG block has).
pub fn generate_coefficients(blocks: usize, seed: u64) -> Vec<i16> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(blocks * BLOCK_COEFFS);
    for _ in 0..blocks {
        for i in 0..BLOCK_COEFFS {
            let (row, col) = (i / 8, i % 8);
            let frequency = (row + col) as i32;
            let value: i16 = if i == 0 {
                rng.random_range(-256..=256)
            } else if rng.random_bool((0.75f64 - 0.08 * frequency as f64).max(0.05)) {
                let magnitude = (64 >> frequency.min(6)).max(1);
                rng.random_range(-magnitude..=magnitude) as i16
            } else {
                0
            };
            out.push(value);
        }
    }
    out
}

/// Generates `blocks` blocks of 8-bit prediction samples widened to `i16` (for `plus`).
pub fn generate_samples(blocks: usize, seed: u64) -> Vec<i16> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..blocks * BLOCK_COEFFS)
        .map(|_| rng.random_range(0..=255) as i16)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_working_set_shape() {
        let cfg = MpegConfig::default();
        let dequant_bytes = cfg.dequant_blocks * BLOCK_COEFFS * 2 + 128;
        let plus_bytes = 2 * cfg.plus_blocks * BLOCK_COEFFS * 2;
        let idct_bytes = cfg.idct_blocks * BLOCK_COEFFS * 2;
        assert!(dequant_bytes <= 2048, "dequant working set must fit 2 KiB");
        assert!(plus_bytes <= 2048, "plus working set must fit 2 KiB");
        assert!(
            idct_bytes > 2048,
            "idct macroblock buffer must exceed 2 KiB"
        );
        assert!(cfg.quant_scale >= 1 && cfg.quant_scale <= 31);
    }

    #[test]
    fn small_config_preserves_the_shape() {
        let cfg = MpegConfig::small();
        assert!(cfg.dequant_blocks * 128 + 128 <= 2048);
        assert!(2 * cfg.plus_blocks * 128 <= 2048);
        assert!(cfg.idct_blocks * 128 > 2048);
    }

    #[test]
    fn coefficients_are_deterministic_and_sparse() {
        let a = generate_coefficients(16, 42);
        let b = generate_coefficients(16, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16 * BLOCK_COEFFS);
        let zeros = a.iter().filter(|&&c| c == 0).count();
        assert!(
            zeros > a.len() / 4,
            "expected a sparse coefficient stream, got {zeros} zeros out of {}",
            a.len()
        );
        assert_ne!(generate_coefficients(16, 1), a);
    }

    #[test]
    fn samples_are_8bit_range() {
        let s = generate_samples(3, 5);
        assert_eq!(s.len(), 3 * BLOCK_COEFFS);
        assert!(s.iter().all(|&v| (0..=255).contains(&v)));
        assert_ne!(generate_samples(3, 5), generate_samples(3, 6));
    }

    #[test]
    fn quant_matrix_has_expected_shape() {
        assert_eq!(DEFAULT_INTRA_QUANT.len(), 64);
        assert_eq!(DEFAULT_INTRA_QUANT[0], 8);
        assert_eq!(DEFAULT_INTRA_QUANT[63], 83);
        assert!(DEFAULT_INTRA_QUANT[63] > DEFAULT_INTRA_QUANT[0]);
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let cfg = MpegConfig::default().with_seed(99);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.dequant_blocks, MpegConfig::default().dequant_blocks);
    }
}
