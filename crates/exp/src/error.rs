//! The experiment-layer error type.

use std::fmt;

/// Errors surfaced by the experiment layer.
#[derive(Debug)]
pub enum ExpError {
    /// The spec was structurally invalid (missing fields, unknown names, empty axes) or
    /// asked for something a job cannot do (e.g. phase remap of a workload without
    /// phases).
    BadSpec {
        /// Human-readable reason.
        reason: String,
    },
    /// The spec file was not valid JSON.
    Json(ccache_json::ParseError),
    /// An experiment failed in the core layer.
    Core(ccache_core::CoreError),
    /// A simulator configuration was rejected.
    Sim(ccache_sim::SimError),
    /// A tuning job failed in the search layer.
    Opt(ccache_opt::OptError),
    /// Reading a spec or trace file failed.
    Io(std::io::Error),
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpError::BadSpec { reason } => write!(f, "invalid experiment spec: {reason}"),
            ExpError::Json(e) => write!(f, "spec is not valid JSON: {e}"),
            ExpError::Core(e) => write!(f, "{e}"),
            ExpError::Sim(e) => write!(f, "{e}"),
            ExpError::Opt(e) => write!(f, "{e}"),
            ExpError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExpError::BadSpec { .. } => None,
            ExpError::Json(e) => Some(e),
            ExpError::Core(e) => Some(e),
            ExpError::Sim(e) => Some(e),
            ExpError::Opt(e) => Some(e),
            ExpError::Io(e) => Some(e),
        }
    }
}

impl From<ccache_json::ParseError> for ExpError {
    fn from(e: ccache_json::ParseError) -> Self {
        ExpError::Json(e)
    }
}

impl From<ccache_core::CoreError> for ExpError {
    fn from(e: ccache_core::CoreError) -> Self {
        ExpError::Core(e)
    }
}

impl From<ccache_sim::SimError> for ExpError {
    fn from(e: ccache_sim::SimError) -> Self {
        ExpError::Sim(e)
    }
}

impl From<ccache_opt::OptError> for ExpError {
    fn from(e: ccache_opt::OptError) -> Self {
        ExpError::Opt(e)
    }
}

impl From<std::io::Error> for ExpError {
    fn from(e: std::io::Error) -> Self {
        ExpError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_layer() {
        let e = ExpError::BadSpec {
            reason: "no grids".to_owned(),
        };
        assert!(e.to_string().contains("invalid experiment spec"));
        let io: ExpError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
    }
}
