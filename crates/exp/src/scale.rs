//! Experiment scales and the fixed figure configurations.
//!
//! This module moved here from `ccache-cli` so the experiment layer, the CLI, the thin
//! figure binaries and the Criterion benches all resolve `--quick` and the paper's
//! configurations through one definition (the CLI re-exports it).

use ccache_core::multitask::MultitaskConfig;
use ccache_core::partition::PartitionConfig;
use ccache_workloads::gzipsim::{run_gzip_job, GzipConfig};
use ccache_workloads::mpeg::MpegConfig;
use ccache_workloads::multitask::Job;

/// Scale of an experiment run: `Paper` uses the full working sets, `Quick` shrinks them so
/// smoke tests and CI finish fast while preserving every qualitative shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full-size experiment (matches the configuration described in DESIGN.md).
    Paper,
    /// Reduced-size experiment for quick runs.
    Quick,
}

impl Scale {
    /// `Quick` when the `--quick` flag was given, `Paper` otherwise.
    pub fn from_quick(quick: bool) -> Self {
        if quick {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Whether this is the reduced scale.
    pub fn is_quick(self) -> bool {
        self == Scale::Quick
    }

    /// The MPEG workload configuration for this scale.
    pub fn mpeg(self) -> MpegConfig {
        match self {
            Scale::Paper => MpegConfig::default(),
            Scale::Quick => MpegConfig::small(),
        }
    }

    /// The gzip job configuration for this scale.
    pub fn gzip(self) -> GzipConfig {
        match self {
            Scale::Paper => GzipConfig::default(),
            Scale::Quick => GzipConfig {
                input_len: 4 * 1024,
                ..GzipConfig::default()
            },
        }
    }

    /// The quantum sweep for this scale (the paper sweeps 1 to 1 M in powers of 4).
    pub fn quanta(self) -> Vec<usize> {
        let max_pow = match self {
            Scale::Paper => 10,
            Scale::Quick => 7,
        };
        (0..=max_pow).map(|p| 4usize.pow(p)).collect()
    }
}

/// The Figure 4 experiment configuration (2 KB, 4 columns, 32-byte lines).
pub fn figure4_config() -> PartitionConfig {
    PartitionConfig::default()
}

/// The Figure 5 cache configurations: (label, config) for 16 KiB and 128 KiB.
pub fn figure5_configs() -> Vec<(&'static str, MultitaskConfig)> {
    vec![
        ("gzip.16k", MultitaskConfig::cache_16k()),
        ("gzip.128k", MultitaskConfig::cache_128k()),
    ]
}

/// Builds the three gzip jobs of Figure 5 with disjoint address spaces.
pub fn figure5_jobs(scale: Scale) -> Vec<Job> {
    let base_cfg = scale.gzip();
    (0..3u64)
        .map(|j| {
            let run = run_gzip_job(
                &base_cfg.with_seed(41 + j),
                0x100_0000 * (j + 1),
                &format!("gzip-{}", (b'A' + j as u8) as char),
            );
            Job::new(run.name.clone(), run.trace)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_smaller_but_same_shape() {
        let quick = Scale::Quick.mpeg();
        let paper = Scale::Paper.mpeg();
        assert!(quick.idct_blocks < paper.idct_blocks);
        assert!(quick.idct_blocks * 128 > 2048);
        assert!(Scale::Quick.quanta().len() < Scale::Paper.quanta().len());
        assert!(Scale::Quick.gzip().input_len < Scale::Paper.gzip().input_len);
        assert_eq!(Scale::from_quick(true), Scale::Quick);
        assert!(!Scale::from_quick(false).is_quick());
    }

    #[test]
    fn figure5_jobs_have_disjoint_address_spaces() {
        let jobs = figure5_jobs(Scale::Quick);
        assert_eq!(jobs.len(), 3);
        let spans: Vec<(u64, u64)> = jobs
            .iter()
            .map(|j| {
                let s = j.trace.stats();
                (s.min_addr, s.max_addr)
            })
            .collect();
        assert!(spans[0].1 < spans[1].0);
        assert!(spans[1].1 < spans[2].0);
    }

    #[test]
    fn figure_configs_match_paper_parameters() {
        let f4 = figure4_config();
        assert_eq!(f4.capacity_bytes, 2048);
        assert_eq!(f4.columns, 4);
        let f5 = figure5_configs();
        assert_eq!(f5[0].1.capacity_bytes, 16 * 1024);
        assert_eq!(f5[1].1.capacity_bytes, 128 * 1024);
    }
}
