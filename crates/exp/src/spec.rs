//! The declarative experiment model: [`ExperimentSpec`] and its JSON grammar.
//!
//! A spec describes a **union of cross-product grids**. Each replay grid crosses
//! workloads × backends × geometries × mapping policies; each multitask grid crosses
//! cache configurations × sharing policies × scheduling quanta over a fixed job set.
//! The [`Planner`](mod@crate::plan) expands the grids into deduplicated jobs, so listing a
//! configuration twice (or in two grids) never replays it twice.
//!
//! Specs are plain JSON files (see `examples/specs/`) parsed through `ccache-json`, and
//! every spec type also serializes back to a **canonical** JSON descriptor: all defaults
//! filled in, fixed key order. Two spellings of the same configuration (`"partition": 2`
//! vs. `{"cache_columns": 2}`) canonicalize identically, which is what the planner's
//! dedup keys are built from.

use crate::error::ExpError;
use ccache_json::{Json, ToJson};
use ccache_opt::StrategyKind;
use ccache_sim::backend::BackendKind;
use ccache_sim::{CacheConfig, LatencyConfig, ReplacementPolicy, SystemConfig};

/// A full experiment: a named union of replay and multitask grids.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExperimentSpec {
    /// Name of the experiment (reported in the artefact).
    pub name: String,
    /// Replay grids: workloads × backends × geometries × policies.
    pub replay: Vec<ReplayGrid>,
    /// Multitask grids: configs × sharing policies × quanta over a job set.
    pub multitask: Vec<MultitaskGrid>,
}

/// One replay grid of an [`ExperimentSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayGrid {
    /// The workloads to replay.
    pub workloads: Vec<WorkloadSel>,
    /// The memory backends to replay on.
    pub backends: Vec<BackendKind>,
    /// The cache geometries to replay under.
    pub geometries: Vec<GeometrySpec>,
    /// The mapping policies to apply.
    pub policies: Vec<PolicySpec>,
    /// How job labels (the `name` of each run) are derived.
    pub label: LabelScheme,
}

impl Default for ReplayGrid {
    fn default() -> Self {
        ReplayGrid {
            workloads: Vec::new(),
            backends: vec![BackendKind::ColumnCache],
            geometries: vec![GeometrySpec::default()],
            policies: vec![PolicySpec::Shared],
            label: LabelScheme::Full,
        }
    }
}

/// Selects one workload: a named corpus entry or a trace file on disk.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum WorkloadSel {
    /// A `ccache-workloads` corpus entry, by name.
    Corpus {
        /// The corpus name (see `ccache_workloads::CORPUS_NAMES`).
        name: String,
    },
    /// A trace file (binary `.cct` or text; detected by magic).
    Trace {
        /// Path to the trace file.
        path: String,
    },
}

impl WorkloadSel {
    /// A short human label for the workload.
    pub fn short(&self) -> &str {
        match self {
            WorkloadSel::Corpus { name } => name,
            WorkloadSel::Trace { path } => path,
        }
    }
}

/// A cache geometry plus the latency model, the unit the grid crosses over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometrySpec {
    /// Total cache capacity in bytes.
    pub capacity: u64,
    /// Number of columns (ways).
    pub columns: usize,
    /// Cache-line size in bytes.
    pub line: u64,
    /// Page size of the TLB/page table.
    pub page: u64,
    /// TLB entries.
    pub tlb: usize,
    /// Victim-selection policy within the allowed columns.
    pub replacement: ReplacementPolicy,
    /// The latency model preset.
    pub latency: LatencyPreset,
}

impl Default for GeometrySpec {
    /// The paper's Figure 4 geometry: 2 KB, 4 columns, 32-byte lines, 128-byte pages.
    fn default() -> Self {
        GeometrySpec {
            capacity: 2048,
            columns: 4,
            line: 32,
            page: 128,
            tlb: 64,
            replacement: ReplacementPolicy::Lru,
            latency: LatencyPreset::Default,
        }
    }
}

impl GeometrySpec {
    /// The simulator system configuration for this geometry.
    ///
    /// # Errors
    ///
    /// Fails when the cache geometry is invalid (non-power-of-two sizes, line larger
    /// than a column, ...).
    pub fn system_config(&self) -> Result<SystemConfig, ExpError> {
        let cache = CacheConfig::builder()
            .capacity_bytes(self.capacity)
            .columns(self.columns)
            .line_size(self.line)
            .replacement(self.replacement)
            .build()?;
        Ok(SystemConfig {
            cache,
            latency: self.latency.config(),
            page_size: self.page,
            tlb_entries: self.tlb,
        })
    }

    /// The partition-experiment configuration for this geometry. Partition jobs replay
    /// through `ccache_core::partition`, which fixes the TLB at 64 entries and the
    /// default replacement policy; the `tlb`/`replacement` fields are ignored there.
    pub fn partition_config(&self) -> ccache_core::partition::PartitionConfig {
        ccache_core::partition::PartitionConfig {
            capacity_bytes: self.capacity,
            columns: self.columns,
            line_size: self.line,
            page_size: self.page,
            latency: self.latency.config(),
            include_control: false,
        }
    }

    /// A short label, e.g. `"2048B.4col.32B"`.
    pub fn short(&self) -> String {
        format!("{}B.{}col.{}B", self.capacity, self.columns, self.line)
    }
}

/// Named latency models a spec can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyPreset {
    /// The default on-chip model (`LatencyConfig::default()`).
    #[default]
    Default,
    /// The deeper Figure 5 hierarchy (60-cycle misses).
    Fig5,
}

impl LatencyPreset {
    /// The latency configuration for this preset.
    pub fn config(self) -> LatencyConfig {
        match self {
            LatencyPreset::Default => LatencyConfig::default(),
            LatencyPreset::Fig5 => ccache_core::multitask::figure5_latency(),
        }
    }

    fn name(self) -> &'static str {
        match self {
            LatencyPreset::Default => "default",
            LatencyPreset::Fig5 => "fig5",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "default" => Some(LatencyPreset::Default),
            "fig5" => Some(LatencyPreset::Fig5),
            _ => None,
        }
    }
}

/// How the data of a replay job is mapped onto the cache.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// No mapping: every page behaves like a normal cache.
    Shared,
    /// The paper's Section 3 layout: conflict graph + `assign_columns`.
    Heuristic,
    /// Naive comparison layout: unit `i` goes to column `i mod columns`.
    RoundRobin,
    /// An explicit per-variable column assignment, by symbol name.
    Fixed {
        /// `(variable name, columns)` pairs applied in order.
        assignment: Vec<(String, Vec<usize>)>,
    },
    /// One Figure 4 partition point: `cache_columns` columns of cache, the rest
    /// scratchpad (critical-data selection + layout as in the paper).
    Partition {
        /// Number of columns used as cache.
        cache_columns: usize,
    },
    /// The whole Figure 4 sweep: expands at plan time to `Partition { 0..=columns }`
    /// of each geometry it is crossed with.
    PartitionSweep,
    /// The dynamically remapped column cache of Figure 4(d) (per-phase remap); only
    /// valid for corpus workloads with recorded phases (the MPEG application).
    DynamicPhases,
    /// Tune the column assignment with `ccache-opt` (fixed geometry) and report the
    /// tuned configuration's replay.
    Tuned {
        /// Search strategy.
        strategy: StrategyKind,
        /// Maximum candidate replays.
        budget: usize,
        /// Search RNG seed.
        seed: u64,
    },
}

impl PolicySpec {
    /// A short label, e.g. `"cache2"` for a partition point.
    pub fn short(&self) -> String {
        match self {
            PolicySpec::Shared => "shared".to_owned(),
            PolicySpec::Heuristic => "heuristic".to_owned(),
            PolicySpec::RoundRobin => "round-robin".to_owned(),
            PolicySpec::Fixed { .. } => "fixed".to_owned(),
            PolicySpec::Partition { cache_columns } => format!("cache{cache_columns}"),
            PolicySpec::PartitionSweep => "partition-sweep".to_owned(),
            PolicySpec::DynamicPhases => "dynamic".to_owned(),
            PolicySpec::Tuned { strategy, .. } => format!("tuned-{strategy}"),
        }
    }

    /// Whether this policy needs a symbol table (variable regions) to build a mapping.
    pub fn needs_symbols(&self) -> bool {
        !matches!(self, PolicySpec::Shared)
    }
}

/// How replay-job labels (the `name` field of each run result) are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LabelScheme {
    /// `workload/backend/geometry/policy` (the unambiguous default).
    #[default]
    Full,
    /// The workload name only.
    Workload,
    /// The backend name only (what `ccache sweep` reports).
    Backend,
    /// The policy name only.
    Policy,
}

impl LabelScheme {
    fn name(self) -> &'static str {
        match self {
            LabelScheme::Full => "full",
            LabelScheme::Workload => "workload",
            LabelScheme::Backend => "backend",
            LabelScheme::Policy => "policy",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "full" => Some(LabelScheme::Full),
            "workload" => Some(LabelScheme::Workload),
            "backend" => Some(LabelScheme::Backend),
            "policy" => Some(LabelScheme::Policy),
            _ => None,
        }
    }
}

/// One synthetic gzip job of a multitask grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GzipJobSpec {
    /// Job name (e.g. `"gzip-A"`).
    pub name: String,
    /// Input-data seed.
    pub seed: u64,
    /// Base address of the job's (disjoint) address space.
    pub base: u64,
}

/// One multitask cache configuration (the Figure 5 series unit).
#[derive(Debug, Clone, PartialEq)]
pub struct MtConfigSpec {
    /// Series label (e.g. `"gzip.16k"`).
    pub label: String,
    /// Total cache capacity in bytes.
    pub capacity: u64,
    /// Number of columns.
    pub columns: usize,
    /// Line size in bytes.
    pub line: u64,
    /// Page size in bytes.
    pub page: u64,
    /// Columns owned exclusively by the critical job under the mapped policy.
    pub critical_columns: usize,
    /// The latency model preset (Figure 5's deeper hierarchy by default).
    pub latency: LatencyPreset,
}

impl MtConfigSpec {
    /// The core multitask configuration for this spec.
    pub fn config(&self) -> ccache_core::multitask::MultitaskConfig {
        ccache_core::multitask::MultitaskConfig {
            capacity_bytes: self.capacity,
            columns: self.columns,
            line_size: self.line,
            page_size: self.page,
            latency: self.latency.config(),
            critical_job_columns: self.critical_columns,
        }
    }
}

/// One multitask grid of an [`ExperimentSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultitaskGrid {
    /// The concurrently scheduled jobs (job 0 is the critical job).
    pub jobs: Vec<GzipJobSpec>,
    /// The cache configurations (one series per config × policy).
    pub configs: Vec<MtConfigSpec>,
    /// The sharing policies to run.
    pub policies: Vec<ccache_core::multitask::SharingPolicy>,
    /// The context-switch quanta to sweep.
    pub quanta: Vec<usize>,
}

/// The three-job gzip workload of Figure 5, as spec values.
pub fn figure5_job_specs() -> Vec<GzipJobSpec> {
    (0..3u64)
        .map(|j| GzipJobSpec {
            name: format!("gzip-{}", (b'A' + j as u8) as char),
            seed: 41 + j,
            base: 0x100_0000 * (j + 1),
        })
        .collect()
}

impl Default for MultitaskGrid {
    /// The Figure 5 experiment: three gzip jobs, 16 KiB and 128 KiB configurations,
    /// shared and mapped policies, quanta in powers of four.
    fn default() -> Self {
        MultitaskGrid {
            jobs: figure5_job_specs(),
            configs: vec![
                MtConfigSpec {
                    label: "gzip.16k".to_owned(),
                    capacity: 16 * 1024,
                    columns: 8,
                    line: 32,
                    page: 1024,
                    critical_columns: 6,
                    latency: LatencyPreset::Fig5,
                },
                MtConfigSpec {
                    label: "gzip.128k".to_owned(),
                    capacity: 128 * 1024,
                    columns: 8,
                    line: 32,
                    page: 1024,
                    critical_columns: 4,
                    latency: LatencyPreset::Fig5,
                },
            ],
            policies: vec![
                ccache_core::multitask::SharingPolicy::Shared,
                ccache_core::multitask::SharingPolicy::Mapped,
            ],
            quanta: (0..=7).map(|p| 4usize.pow(p)).collect(),
        }
    }
}

// ------------------------------------------------------------------- canonical JSON out

impl ToJson for WorkloadSel {
    fn to_json(&self) -> Json {
        match self {
            WorkloadSel::Corpus { name } => Json::obj([("corpus", name.to_json())]),
            WorkloadSel::Trace { path } => Json::obj([("trace", path.to_json())]),
        }
    }
}

impl ToJson for GeometrySpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("capacity", self.capacity.to_json()),
            ("columns", self.columns.to_json()),
            ("line", self.line.to_json()),
            ("page", self.page.to_json()),
            ("tlb", self.tlb.to_json()),
            ("replacement", self.replacement.to_string().to_json()),
            ("latency", self.latency.name().to_json()),
        ])
    }
}

impl ToJson for PolicySpec {
    fn to_json(&self) -> Json {
        match self {
            PolicySpec::Shared => Json::Str("shared".to_owned()),
            PolicySpec::Heuristic => Json::Str("heuristic".to_owned()),
            PolicySpec::RoundRobin => Json::Str("round-robin".to_owned()),
            PolicySpec::PartitionSweep => Json::Str("partition-sweep".to_owned()),
            PolicySpec::DynamicPhases => Json::Str("dynamic".to_owned()),
            PolicySpec::Partition { cache_columns } => Json::obj([(
                "partition",
                Json::obj([("cache_columns", cache_columns.to_json())]),
            )]),
            PolicySpec::Fixed { assignment } => Json::obj([(
                "fixed",
                Json::obj([(
                    "assignment",
                    Json::obj(
                        assignment
                            .iter()
                            .map(|(name, cols)| (name.clone(), cols.to_json())),
                    ),
                )]),
            )]),
            PolicySpec::Tuned {
                strategy,
                budget,
                seed,
            } => Json::obj([(
                "tuned",
                Json::obj([
                    ("strategy", strategy.to_string().to_json()),
                    ("budget", budget.to_json()),
                    ("seed", seed.to_json()),
                ]),
            )]),
        }
    }
}

impl ToJson for ReplayGrid {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workloads", self.workloads.to_json()),
            (
                "backends",
                Json::arr(self.backends.iter().map(|b| b.to_string().to_json())),
            ),
            ("geometries", self.geometries.to_json()),
            ("policies", self.policies.to_json()),
            ("label", self.label.name().to_json()),
        ])
    }
}

impl ToJson for GzipJobSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("seed", self.seed.to_json()),
            ("base", self.base.to_json()),
        ])
    }
}

impl ToJson for MtConfigSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", self.label.to_json()),
            ("capacity", self.capacity.to_json()),
            ("columns", self.columns.to_json()),
            ("line", self.line.to_json()),
            ("page", self.page.to_json()),
            ("critical_columns", self.critical_columns.to_json()),
            ("latency", self.latency.name().to_json()),
        ])
    }
}

impl ToJson for MultitaskGrid {
    fn to_json(&self) -> Json {
        Json::obj([
            ("jobs", self.jobs.to_json()),
            ("configs", self.configs.to_json()),
            (
                "policies",
                Json::arr(self.policies.iter().map(|p| p.to_json())),
            ),
            ("quanta", self.quanta.to_json()),
        ])
    }
}

impl ToJson for ExperimentSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("replay", self.replay.to_json()),
            ("multitask", self.multitask.to_json()),
        ])
    }
}

// ----------------------------------------------------------------------- JSON in

fn bad(reason: impl Into<String>) -> ExpError {
    ExpError::BadSpec {
        reason: reason.into(),
    }
}

fn parse_replacement(s: &str) -> Option<ReplacementPolicy> {
    ReplacementPolicy::ALL
        .into_iter()
        .find(|p| p.to_string() == s)
}

fn field_u64(obj: &Json, key: &str, default: u64) -> Result<u64, ExpError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad(format!("'{key}' must be a non-negative integer"))),
    }
}

fn field_usize(obj: &Json, key: &str, default: usize) -> Result<usize, ExpError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| bad(format!("'{key}' must be a non-negative integer"))),
    }
}

fn usize_list(value: &Json, what: &str) -> Result<Vec<usize>, ExpError> {
    value
        .as_arr()
        .ok_or_else(|| bad(format!("{what} must be an array")))?
        .iter()
        .map(|v| {
            v.as_usize()
                .ok_or_else(|| bad(format!("{what} entries must be integers")))
        })
        .collect()
}

impl WorkloadSel {
    fn from_json(value: &Json) -> Result<Self, ExpError> {
        if let Some(name) = value.as_str() {
            return WorkloadSel::corpus(name);
        }
        if let Some(name) = value.get("corpus").and_then(Json::as_str) {
            return WorkloadSel::corpus(name);
        }
        if let Some(path) = value.get("trace").and_then(Json::as_str) {
            return Ok(WorkloadSel::Trace {
                path: path.to_owned(),
            });
        }
        Err(bad(
            "workloads entries must be a corpus name, {\"corpus\": NAME} or {\"trace\": PATH}",
        ))
    }

    /// Builds a corpus selector, validating the name.
    ///
    /// # Errors
    ///
    /// Fails for names not in `ccache_workloads::CORPUS_NAMES`.
    pub fn corpus(name: &str) -> Result<Self, ExpError> {
        if !ccache_workloads::CORPUS_NAMES.contains(&name) {
            return Err(bad(format!(
                "unknown workload '{name}' (expected one of: {})",
                ccache_workloads::CORPUS_NAMES.join(", ")
            )));
        }
        Ok(WorkloadSel::Corpus {
            name: name.to_owned(),
        })
    }
}

impl GeometrySpec {
    fn from_json(value: &Json) -> Result<Self, ExpError> {
        if value.as_obj().is_none() {
            return Err(bad("geometries entries must be objects"));
        }
        let d = GeometrySpec::default();
        let replacement = match value.get("replacement") {
            None => d.replacement,
            Some(v) => {
                let raw = v
                    .as_str()
                    .ok_or_else(|| bad("'replacement' must be a string"))?;
                parse_replacement(raw)
                    .ok_or_else(|| bad(format!("unknown replacement policy '{raw}'")))?
            }
        };
        let latency = match value.get("latency") {
            None => d.latency,
            Some(v) => {
                let raw = v
                    .as_str()
                    .ok_or_else(|| bad("'latency' must be a string"))?;
                LatencyPreset::parse(raw)
                    .ok_or_else(|| bad(format!("unknown latency preset '{raw}'")))?
            }
        };
        Ok(GeometrySpec {
            capacity: field_u64(value, "capacity", d.capacity)?,
            columns: field_usize(value, "columns", d.columns)?,
            line: field_u64(value, "line", d.line)?,
            page: field_u64(value, "page", d.page)?,
            tlb: field_usize(value, "tlb", d.tlb)?,
            replacement,
            latency,
        })
    }
}

impl PolicySpec {
    fn from_json(value: &Json) -> Result<Self, ExpError> {
        if let Some(s) = value.as_str() {
            return match s {
                "shared" => Ok(PolicySpec::Shared),
                "heuristic" => Ok(PolicySpec::Heuristic),
                "round-robin" => Ok(PolicySpec::RoundRobin),
                "partition-sweep" => Ok(PolicySpec::PartitionSweep),
                "dynamic" => Ok(PolicySpec::DynamicPhases),
                "tuned" => Ok(PolicySpec::Tuned {
                    strategy: StrategyKind::default(),
                    budget: 48,
                    seed: 42,
                }),
                other => Err(bad(format!(
                    "unknown policy '{other}' (expected shared, heuristic, round-robin, \
                     partition-sweep, dynamic, tuned, or an object form)"
                ))),
            };
        }
        if let Some(p) = value.get("partition") {
            let cache_columns = match p.as_usize() {
                Some(k) => k,
                None => field_usize(p, "cache_columns", usize::MAX)?,
            };
            if cache_columns == usize::MAX {
                return Err(bad("'partition' needs a cache-column count"));
            }
            return Ok(PolicySpec::Partition { cache_columns });
        }
        if let Some(f) = value.get("fixed") {
            // Accept {"fixed": {"assignment": {...}}} and the shorthand {"fixed": {...}}.
            let table = f.get("assignment").unwrap_or(f);
            let pairs = table
                .as_obj()
                .ok_or_else(|| bad("'fixed' must map variable names to column lists"))?;
            let assignment = pairs
                .iter()
                .map(|(name, cols)| Ok((name.clone(), usize_list(cols, "'fixed' columns")?)))
                .collect::<Result<Vec<_>, ExpError>>()?;
            return Ok(PolicySpec::Fixed { assignment });
        }
        if let Some(t) = value.get("tuned") {
            let strategy = match t.get("strategy") {
                None => StrategyKind::default(),
                Some(v) => {
                    let raw = v
                        .as_str()
                        .ok_or_else(|| bad("'strategy' must be a string"))?;
                    StrategyKind::parse(raw)
                        .ok_or_else(|| bad(format!("unknown strategy '{raw}'")))?
                }
            };
            return Ok(PolicySpec::Tuned {
                strategy,
                budget: field_usize(t, "budget", 48)?,
                seed: field_u64(t, "seed", 42)?,
            });
        }
        Err(bad("unrecognised policy entry"))
    }
}

impl ReplayGrid {
    fn from_json(value: &Json) -> Result<Self, ExpError> {
        let defaults = ReplayGrid::default();
        let workloads = value
            .get("workloads")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("replay grids need a 'workloads' array"))?
            .iter()
            .map(WorkloadSel::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if workloads.is_empty() {
            return Err(bad("'workloads' must not be empty"));
        }
        let backends = match value.get("backends") {
            None => defaults.backends,
            Some(v) => v
                .as_arr()
                .ok_or_else(|| bad("'backends' must be an array"))?
                .iter()
                .map(|b| {
                    let raw = b
                        .as_str()
                        .ok_or_else(|| bad("'backends' entries must be strings"))?;
                    // Resolution goes through the shared registry, so spec spellings
                    // and the derived error list cannot drift from the CLI's.
                    let registry = ccache_sim::BackendRegistry::global();
                    registry.kind_of(raw).ok_or_else(|| {
                        bad(format!(
                            "unknown backend '{raw}' (expected {})",
                            registry.expected_single()
                        ))
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let geometries = match value.get("geometries") {
            None => defaults.geometries,
            Some(v) => v
                .as_arr()
                .ok_or_else(|| bad("'geometries' must be an array"))?
                .iter()
                .map(GeometrySpec::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        let policies = match value.get("policies") {
            None => defaults.policies,
            Some(v) => v
                .as_arr()
                .ok_or_else(|| bad("'policies' must be an array"))?
                .iter()
                .map(PolicySpec::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        let label = match value.get("label") {
            None => LabelScheme::Full,
            Some(v) => {
                let raw = v.as_str().ok_or_else(|| bad("'label' must be a string"))?;
                LabelScheme::parse(raw)
                    .ok_or_else(|| bad(format!("unknown label scheme '{raw}'")))?
            }
        };
        for axis in [
            (backends.is_empty(), "backends"),
            (geometries.is_empty(), "geometries"),
            (policies.is_empty(), "policies"),
        ] {
            if axis.0 {
                return Err(bad(format!("'{}' must not be empty", axis.1)));
            }
        }
        Ok(ReplayGrid {
            workloads,
            backends,
            geometries,
            policies,
            label,
        })
    }
}

impl MultitaskGrid {
    fn from_json(value: &Json) -> Result<Self, ExpError> {
        let defaults = MultitaskGrid::default();
        let jobs = match value.get("jobs") {
            None => defaults.jobs,
            Some(v) => {
                let arr = v.as_arr().ok_or_else(|| bad("'jobs' must be an array"))?;
                arr.iter()
                    .enumerate()
                    .map(|(i, j)| {
                        let name = match j.get("name").and_then(Json::as_str) {
                            Some(n) => n.to_owned(),
                            None => format!("gzip-{i}"),
                        };
                        Ok(GzipJobSpec {
                            name,
                            seed: field_u64(j, "seed", 41 + i as u64)?,
                            base: field_u64(j, "base", 0x100_0000 * (i as u64 + 1))?,
                        })
                    })
                    .collect::<Result<Vec<_>, ExpError>>()?
            }
        };
        if jobs.is_empty() {
            return Err(bad("'jobs' must not be empty"));
        }
        let configs = match value.get("configs") {
            None => defaults.configs,
            Some(v) => {
                let arr = v
                    .as_arr()
                    .ok_or_else(|| bad("'configs' must be an array"))?;
                arr.iter()
                    .map(|c| {
                        let label = c
                            .get("label")
                            .and_then(Json::as_str)
                            .ok_or_else(|| bad("multitask configs need a 'label'"))?
                            .to_owned();
                        let latency = match c.get("latency") {
                            None => LatencyPreset::Fig5,
                            Some(v) => {
                                let raw = v
                                    .as_str()
                                    .ok_or_else(|| bad("'latency' must be a string"))?;
                                LatencyPreset::parse(raw)
                                    .ok_or_else(|| bad(format!("unknown latency preset '{raw}'")))?
                            }
                        };
                        Ok(MtConfigSpec {
                            label,
                            capacity: field_u64(c, "capacity", 16 * 1024)?,
                            columns: field_usize(c, "columns", 8)?,
                            line: field_u64(c, "line", 32)?,
                            page: field_u64(c, "page", 1024)?,
                            critical_columns: field_usize(c, "critical_columns", 6)?,
                            latency,
                        })
                    })
                    .collect::<Result<Vec<_>, ExpError>>()?
            }
        };
        let policies = match value.get("policies") {
            None => defaults.policies,
            Some(v) => {
                let arr = v
                    .as_arr()
                    .ok_or_else(|| bad("'policies' must be an array"))?;
                arr.iter()
                    .map(|p| match p.as_str() {
                        Some("shared") => Ok(ccache_core::multitask::SharingPolicy::Shared),
                        Some("mapped") => Ok(ccache_core::multitask::SharingPolicy::Mapped),
                        _ => Err(bad("multitask policies must be \"shared\" or \"mapped\"")),
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        let quanta = match value.get("quanta") {
            None => defaults.quanta,
            Some(v) => usize_list(v, "'quanta'")?,
        };
        for axis in [
            (configs.is_empty(), "configs"),
            (policies.is_empty(), "policies"),
            (quanta.is_empty(), "quanta"),
        ] {
            if axis.0 {
                return Err(bad(format!("'{}' must not be empty", axis.1)));
            }
        }
        Ok(MultitaskGrid {
            jobs,
            configs,
            policies,
            quanta,
        })
    }
}

impl ExperimentSpec {
    /// Parses a spec from its JSON document.
    ///
    /// # Errors
    ///
    /// Fails with [`ExpError::BadSpec`] for structural problems (missing fields, unknown
    /// names, empty axes).
    pub fn from_json(doc: &Json) -> Result<Self, ExpError> {
        if doc.as_obj().is_none() {
            return Err(bad("the spec must be a JSON object"));
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("the spec needs a string 'name'"))?
            .to_owned();
        let replay = match doc.get("replay") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| bad("'replay' must be an array of grids"))?
                .iter()
                .map(ReplayGrid::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        let multitask = match doc.get("multitask") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| bad("'multitask' must be an array of grids"))?
                .iter()
                .map(MultitaskGrid::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        if replay.is_empty() && multitask.is_empty() {
            return Err(bad(
                "the spec needs at least one 'replay' or 'multitask' grid",
            ));
        }
        Ok(ExperimentSpec {
            name,
            replay,
            multitask,
        })
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Fails on JSON syntax errors and on structural spec problems.
    pub fn parse_str(text: &str) -> Result<Self, ExpError> {
        let doc = Json::parse(text)?;
        ExperimentSpec::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_replay_spec_fills_defaults() {
        let spec =
            ExperimentSpec::parse_str(r#"{"name": "t", "replay": [{"workloads": ["fir"]}]}"#)
                .unwrap();
        assert_eq!(spec.name, "t");
        let grid = &spec.replay[0];
        assert_eq!(grid.backends, vec![BackendKind::ColumnCache]);
        assert_eq!(grid.geometries, vec![GeometrySpec::default()]);
        assert_eq!(grid.policies, vec![PolicySpec::Shared]);
        assert_eq!(grid.label, LabelScheme::Full);
    }

    #[test]
    fn policy_spellings_canonicalize_identically() {
        let a = PolicySpec::from_json(&Json::parse(r#"{"partition": 2}"#).unwrap()).unwrap();
        let b =
            PolicySpec::from_json(&Json::parse(r#"{"partition": {"cache_columns": 2}}"#).unwrap())
                .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json().compact(), b.to_json().compact());

        let f =
            PolicySpec::from_json(&Json::parse(r#"{"fixed": {"x": [0, 1]}}"#).unwrap()).unwrap();
        let g = PolicySpec::from_json(
            &Json::parse(r#"{"fixed": {"assignment": {"x": [0, 1]}}}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(f.to_json().compact(), g.to_json().compact());
    }

    #[test]
    fn spec_round_trips_through_canonical_json() {
        let spec = ExperimentSpec::parse_str(
            r#"{
                "name": "round-trip",
                "replay": [{
                    "workloads": ["gzip", {"trace": "x.cct"}],
                    "backends": ["column", "ideal"],
                    "geometries": [{"columns": 8, "replacement": "fifo"}],
                    "policies": ["heuristic", {"partition": 1},
                                 {"tuned": {"strategy": "hill-climb", "budget": 4}}],
                    "label": "backend"
                }],
                "multitask": [{"quanta": [1, 16]}]
            }"#,
        )
        .unwrap();
        let echoed = ExperimentSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, echoed);
        assert_eq!(spec.to_json().pretty(), echoed.to_json().pretty());
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        for (text, needle) in [
            (r#"[]"#, "must be a JSON object"),
            (r#"{"replay": []}"#, "needs a string 'name'"),
            (r#"{"name": "x"}"#, "at least one"),
            (r#"{"name":"x","replay":[{}]}"#, "'workloads'"),
            (
                r#"{"name":"x","replay":[{"workloads":["nope"]}]}"#,
                "unknown workload 'nope'",
            ),
            (
                r#"{"name":"x","replay":[{"workloads":["fir"],"backends":["victim"]}]}"#,
                "unknown backend 'victim'",
            ),
            (
                r#"{"name":"x","replay":[{"workloads":["fir"],"policies":["magic"]}]}"#,
                "unknown policy 'magic'",
            ),
            (
                r#"{"name":"x","multitask":[{"policies":["exclusive"]}]}"#,
                "shared",
            ),
            (
                r#"{"name":"x","replay":[{"workloads":["fir"],"geometries":[{"replacement":"mru"}]}]}"#,
                "unknown replacement policy",
            ),
        ] {
            let err = ExperimentSpec::parse_str(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{text} should fail with {needle}, got: {err}"
            );
        }
    }

    #[test]
    fn default_multitask_grid_matches_figure5() {
        let g = MultitaskGrid::default();
        assert_eq!(g.jobs.len(), 3);
        assert_eq!(g.jobs[0].name, "gzip-A");
        assert_eq!(g.jobs[0].seed, 41);
        assert_eq!(g.configs[0].config().capacity_bytes, 16 * 1024);
        assert_eq!(g.configs[0].config().critical_job_columns, 6);
        assert_eq!(g.quanta.len(), 8);
    }
}
