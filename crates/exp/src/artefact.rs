//! The unified artefact: one JSON schema for every executed experiment.
//!
//! ```text
//! {
//!   "artefact": "ccache-exp", "version": 1,
//!   "name": ..., "quick": ...,
//!   "jobs": { "expanded": N, "planned": M },
//!   "spec": { ...canonical spec echo... },
//!   "results": [ { "job": {...}, "type": "replay" | "partition" | "dynamic"
//!                  | "tuned" | "multitask", ...payload... }, ... ]
//! }
//! ```
//!
//! Serialization is deterministic (fixed key order, order-preserving execution), so
//! repeated runs of the same spec produce byte-identical artefacts — CI diffs them.

use crate::error::ExpError;
use crate::exec::{execute, ExecOptions, JobOutcome};
use crate::plan::{plan, JobUnit, Plan};
use crate::spec::ExperimentSpec;
use ccache_json::{Json, ToJson};

/// Schema identifier of the artefact document.
pub const ARTEFACT_KIND: &str = "ccache-exp";
/// Schema version of the artefact document.
pub const ARTEFACT_VERSION: u64 = 1;

/// The result of one full spec → plan → execute run.
#[derive(Debug, Clone)]
pub struct Artefact {
    /// The spec that ran (echoed canonically into the document).
    pub spec: ExperimentSpec,
    /// Whether workloads were built at the quick scale.
    pub quick: bool,
    /// Number of jobs before dedup.
    pub expanded: usize,
    /// The planned jobs, in execution order.
    pub jobs: Vec<JobUnit>,
    /// One outcome per planned job, in the same order.
    pub outcomes: Vec<JobOutcome>,
}

impl Artefact {
    /// Builds an artefact from a plan and its outcomes.
    pub fn new(spec: ExperimentSpec, quick: bool, plan: Plan, outcomes: Vec<JobOutcome>) -> Self {
        Artefact {
            spec,
            quick,
            expanded: plan.expanded,
            jobs: plan.jobs,
            outcomes,
        }
    }

    /// The planned jobs zipped with their outcomes.
    pub fn entries(&self) -> impl Iterator<Item = (&JobUnit, &JobOutcome)> {
        self.jobs.iter().zip(self.outcomes.iter())
    }

    /// Outcomes indexed by canonical job key. Presets assemble their reports by walking
    /// the **expanded** (pre-dedup) job sequence and looking each job up here, so a job
    /// deduplicated across grids still contributes to every report position that wants
    /// it.
    pub fn by_key(&self) -> std::collections::BTreeMap<String, &JobOutcome> {
        self.entries()
            .map(|(job, outcome)| (job.key(), outcome))
            .collect()
    }

    /// The summary table of the artefact: a header row plus one row per result,
    /// shared by the CSV and markdown renderings of `ccache run`.
    pub fn summary_rows(&self) -> (Vec<&'static str>, Vec<Vec<String>>) {
        let header = vec![
            "type",
            "label",
            "quantum",
            "cycles",
            "references",
            "misses",
            "miss_rate",
            "cpi",
        ];
        let rows = self
            .outcomes
            .iter()
            .map(|outcome| match outcome {
                JobOutcome::Replay { label, result, .. } => vec![
                    "replay".to_owned(),
                    label.clone(),
                    String::new(),
                    result.total_cycles().to_string(),
                    result.references.to_string(),
                    result.misses.to_string(),
                    format!("{:.6}", result.miss_rate()),
                    format!("{:.6}", result.cpi()),
                ],
                JobOutcome::Partition { label, point, .. } => vec![
                    "partition".to_owned(),
                    label.clone(),
                    String::new(),
                    point.cycles.to_string(),
                    point.result.references.to_string(),
                    point.result.misses.to_string(),
                    format!("{:.6}", point.result.miss_rate()),
                    format!("{:.6}", point.result.cpi()),
                ],
                JobOutcome::Dynamic { label, run, .. } => vec![
                    "dynamic".to_owned(),
                    label.clone(),
                    String::new(),
                    run.cycles.to_string(),
                    run.phases
                        .iter()
                        .map(|p| p.result.references)
                        .sum::<u64>()
                        .to_string(),
                    run.phases
                        .iter()
                        .map(|p| p.result.misses)
                        .sum::<u64>()
                        .to_string(),
                    String::new(),
                    String::new(),
                ],
                JobOutcome::Tuned { label, outcome } => vec![
                    "tuned".to_owned(),
                    label.clone(),
                    String::new(),
                    outcome.best.fitness.cycles.to_string(),
                    String::new(),
                    outcome.best.fitness.misses.to_string(),
                    format!("{:.6}", outcome.best.fitness.miss_rate),
                    String::new(),
                ],
                JobOutcome::Multitask {
                    series,
                    quantum,
                    run,
                } => vec![
                    "multitask".to_owned(),
                    series.clone(),
                    quantum.to_string(),
                    run.critical_job().memory_cycles.to_string(),
                    run.critical_job().references.to_string(),
                    String::new(),
                    String::new(),
                    format!("{:.6}", run.critical_job().cpi),
                ],
            })
            .collect();
        (header, rows)
    }
}

impl ToJson for JobOutcome {
    fn to_json(&self) -> Json {
        match self {
            JobOutcome::Replay {
                label,
                result,
                layout,
                series,
            } => {
                let mut pairs = vec![
                    ("type".to_owned(), "replay".to_json()),
                    ("label".to_owned(), label.to_json()),
                    ("total_cycles".to_owned(), result.total_cycles().to_json()),
                    ("cpi".to_owned(), result.cpi().to_json()),
                    ("miss_rate".to_owned(), result.miss_rate().to_json()),
                    ("result".to_owned(), result.to_json()),
                ];
                pairs.push((
                    "layout".to_owned(),
                    match layout {
                        None => Json::Null,
                        Some(info) => Json::obj([
                            ("cost", info.cost.to_json()),
                            ("merges", info.merges.to_json()),
                            ("optimal", info.optimal.to_json()),
                        ]),
                    },
                ));
                // Absent (not null) when unobserved, keeping pre-observer artefacts
                // byte-identical.
                if let Some(series) = series {
                    pairs.push(("time_series".to_owned(), series.to_json()));
                }
                Json::Obj(pairs)
            }
            JobOutcome::Partition {
                label,
                workload,
                point,
            } => Json::obj([
                ("type", "partition".to_json()),
                ("label", label.to_json()),
                ("workload", workload.to_json()),
                ("point", point.to_json()),
            ]),
            JobOutcome::Dynamic { label, run, series } => {
                let mut pairs = vec![
                    ("type".to_owned(), "dynamic".to_json()),
                    ("label".to_owned(), label.to_json()),
                    ("run".to_owned(), run.to_json()),
                ];
                if let Some(series) = series {
                    pairs.push(("time_series".to_owned(), series.to_json()));
                }
                Json::Obj(pairs)
            }
            JobOutcome::Tuned { label, outcome } => Json::obj([
                ("type", "tuned".to_json()),
                ("label", label.to_json()),
                ("outcome", outcome.to_json()),
            ]),
            JobOutcome::Multitask {
                series,
                quantum,
                run,
            } => Json::obj([
                ("type", "multitask".to_json()),
                ("series", series.to_json()),
                ("quantum", quantum.to_json()),
                ("cpi", run.critical_job().cpi.to_json()),
                ("run", run.to_json()),
            ]),
        }
    }
}

impl ToJson for Artefact {
    fn to_json(&self) -> Json {
        Json::obj([
            ("artefact", ARTEFACT_KIND.to_json()),
            ("version", ARTEFACT_VERSION.to_json()),
            ("name", self.spec.name.to_json()),
            ("quick", self.quick.to_json()),
            (
                "jobs",
                Json::obj([
                    ("expanded", self.expanded.to_json()),
                    ("planned", self.jobs.len().to_json()),
                ]),
            ),
            ("spec", self.spec.to_json()),
            (
                "results",
                Json::arr(self.entries().map(|(job, outcome)| {
                    let Json::Obj(payload) = outcome.to_json() else {
                        unreachable!("outcomes serialize to objects");
                    };
                    let mut pairs = vec![("job".to_owned(), job.descriptor())];
                    pairs.extend(payload);
                    Json::Obj(pairs)
                })),
            ),
        ])
    }
}

/// Runs a spec end to end: plan, execute, package.
///
/// # Errors
///
/// Propagates planning and execution failures.
pub fn run_spec(spec: &ExperimentSpec, opts: &ExecOptions) -> Result<Artefact, ExpError> {
    let p = plan(spec);
    let outcomes = execute(&p, opts)?;
    Ok(Artefact::new(spec.clone(), opts.quick, p, outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{LabelScheme, PolicySpec, ReplayGrid, WorkloadSel};

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "tiny".into(),
            replay: vec![ReplayGrid {
                workloads: vec![WorkloadSel::Corpus { name: "fir".into() }],
                policies: vec![PolicySpec::Shared, PolicySpec::Heuristic],
                label: LabelScheme::Policy,
                ..ReplayGrid::default()
            }],
            multitask: Vec::new(),
        }
    }

    #[test]
    fn artefacts_serialize_deterministically() {
        let opts = ExecOptions {
            quick: true,
            ..ExecOptions::default()
        };
        let a = run_spec(&tiny_spec(), &opts).unwrap();
        let b = run_spec(&tiny_spec(), &opts).unwrap();
        let ja = a.to_json().pretty();
        assert_eq!(ja, b.to_json().pretty());
        assert!(ja.contains("\"artefact\": \"ccache-exp\""));
        assert!(ja.contains("\"planned\": 2"));
        assert!(ja.contains("\"type\": \"replay\""));
        // the artefact parses back as JSON
        let doc = Json::parse(&ja).unwrap();
        assert_eq!(doc.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(
            doc.get("results").and_then(Json::as_arr).map(|r| r.len()),
            Some(2)
        );
    }

    #[test]
    fn summary_rows_cover_every_result() {
        let opts = ExecOptions {
            quick: true,
            ..ExecOptions::default()
        };
        let a = run_spec(&tiny_spec(), &opts).unwrap();
        let (header, rows) = a.summary_rows();
        assert_eq!(rows.len(), a.outcomes.len());
        assert!(rows.iter().all(|r| r.len() == header.len()));
        assert_eq!(rows[0][0], "replay");
        assert_eq!(rows[0][1], "shared");
    }
}
