//! The declarative experiment layer: one spec → plan → execute → report pipeline.
//!
//! Every result in the paper — the Figure 4 partition sweeps, the Figure 4(d) dynamic
//! comparison, the Figure 5 multitasking series, the ablations — is an instance of one
//! experiment shape: *a grid of (workload × backend × geometry × mapping policy),
//! replayed and reported*. This crate makes that shape a first-class value:
//!
//! * [`spec`] — the declarative [`ExperimentSpec`]: a union of cross-product grids,
//!   parsed from JSON (`examples/specs/*.json`) or built programmatically;
//! * [`mod@plan`] — the [`Planner`](plan::plan): grid expansion with canonical-key dedup
//!   (the same configuration is never replayed twice) in first-occurrence order;
//! * [`exec`] — the [`Executor`](exec::execute): snapshot-reusing, thread-parallel
//!   replay through `ccache-core`'s batched `ReplayEngine`, byte-identical output with
//!   parallelism on or off;
//! * [`artefact`] — the unified [`Artefact`] report schema every run serializes to;
//! * [`presets`] — the legacy CLI commands (`fig4`, `fig5`, `ablation`, `sweep`)
//!   compiled to specs;
//! * [`scale`] — the `--quick`/paper experiment scales (moved here from the CLI).
//!
//! # Example: a two-policy grid over one kernel
//!
//! ```
//! use ccache_exp::exec::ExecOptions;
//! use ccache_exp::run_spec;
//! use ccache_exp::spec::ExperimentSpec;
//!
//! let spec = ExperimentSpec::parse_str(r#"{
//!     "name": "fir-policies",
//!     "replay": [{ "workloads": ["fir"], "policies": ["shared", "heuristic"] }]
//! }"#)?;
//! let artefact = run_spec(&spec, &ExecOptions { quick: true, ..ExecOptions::default() })?;
//! assert_eq!(artefact.outcomes.len(), 2);
//! # Ok::<(), ccache_exp::ExpError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod artefact;
pub mod error;
pub mod exec;
pub mod plan;
pub mod presets;
pub mod scale;
pub mod spec;

pub use artefact::{run_spec, Artefact};
pub use error::ExpError;
pub use exec::{execute, ExecOptions, JobOutcome, LayoutInfo, ObserveOptions};
pub use plan::{plan, JobUnit, Plan};
pub use scale::Scale;
pub use spec::{ExperimentSpec, GeometrySpec, PolicySpec, ReplayGrid, WorkloadSel};
