//! The planner: expand an [`ExperimentSpec`] into a deduplicated, ordered job list.
//!
//! Expansion is a plain nested cross product — workloads × backends × geometries ×
//! policies for replay grids (in that nesting order), configs × policies × quanta for
//! multitask grids — with two planner-level rewrites:
//!
//! * [`PolicySpec::PartitionSweep`] expands into `Partition { 0..=columns }` of the
//!   geometry it is crossed with (the Figure 4 sweep);
//! * policies that fix their own backend ([`PolicySpec::DynamicPhases`] and
//!   [`PolicySpec::Tuned`] always run the column cache) are canonicalized to it, so a
//!   backend axis does not multiply them into identical work.
//!
//! **Dedup guarantee** (mirroring the `ccache-opt` fitness cache): two expanded jobs
//! with the same canonical descriptor — same workload, backend, geometry, mapping
//! policy, label (and quantum/config for multitask) — are planned **once**. The plan
//! keeps first-occurrence order and never drops a distinct job; this is property-tested
//! in `tests/properties.rs`.

use crate::spec::{
    ExperimentSpec, GeometrySpec, GzipJobSpec, MtConfigSpec, PolicySpec, WorkloadSel,
};
use ccache_core::multitask::SharingPolicy;
use ccache_json::{Json, ToJson};
use ccache_sim::backend::BackendKind;
use std::collections::HashSet;

/// One planned replay: a single trace replay under one configuration and mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayJob {
    /// The workload to replay.
    pub workload: WorkloadSel,
    /// The backend to replay on.
    pub backend: BackendKind,
    /// The cache geometry.
    pub geometry: GeometrySpec,
    /// The mapping policy (never `PartitionSweep`; the planner expands it).
    pub policy: PolicySpec,
    /// The run label (becomes the result's `name`).
    pub label: String,
}

/// One planned multitask run: one schedule replay at one quantum.
#[derive(Debug, Clone, PartialEq)]
pub struct MultitaskJob {
    /// The scheduled jobs (job 0 is the critical job).
    pub jobs: Vec<GzipJobSpec>,
    /// The cache configuration.
    pub config: MtConfigSpec,
    /// The sharing policy.
    pub policy: SharingPolicy,
    /// The context-switch quantum.
    pub quantum: usize,
    /// The series label this point belongs to (config label, `" mapped"`-suffixed).
    pub series: String,
}

/// A planned unit of work.
#[derive(Debug, Clone, PartialEq)]
pub enum JobUnit {
    /// A single trace replay.
    Replay(ReplayJob),
    /// A single multitask schedule replay.
    Multitask(MultitaskJob),
}

impl JobUnit {
    /// The canonical JSON descriptor of this job (echoed into the artefact).
    pub fn descriptor(&self) -> Json {
        match self {
            JobUnit::Replay(j) => Json::obj([
                ("type", "replay".to_json()),
                ("workload", j.workload.to_json()),
                ("backend", j.backend.to_string().to_json()),
                ("geometry", j.geometry.to_json()),
                ("policy", j.policy.to_json()),
                ("label", j.label.to_json()),
            ]),
            JobUnit::Multitask(j) => Json::obj([
                ("type", "multitask".to_json()),
                ("jobs", j.jobs.to_json()),
                ("config", j.config.to_json()),
                (
                    "policy",
                    match j.policy {
                        SharingPolicy::Shared => "shared".to_json(),
                        SharingPolicy::Mapped => "mapped".to_json(),
                    },
                ),
                ("quantum", j.quantum.to_json()),
                ("series", j.series.to_json()),
            ]),
        }
    }

    /// The canonical dedup key: the compact descriptor text.
    pub fn key(&self) -> String {
        self.descriptor().compact()
    }

    /// The display label of the job.
    pub fn label(&self) -> &str {
        match self {
            JobUnit::Replay(j) => &j.label,
            JobUnit::Multitask(j) => &j.series,
        }
    }
}

/// The output of planning: deduplicated jobs in first-occurrence order.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The jobs to execute, in order.
    pub jobs: Vec<JobUnit>,
    /// Number of jobs the grids expanded to before dedup.
    pub expanded: usize,
}

impl Plan {
    /// Number of planned (deduplicated) jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Expands a spec into the raw (pre-dedup) job sequence. Public for the dedup property
/// tests; [`plan`] is the interface the executor consumes.
pub fn expand(spec: &ExperimentSpec) -> Vec<JobUnit> {
    let mut out = Vec::new();
    for grid in &spec.replay {
        for workload in &grid.workloads {
            for &backend in &grid.backends {
                for geometry in &grid.geometries {
                    for policy in &grid.policies {
                        expand_policy(&mut out, grid, workload, backend, geometry, policy);
                    }
                }
            }
        }
    }
    for grid in &spec.multitask {
        for config in &grid.configs {
            for &policy in &grid.policies {
                let series = match policy {
                    SharingPolicy::Shared => config.label.clone(),
                    SharingPolicy::Mapped => format!("{} mapped", config.label),
                };
                for &quantum in &grid.quanta {
                    out.push(JobUnit::Multitask(MultitaskJob {
                        jobs: grid.jobs.clone(),
                        config: config.clone(),
                        policy,
                        quantum,
                        series: series.clone(),
                    }));
                }
            }
        }
    }
    out
}

fn expand_policy(
    out: &mut Vec<JobUnit>,
    grid: &crate::spec::ReplayGrid,
    workload: &WorkloadSel,
    backend: BackendKind,
    geometry: &GeometrySpec,
    policy: &PolicySpec,
) {
    if let PolicySpec::PartitionSweep = policy {
        for cache_columns in 0..=geometry.columns {
            expand_policy(
                out,
                grid,
                workload,
                backend,
                geometry,
                &PolicySpec::Partition { cache_columns },
            );
        }
        return;
    }
    // Policies that always run on the column cache are canonicalized to it, so a
    // backend axis cannot fan them out into identical replays.
    let backend = match policy {
        PolicySpec::DynamicPhases | PolicySpec::Tuned { .. } => BackendKind::ColumnCache,
        _ => backend,
    };
    let label = match grid.label {
        crate::spec::LabelScheme::Full => format!(
            "{}/{}/{}/{}",
            workload.short(),
            backend,
            geometry.short(),
            policy.short()
        ),
        crate::spec::LabelScheme::Workload => workload.short().to_owned(),
        crate::spec::LabelScheme::Backend => backend.to_string(),
        crate::spec::LabelScheme::Policy => policy.short(),
    };
    out.push(JobUnit::Replay(ReplayJob {
        workload: workload.clone(),
        backend,
        geometry: *geometry,
        policy: policy.clone(),
        label,
    }));
}

/// Plans a spec: expands every grid and deduplicates by canonical key, keeping
/// first-occurrence order.
pub fn plan(spec: &ExperimentSpec) -> Plan {
    let expanded = expand(spec);
    let total = expanded.len();
    let mut seen: HashSet<String> = HashSet::with_capacity(total);
    let mut jobs = Vec::with_capacity(total);
    for job in expanded {
        if seen.insert(job.key()) {
            jobs.push(job);
        }
    }
    Plan {
        jobs,
        expanded: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ReplayGrid;

    fn corpus(name: &str) -> WorkloadSel {
        WorkloadSel::Corpus {
            name: name.to_owned(),
        }
    }

    #[test]
    fn partition_sweep_expands_per_geometry_columns() {
        let spec = ExperimentSpec {
            name: "t".into(),
            replay: vec![ReplayGrid {
                workloads: vec![corpus("fir")],
                geometries: vec![
                    GeometrySpec {
                        columns: 2,
                        ..GeometrySpec::default()
                    },
                    GeometrySpec::default(),
                ],
                policies: vec![PolicySpec::PartitionSweep],
                ..ReplayGrid::default()
            }],
            multitask: Vec::new(),
        };
        let p = plan(&spec);
        // 0..=2 for the 2-column geometry, 0..=4 for the 4-column one.
        assert_eq!(p.len(), 3 + 5);
        assert_eq!(p.expanded, 8);
    }

    #[test]
    fn duplicate_axis_entries_plan_once() {
        let spec = ExperimentSpec {
            name: "t".into(),
            replay: vec![
                ReplayGrid {
                    workloads: vec![corpus("fir"), corpus("fir")],
                    ..ReplayGrid::default()
                },
                // A second grid repeating the same configuration entirely.
                ReplayGrid {
                    workloads: vec![corpus("fir")],
                    ..ReplayGrid::default()
                },
            ],
            multitask: Vec::new(),
        };
        let p = plan(&spec);
        assert_eq!(p.expanded, 3);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn backend_axis_does_not_multiply_column_only_policies() {
        let spec = ExperimentSpec {
            name: "t".into(),
            replay: vec![ReplayGrid {
                workloads: vec![corpus("mpeg-combined")],
                backends: BackendKind::ALL.to_vec(),
                policies: vec![PolicySpec::DynamicPhases, PolicySpec::Shared],
                ..ReplayGrid::default()
            }],
            multitask: Vec::new(),
        };
        let p = plan(&spec);
        // dynamic collapses to one job; shared stays one per backend.
        assert_eq!(p.len(), 1 + 3);
    }

    #[test]
    fn multitask_series_labels_follow_policy() {
        let spec = ExperimentSpec {
            name: "t".into(),
            replay: Vec::new(),
            multitask: vec![crate::spec::MultitaskGrid {
                quanta: vec![1, 4],
                ..crate::spec::MultitaskGrid::default()
            }],
        };
        let p = plan(&spec);
        assert_eq!(p.len(), 2 * 2 * 2); // configs × policies × quanta
        let labels: Vec<&str> = p.jobs.iter().map(|j| j.label()).collect();
        assert!(labels.contains(&"gzip.16k"));
        assert!(labels.contains(&"gzip.16k mapped"));
        assert!(labels.contains(&"gzip.128k mapped"));
    }
}
