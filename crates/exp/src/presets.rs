//! The legacy figure commands, compiled to experiment specs.
//!
//! `ccache fig4`, `fig5`, `ablation` and `sweep` are presets over the spec → plan →
//! execute pipeline: each function here returns the [`ExperimentSpec`] the command runs,
//! and the CLI reassembles the resulting outcomes into the exact report shapes (and
//! byte-identical JSON artefacts) those commands produced before the refactor —
//! golden-tested in `crates/cli/tests/golden_parity.rs`.

use crate::spec::{
    ExperimentSpec, GeometrySpec, LabelScheme, MultitaskGrid, PolicySpec, ReplayGrid, WorkloadSel,
};
use ccache_sim::backend::BackendKind;
use ccache_sim::ReplacementPolicy;

/// The Figure 4 geometry as a spec value (2 KB, 4 columns, 32 B lines, 128 B pages).
pub fn figure4_geometry() -> GeometrySpec {
    GeometrySpec::default()
}

/// The MPEG routines of Figure 4 in presentation order, as corpus names.
pub const FIG4_ROUTINES: [(&str, &str); 3] = [
    ("dequant", "mpeg-dequant"),
    ("plus", "mpeg-plus"),
    ("idct", "mpeg-idct"),
];

/// The `ccache fig4` spec: per-routine partition sweeps, plus the combined
/// application's sweep and its dynamically remapped comparison. `routine` filters to
/// one routine (`"all"` keeps everything), mirroring the `--routine` flag.
pub fn fig4_spec(routine: &str) -> ExperimentSpec {
    let want = |name: &str| routine == "all" || routine == name;
    let mut replay = Vec::new();
    let routines: Vec<WorkloadSel> = FIG4_ROUTINES
        .iter()
        .filter(|(short, _)| want(short))
        .map(|(_, corpus)| WorkloadSel::Corpus {
            name: (*corpus).to_owned(),
        })
        .collect();
    if !routines.is_empty() {
        replay.push(ReplayGrid {
            workloads: routines,
            geometries: vec![figure4_geometry()],
            policies: vec![PolicySpec::PartitionSweep],
            ..ReplayGrid::default()
        });
    }
    if want("combined") {
        replay.push(ReplayGrid {
            workloads: vec![WorkloadSel::Corpus {
                name: "mpeg-combined".to_owned(),
            }],
            geometries: vec![figure4_geometry()],
            policies: vec![PolicySpec::PartitionSweep, PolicySpec::DynamicPhases],
            ..ReplayGrid::default()
        });
    }
    ExperimentSpec {
        name: "fig4".to_owned(),
        replay,
        multitask: Vec::new(),
    }
}

/// The `ccache fig5` spec: the default multitask grid (three gzip jobs, 16 KiB and
/// 128 KiB, shared and mapped) with the quantum sweep of the requested scale.
pub fn fig5_spec(quanta: Vec<usize>) -> ExperimentSpec {
    ExperimentSpec {
        name: "fig5".to_owned(),
        replay: Vec::new(),
        multitask: vec![MultitaskGrid {
            quanta,
            ..MultitaskGrid::default()
        }],
    }
}

/// The `ccache sweep` spec: one trace file replayed across backends under one
/// geometry, labelled by backend (the report's `name` column).
pub fn sweep_spec(
    trace_path: &str,
    backends: Vec<BackendKind>,
    geometry: GeometrySpec,
) -> ExperimentSpec {
    ExperimentSpec {
        name: "sweep".to_owned(),
        replay: vec![ReplayGrid {
            workloads: vec![WorkloadSel::Trace {
                path: trace_path.to_owned(),
            }],
            backends,
            geometries: vec![geometry],
            policies: vec![PolicySpec::Shared],
            label: LabelScheme::Backend,
        }],
        multitask: Vec::new(),
    }
}

/// The `ccache ablation` spec: three of the four studies as grids (the fourth — tint
/// remap vs. page re-tint — is a control-plane micro-benchmark with no reference
/// stream, and stays hand-rolled in the command).
///
/// 1. replacement-policy sensitivity: `mpeg-idct` × one geometry per policy;
/// 2. column-count sensitivity: `mpeg-combined` × geometries {2, 4, 8, 16} columns ×
///    a full partition sweep each;
/// 3. layout vs. naive: `mpeg-idct` × {shared, round-robin, heuristic}.
pub fn ablation_spec() -> ExperimentSpec {
    let idct = WorkloadSel::Corpus {
        name: "mpeg-idct".to_owned(),
    };
    let study1 = ReplayGrid {
        workloads: vec![idct.clone()],
        geometries: ReplacementPolicy::ALL
            .into_iter()
            .map(|replacement| GeometrySpec {
                replacement,
                ..GeometrySpec::default()
            })
            .collect(),
        policies: vec![PolicySpec::Shared],
        label: LabelScheme::Policy,
        ..ReplayGrid::default()
    };
    let study2 = ReplayGrid {
        workloads: vec![WorkloadSel::Corpus {
            name: "mpeg-combined".to_owned(),
        }],
        geometries: [2usize, 4, 8, 16]
            .into_iter()
            .map(|columns| GeometrySpec {
                columns,
                ..GeometrySpec::default()
            })
            .collect(),
        policies: vec![PolicySpec::PartitionSweep],
        ..ReplayGrid::default()
    };
    let study3 = ReplayGrid {
        workloads: vec![idct],
        geometries: vec![GeometrySpec::default()],
        policies: vec![
            PolicySpec::Shared,
            PolicySpec::RoundRobin,
            PolicySpec::Heuristic,
        ],
        label: LabelScheme::Policy,
        ..ReplayGrid::default()
    };
    ExperimentSpec {
        name: "ablation".to_owned(),
        replay: vec![study1, study2, study3],
        multitask: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan;

    #[test]
    fn fig4_spec_plans_the_expected_jobs() {
        let all = plan(&fig4_spec("all"));
        // 4 routines × 5 partition points + 1 dynamic run
        assert_eq!(all.len(), 4 * 5 + 1);
        let one = plan(&fig4_spec("idct"));
        assert_eq!(one.len(), 5);
        let combined = plan(&fig4_spec("combined"));
        assert_eq!(combined.len(), 6);
    }

    #[test]
    fn fig5_spec_plans_series_by_quantum() {
        let p = plan(&fig5_spec(vec![1, 4, 16]));
        assert_eq!(p.len(), 2 * 2 * 3);
    }

    #[test]
    fn ablation_spec_covers_three_studies() {
        let p = plan(&ablation_spec());
        // study 1: 5 policies; study 2: 4 geometries × (columns+1) points;
        // study 3: 3 mapping policies — study-1 lru/shared equals study-3 shared?
        // No: study 1 labels by policy scheme too, but geometry and label coincide for
        // (lru, shared) and study 3's shared — the planner must dedup exactly that one.
        let study1 = 5;
        let study2 = 3 + 5 + 9 + 17;
        let study3 = 3;
        let dup = 1; // idct/column/default-geometry/shared appears in studies 1 and 3
        assert_eq!(p.expanded, study1 + study2 + study3);
        assert_eq!(p.len(), study1 + study2 + study3 - dup);
    }

    #[test]
    fn sweep_spec_labels_by_backend() {
        let p = plan(&sweep_spec(
            "x.cct",
            BackendKind::ALL.to_vec(),
            GeometrySpec::default(),
        ));
        assert_eq!(p.len(), 3);
        let labels: Vec<&str> = p.jobs.iter().map(|j| j.label()).collect();
        assert_eq!(
            labels,
            vec!["column-cache", "set-assoc", "ideal-scratchpad"]
        );
    }
}
