//! The executor: run a [`Plan`] through the batched replay engine.
//!
//! Jobs are grouped by (workload, backend, geometry): each group builds one
//! [`ReplayEngine`], snapshots the pristine state once and then `reset` → `apply` →
//! `replay`s every mapping policy of the group from that snapshot — the optimizer inner
//! loop of `ccache-opt`, reused for declarative grids. Groups run thread-parallel (the
//! `parallel` feature) through the order-preserving `par_map`, so the outcome vector —
//! and therefore the serialized artefact — is byte-identical with parallelism on or
//! off.
//!
//! Jobs that manage their own system construction (partition points, phase remaps,
//! tuning runs, multitask schedules, streaming trace files) run as singleton groups
//! through the same experiment functions the legacy commands used, which is what makes
//! the CLI presets byte-identical to their pre-refactor output.

use crate::error::ExpError;
use crate::plan::{JobUnit, MultitaskJob, Plan, ReplayJob};
use crate::scale::Scale;
use crate::spec::{GeometrySpec, PolicySpec, WorkloadSel};
use ccache_core::dynamic::{run_dynamic, run_dynamic_observed, DynamicRunResult};
use ccache_core::engine::ReplayEngine;
use ccache_core::multitask::{run_multitasking, MultitaskRun};
use ccache_core::observe::{SeriesRecorder, TimeSeries};
use ccache_core::partition::{run_partition_point_on, PartitionPoint};
use ccache_core::runner::{CacheMapping, RegionMapping, RunResult};
use ccache_layout::weights::conflict_graph_from_trace;
use ccache_layout::{assign_columns, LayoutOptions, WeightOptions};
use ccache_opt::{tune_observed, GeometrySearch, TuneOutcome, TuneRequest};
use ccache_sim::backend::BackendKind;
use ccache_sim::ColumnMask;
use ccache_telemetry::{Counter, Registry, Span};
use ccache_trace::{SymbolTable, Trace};
use ccache_workloads::gzipsim::run_gzip_job;
use ccache_workloads::multitask::Job;
use ccache_workloads::WorkloadRun;
use std::collections::BTreeMap;

/// Options applied at execution time (not part of the spec).
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Build workloads at the reduced quick scale.
    pub quick: bool,
    /// When set, attach a windowed series recorder to every replay and dynamic job
    /// (`ccache run --observe window=N`). `None` runs the exact unobserved code paths,
    /// so artefacts stay byte-identical to pre-observer output.
    pub observe: Option<ObserveOptions>,
    /// The telemetry registry the execution reports into (`exp.*` counters and spans,
    /// plus the engine and tuner metrics of every job). `None` uses the process-wide
    /// [`Registry::global`]. Telemetry never changes results or artefact bytes.
    pub telemetry: Option<Registry>,
}

impl ExecOptions {
    /// The workload scale these options select.
    pub fn scale(&self) -> Scale {
        Scale::from_quick(self.quick)
    }

    /// The registry this execution reports into (the explicit one, else the global).
    fn registry(&self) -> Registry {
        self.telemetry.clone().unwrap_or_else(Registry::global)
    }
}

/// Pre-resolved executor telemetry, shared read-only by the workers.
struct ExpTelemetry {
    /// The registry jobs bind their engines and tuners to.
    registry: Registry,
    /// One span per executed plan item (wall time under `timing`).
    job: Span,
    /// Engine-sharing groups built (one engine + snapshot each).
    groups: Counter,
    /// Replays served from a group's pristine snapshot instead of a fresh engine —
    /// every group job after the first.
    snapshot_reuses: Counter,
}

impl ExpTelemetry {
    fn bind(registry: Registry) -> Self {
        ExpTelemetry {
            job: registry.span("exp.job"),
            groups: registry.counter("exp.groups"),
            snapshot_reuses: registry.counter("exp.snapshot.reuses"),
            registry,
        }
    }
}

/// Observation settings for an execution (see [`ExecOptions::observe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserveOptions {
    /// Window size in references for the miss-rate/CPI time series.
    pub window: u64,
}

/// The layout-algorithm statistics of a heuristic mapping (the paper's cost `W`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutInfo {
    /// Total cost `W` of the assignment.
    pub cost: u64,
    /// Number of vertex merges the algorithm performed.
    pub merges: usize,
    /// Whether the assignment is provably optimal (no merges were forced).
    pub optimal: bool,
}

/// The result of one executed job.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// A plain replay (shared, heuristic, round-robin or fixed mapping).
    Replay {
        /// The job label (also the result's `name`).
        label: String,
        /// The replay statistics.
        result: RunResult,
        /// Layout statistics, when the mapping came from the layout algorithm.
        layout: Option<LayoutInfo>,
        /// The windowed time series, when the execution observed (`--observe`).
        series: Option<TimeSeries>,
    },
    /// One Figure 4 partition point.
    Partition {
        /// The job label.
        label: String,
        /// The workload's display name (e.g. `"dequant"`).
        workload: String,
        /// The partition-point result.
        point: PartitionPoint,
    },
    /// A dynamically remapped (per-phase) run.
    Dynamic {
        /// The job label.
        label: String,
        /// The per-phase results and totals.
        run: DynamicRunResult,
        /// The windowed time series with phase/remap events, when observing.
        series: Option<TimeSeries>,
    },
    /// A tuning run (search over column assignments at fixed geometry).
    Tuned {
        /// The job label.
        label: String,
        /// The full search outcome.
        outcome: TuneOutcome,
    },
    /// One multitask schedule replay.
    Multitask {
        /// The series label this point belongs to.
        series: String,
        /// The context-switch quantum.
        quantum: usize,
        /// The run's per-job metrics.
        run: MultitaskRun,
    },
}

impl JobOutcome {
    /// The outcome's label (series label for multitask points).
    pub fn label(&self) -> &str {
        match self {
            JobOutcome::Replay { label, .. }
            | JobOutcome::Partition { label, .. }
            | JobOutcome::Dynamic { label, .. }
            | JobOutcome::Tuned { label, .. } => label,
            JobOutcome::Multitask { series, .. } => series,
        }
    }
}

/// Workloads and schedules loaded once per execution, shared read-only by the workers.
struct Context {
    /// Corpus entries by name.
    corpus: BTreeMap<String, WorkloadRun>,
    /// Materialized trace files by (path, page, line) — symbols are inferred with the
    /// geometry's page/line granularity, exactly like `ccache tune --trace`.
    traces: BTreeMap<(String, u64, u64), WorkloadRun>,
    /// The MPEG phase recordings, when a dynamic job needs them.
    phases: Option<(Vec<(String, Trace)>, SymbolTable)>,
    /// Multitask job sets by canonical descriptor.
    schedules: BTreeMap<String, Vec<Job>>,
}

/// Cache key of a materialized trace file: the path plus the values symbol inference
/// actually depends on, so geometries differing only in a sub-4096 page size share one
/// loaded copy.
fn trace_key(path: &str, geometry: &GeometrySpec) -> (String, u64, u64) {
    (path.to_owned(), geometry.page.max(4096), geometry.line)
}

fn schedule_key(jobs: &[crate::spec::GzipJobSpec]) -> String {
    use ccache_json::ToJson;
    ccache_json::Json::arr(jobs.iter().map(|j| j.to_json())).compact()
}

/// Whether a replay job streams its trace from disk instead of materialising it:
/// shared-policy replays of binary trace files (the `ccache sweep` path).
fn is_streaming(job: &ReplayJob) -> Result<bool, ExpError> {
    match (&job.workload, &job.policy) {
        (WorkloadSel::Trace { path }, PolicySpec::Shared) => {
            Ok(ccache_trace::binfmt::is_binary_trace_file(path)?)
        }
        _ => Ok(false),
    }
}

impl Context {
    fn load(plan: &Plan, opts: &ExecOptions) -> Result<Self, ExpError> {
        let scale = opts.scale();
        let mut ctx = Context {
            corpus: BTreeMap::new(),
            traces: BTreeMap::new(),
            phases: None,
            schedules: BTreeMap::new(),
        };
        for unit in &plan.jobs {
            match unit {
                JobUnit::Replay(job) => {
                    if let PolicySpec::DynamicPhases = job.policy {
                        match &job.workload {
                            WorkloadSel::Corpus { name } if name == "mpeg-combined" => {
                                if ctx.phases.is_none() {
                                    ctx.phases =
                                        Some(ccache_workloads::mpeg::run_phases(&scale.mpeg()));
                                }
                            }
                            other => {
                                return Err(ExpError::BadSpec {
                                    reason: format!(
                                        "the 'dynamic' policy needs recorded phases; only \
                                         the 'mpeg-combined' corpus workload has them \
                                         (got '{}')",
                                        other.short()
                                    ),
                                })
                            }
                        }
                        continue;
                    }
                    if is_streaming(job)? {
                        continue;
                    }
                    match &job.workload {
                        WorkloadSel::Corpus { name } => {
                            if let std::collections::btree_map::Entry::Vacant(slot) =
                                ctx.corpus.entry(name.clone())
                            {
                                // The JSON path validates names at parse time, but specs
                                // can also be built programmatically — fail cleanly.
                                let run = ccache_workloads::corpus(name, opts.quick).ok_or_else(
                                    || ExpError::BadSpec {
                                        reason: format!(
                                            "unknown workload '{name}' (expected one of: {})",
                                            ccache_workloads::CORPUS_NAMES.join(", ")
                                        ),
                                    },
                                )?;
                                slot.insert(run);
                            }
                        }
                        WorkloadSel::Trace { path } => {
                            let key = trace_key(path, &job.geometry);
                            if let std::collections::btree_map::Entry::Vacant(slot) =
                                ctx.traces.entry(key)
                            {
                                let trace = load_trace(path)?;
                                let symbols = ccache_trace::infer::infer_symbols(
                                    &trace,
                                    job.geometry.page.max(4096),
                                    job.geometry.line,
                                );
                                slot.insert(WorkloadRun {
                                    name: path.clone(),
                                    trace,
                                    symbols,
                                    checksum: 0,
                                });
                            }
                        }
                    }
                }
                JobUnit::Multitask(job) => {
                    ctx.schedules
                        .entry(schedule_key(&job.jobs))
                        .or_insert_with(|| {
                            let base_cfg = scale.gzip();
                            job.jobs
                                .iter()
                                .map(|j| {
                                    let run =
                                        run_gzip_job(&base_cfg.with_seed(j.seed), j.base, &j.name);
                                    Job::new(run.name.clone(), run.trace)
                                })
                                .collect()
                        });
                }
            }
        }
        Ok(ctx)
    }

    fn workload(&self, job: &ReplayJob) -> Result<&WorkloadRun, ExpError> {
        match &job.workload {
            WorkloadSel::Corpus { name } => {
                self.corpus.get(name).ok_or_else(|| ExpError::BadSpec {
                    reason: format!("workload '{name}' was not preloaded"),
                })
            }
            WorkloadSel::Trace { path } => self
                .traces
                .get(&trace_key(path, &job.geometry))
                .ok_or_else(|| ExpError::BadSpec {
                    reason: format!("trace '{path}' was not preloaded"),
                }),
        }
    }
}

fn load_trace(path: &str) -> Result<Trace, ExpError> {
    if ccache_trace::binfmt::is_binary_trace_file(path)? {
        let mut reader = ccache_trace::binfmt::TraceReader::open(path)?;
        Ok(reader.read_to_trace()?)
    } else {
        Ok(ccache_trace::textfmt::read_trace(std::io::BufReader::new(
            std::fs::File::open(path)?,
        ))?)
    }
}

/// Builds the cache mapping of a policy over a loaded workload.
fn build_mapping(
    policy: &PolicySpec,
    workload: &WorkloadRun,
    geometry: &GeometrySpec,
) -> Result<(CacheMapping, Option<LayoutInfo>), ExpError> {
    let column_bytes = geometry.capacity / geometry.columns.max(1) as u64;
    let weight_opts = WeightOptions {
        column_bytes,
        split_large_variables: true,
        min_accesses: 1,
    };
    match policy {
        PolicySpec::Shared => Ok((CacheMapping::new(), None)),
        PolicySpec::Heuristic => {
            let (graph, units) =
                conflict_graph_from_trace(&workload.trace, &workload.symbols, &weight_opts);
            let layout =
                assign_columns(&graph, &LayoutOptions::new(geometry.columns, column_bytes))
                    .map_err(ccache_core::CoreError::from)?;
            let mapping = CacheMapping::from_assignment(&layout, &units, &workload.symbols, &[]);
            Ok((
                mapping,
                Some(LayoutInfo {
                    cost: layout.cost,
                    merges: layout.merges,
                    optimal: layout.optimal,
                }),
            ))
        }
        PolicySpec::RoundRobin => {
            let (_, units) =
                conflict_graph_from_trace(&workload.trace, &workload.symbols, &weight_opts);
            let mut mapping = CacheMapping::new();
            for (i, unit) in units.iter().enumerate() {
                if let Some(region) = workload.symbols.region(unit.var) {
                    mapping.map(
                        region.base + unit.offset,
                        unit.size,
                        RegionMapping::Columns {
                            mask: ColumnMask::single(i % geometry.columns.max(1)),
                        },
                    );
                }
            }
            Ok((mapping, None))
        }
        PolicySpec::Fixed { assignment } => {
            let mut mapping = CacheMapping::new();
            for (name, cols) in assignment {
                let region = workload
                    .symbols
                    .iter()
                    .find(|r| &r.name == name)
                    .ok_or_else(|| ExpError::BadSpec {
                        reason: format!(
                            "fixed assignment names unknown variable '{name}' \
                             (workload '{}')",
                            workload.name
                        ),
                    })?;
                mapping.map(
                    region.base,
                    region.size,
                    RegionMapping::Columns {
                        mask: ColumnMask::from_columns(cols.iter().copied()),
                    },
                );
            }
            Ok((mapping, None))
        }
        PolicySpec::Partition { .. }
        | PolicySpec::PartitionSweep
        | PolicySpec::DynamicPhases
        | PolicySpec::Tuned { .. } => Err(ExpError::BadSpec {
            reason: format!(
                "policy '{}' does not reduce to a single cache mapping",
                policy.short()
            ),
        }),
    }
}

/// A contiguous work unit handed to one worker: either an engine-sharing group of
/// mapping replays or a single self-contained job.
struct Group {
    /// Whether the jobs share one engine (reset/apply/replay from a snapshot).
    engine: bool,
    jobs: Vec<usize>,
}

fn group_jobs(plan: &Plan) -> Result<Vec<Group>, ExpError> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (idx, unit) in plan.jobs.iter().enumerate() {
        let key = match unit {
            JobUnit::Replay(job)
                if matches!(
                    job.policy,
                    PolicySpec::Shared
                        | PolicySpec::Heuristic
                        | PolicySpec::RoundRobin
                        | PolicySpec::Fixed { .. }
                ) && !is_streaming(job)? =>
            {
                use ccache_json::ToJson;
                format!(
                    "engine|{}|{}|{}",
                    job.workload.to_json().compact(),
                    job.backend,
                    job.geometry.to_json().compact()
                )
            }
            _ => format!("single|{idx}"),
        };
        match groups.get_mut(&key) {
            Some(list) => list.push(idx),
            None => {
                order.push(key.clone());
                groups.insert(key, vec![idx]);
            }
        }
    }
    Ok(order
        .into_iter()
        .map(|key| Group {
            engine: key.starts_with("engine|"),
            jobs: groups.remove(&key).expect("group recorded"),
        })
        .collect())
}

/// Replays a trace on a prepared engine, observed or not per the execution options.
fn engine_replay(
    engine: &mut ReplayEngine,
    label: &str,
    trace: &ccache_trace::Trace,
    opts: &ExecOptions,
) -> (RunResult, Option<TimeSeries>) {
    match opts.observe {
        Some(o) => {
            let mut recorder = SeriesRecorder::new(o.window);
            let result = engine.replay_observed(label, trace, o.window, &mut recorder);
            (result, Some(recorder.into_series()))
        }
        None => (engine.replay(label, trace), None),
    }
}

fn run_replay_group(
    indices: &[usize],
    plan: &Plan,
    ctx: &Context,
    opts: &ExecOptions,
    tel: &ExpTelemetry,
) -> Result<Vec<(usize, JobOutcome)>, ExpError> {
    let first = match &plan.jobs[indices[0]] {
        JobUnit::Replay(job) => job,
        JobUnit::Multitask(_) => unreachable!("engine groups hold replay jobs"),
    };
    let workload = ctx.workload(first)?;
    let config = first.geometry.system_config()?;
    let mut engine = ReplayEngine::new(first.backend, config)?;
    engine.set_telemetry(&tel.registry);
    engine.snapshot();
    tel.groups.incr();
    let mut out = Vec::with_capacity(indices.len());
    for (nth, &idx) in indices.iter().enumerate() {
        let job = match &plan.jobs[idx] {
            JobUnit::Replay(job) => job,
            JobUnit::Multitask(_) => unreachable!("engine groups hold replay jobs"),
        };
        let _timed = tel.job.start();
        if nth > 0 {
            tel.snapshot_reuses.incr();
        }
        engine.reset();
        let (mapping, layout) = build_mapping(&job.policy, workload, &job.geometry)?;
        engine.apply(&mapping)?;
        let (result, series) = engine_replay(&mut engine, &job.label, &workload.trace, opts);
        out.push((
            idx,
            JobOutcome::Replay {
                label: job.label.clone(),
                result,
                layout,
                series,
            },
        ));
    }
    Ok(out)
}

fn run_single(
    idx: usize,
    plan: &Plan,
    ctx: &Context,
    opts: &ExecOptions,
    tel: &ExpTelemetry,
) -> Result<Vec<(usize, JobOutcome)>, ExpError> {
    let _timed = tel.job.start();
    let outcome = match &plan.jobs[idx] {
        JobUnit::Replay(job) => match &job.policy {
            PolicySpec::Shared => {
                // A streaming replay: the trace file never has to fit in memory.
                let path = match &job.workload {
                    WorkloadSel::Trace { path } => path,
                    WorkloadSel::Corpus { .. } => {
                        unreachable!("corpus shared jobs run in engine groups")
                    }
                };
                let mut engine = ReplayEngine::new(job.backend, job.geometry.system_config()?)?;
                engine.set_telemetry(&tel.registry);
                let mut reader = ccache_trace::binfmt::TraceReader::open(path)?;
                let (result, series) = match opts.observe {
                    Some(o) => {
                        let mut recorder = SeriesRecorder::new(o.window);
                        let result = engine.replay_reader_observed(
                            &job.label,
                            &mut reader,
                            o.window,
                            &mut recorder,
                        )?;
                        (result, Some(recorder.into_series()))
                    }
                    None => (engine.replay_reader(&job.label, &mut reader)?, None),
                };
                JobOutcome::Replay {
                    label: job.label.clone(),
                    result,
                    layout: None,
                    series,
                }
            }
            PolicySpec::Partition { cache_columns } => {
                let workload = ctx.workload(job)?;
                let point = run_partition_point_on(
                    job.backend,
                    workload,
                    &job.geometry.partition_config(),
                    *cache_columns,
                )?;
                JobOutcome::Partition {
                    label: job.label.clone(),
                    workload: workload.name.clone(),
                    point,
                }
            }
            PolicySpec::DynamicPhases => {
                let (phases, symbols) = ctx.phases.as_ref().expect("phases preloaded");
                let config = job.geometry.partition_config();
                let (run, series) = match opts.observe {
                    Some(o) => {
                        let mut recorder = SeriesRecorder::new(o.window);
                        let run = run_dynamic_observed(
                            phases,
                            symbols,
                            &config,
                            o.window,
                            &mut recorder,
                        )?;
                        (run, Some(recorder.into_series()))
                    }
                    None => (run_dynamic(phases, symbols, &config)?, None),
                };
                JobOutcome::Dynamic {
                    label: job.label.clone(),
                    run,
                    series,
                }
            }
            PolicySpec::Tuned {
                strategy,
                budget,
                seed,
            } => {
                let workload = ctx.workload(job)?;
                let request = TuneRequest {
                    template: job.geometry.system_config()?,
                    geometry: GeometrySearch::fixed(),
                    strategy: *strategy,
                    budget: *budget,
                    seed: *seed,
                    serial: false,
                    forced: Vec::new(),
                    baseline: BackendKind::SetAssociative,
                };
                let outcome = tune_observed(
                    &workload.trace,
                    &workload.symbols,
                    &request,
                    &tel.registry,
                    None,
                )?;
                JobOutcome::Tuned {
                    label: job.label.clone(),
                    outcome,
                }
            }
            other => {
                return Err(ExpError::BadSpec {
                    reason: format!("policy '{}' escaped the planner", other.short()),
                })
            }
        },
        JobUnit::Multitask(job) => run_multitask_job(job, ctx)?,
    };
    Ok(vec![(idx, outcome)])
}

fn run_multitask_job(job: &MultitaskJob, ctx: &Context) -> Result<JobOutcome, ExpError> {
    let jobs = ctx
        .schedules
        .get(&schedule_key(&job.jobs))
        .expect("schedules preloaded");
    let run = run_multitasking(jobs, job.quantum, &job.config.config(), job.policy)?;
    Ok(JobOutcome::Multitask {
        series: job.series.clone(),
        quantum: job.quantum,
        run,
    })
}

/// Executes every job of a plan, returning outcomes **in plan order**.
///
/// # Errors
///
/// Fails on unloadable workloads/traces, invalid configurations or impossible policies;
/// the first error (in plan order) is reported.
pub fn execute(plan: &Plan, opts: &ExecOptions) -> Result<Vec<JobOutcome>, ExpError> {
    let ctx = Context::load(plan, opts)?;
    let groups = group_jobs(plan)?;
    let tel = ExpTelemetry::bind(opts.registry());
    let results = ccache_core::parallel::par_map(&groups, |group| {
        if group.engine {
            run_replay_group(&group.jobs, plan, &ctx, opts, &tel)
        } else {
            run_single(group.jobs[0], plan, &ctx, opts, &tel)
        }
    });
    let mut indexed: Vec<(usize, JobOutcome)> = Vec::with_capacity(plan.jobs.len());
    for group in results {
        indexed.extend(group?);
    }
    indexed.sort_by_key(|(idx, _)| *idx);
    debug_assert!(indexed.iter().enumerate().all(|(i, (idx, _))| i == *idx));
    Ok(indexed.into_iter().map(|(_, outcome)| outcome).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan;
    use crate::spec::{ExperimentSpec, LabelScheme, ReplayGrid};

    fn quick() -> ExecOptions {
        ExecOptions {
            quick: true,
            ..ExecOptions::default()
        }
    }

    fn fir_grid(policies: Vec<PolicySpec>) -> ExperimentSpec {
        ExperimentSpec {
            name: "t".into(),
            replay: vec![ReplayGrid {
                workloads: vec![WorkloadSel::Corpus { name: "fir".into() }],
                policies,
                label: LabelScheme::Policy,
                ..ReplayGrid::default()
            }],
            multitask: Vec::new(),
        }
    }

    #[test]
    fn engine_groups_match_fresh_engine_replays() {
        // The same policies through the grouped executor and through one-off engines
        // must produce identical statistics.
        let spec = fir_grid(vec![
            PolicySpec::Shared,
            PolicySpec::Heuristic,
            PolicySpec::RoundRobin,
        ]);
        let p = plan(&spec);
        let outcomes = execute(&p, &quick()).unwrap();
        assert_eq!(outcomes.len(), 3);

        let workload = ccache_workloads::corpus("fir", true).unwrap();
        let geometry = GeometrySpec::default();
        for (outcome, policy) in outcomes.iter().zip([
            PolicySpec::Shared,
            PolicySpec::Heuristic,
            PolicySpec::RoundRobin,
        ]) {
            let JobOutcome::Replay { result, layout, .. } = outcome else {
                panic!("expected replay outcomes");
            };
            let (mapping, _) = build_mapping(&policy, &workload, &geometry).unwrap();
            let fresh = ccache_core::runner::run_trace_on(
                BackendKind::ColumnCache,
                &policy.short(),
                geometry.system_config().unwrap(),
                &mapping,
                &workload.trace,
            )
            .unwrap();
            assert_eq!(result.total_cycles(), fresh.total_cycles());
            assert_eq!(result.misses, fresh.misses);
            assert_eq!(layout.is_some(), matches!(policy, PolicySpec::Heuristic));
        }
    }

    #[test]
    fn execution_is_deterministic() {
        let spec = fir_grid(vec![PolicySpec::Shared, PolicySpec::Heuristic]);
        let p = plan(&spec);
        let a = execute(&p, &quick()).unwrap();
        let b = execute(&p, &quick()).unwrap();
        for (x, y) in a.iter().zip(&b) {
            let (JobOutcome::Replay { result: rx, .. }, JobOutcome::Replay { result: ry, .. }) =
                (x, y)
            else {
                panic!("expected replay outcomes");
            };
            assert_eq!(rx, ry);
        }
    }

    #[test]
    fn fixed_assignments_with_unknown_variables_fail_cleanly() {
        let spec = fir_grid(vec![PolicySpec::Fixed {
            assignment: vec![("no_such_var".into(), vec![0])],
        }]);
        let p = plan(&spec);
        let err = execute(&p, &quick()).unwrap_err();
        assert!(err.to_string().contains("no_such_var"));
    }

    #[test]
    fn dynamic_requires_the_mpeg_application() {
        let spec = ExperimentSpec {
            name: "t".into(),
            replay: vec![ReplayGrid {
                workloads: vec![WorkloadSel::Corpus { name: "fir".into() }],
                policies: vec![PolicySpec::DynamicPhases],
                ..ReplayGrid::default()
            }],
            multitask: Vec::new(),
        };
        let err = execute(&plan(&spec), &quick()).unwrap_err();
        assert!(err.to_string().contains("mpeg-combined"));
    }
}
