//! Property tests of the planner's dedup guarantee (a satellite requirement of the
//! experiment-layer PR): expanding a spec and deduplicating by canonical key must
//! **never drop a distinct job and never reorder jobs** — the planned sequence is
//! exactly the expanded sequence with later duplicates removed, mirroring the
//! `ccache-opt` fitness-cache guarantee that the same configuration is evaluated once.

use ccache_exp::plan::{expand, plan};
use ccache_exp::spec::{
    ExperimentSpec, GeometrySpec, GzipJobSpec, LabelScheme, MtConfigSpec, MultitaskGrid,
    PolicySpec, ReplayGrid, WorkloadSel,
};
use ccache_sim::backend::BackendKind;
use proptest::prelude::*;

const WORKLOADS: [&str; 4] = ["fir", "triad", "mpeg-idct", "gzip"];

fn workload_pool() -> Vec<WorkloadSel> {
    WORKLOADS
        .iter()
        .map(|name| WorkloadSel::Corpus {
            name: (*name).to_owned(),
        })
        .chain([WorkloadSel::Trace {
            path: "traces/a.cct".to_owned(),
        }])
        .collect()
}

fn geometry_pool() -> Vec<GeometrySpec> {
    vec![
        GeometrySpec::default(),
        GeometrySpec {
            columns: 2,
            ..GeometrySpec::default()
        },
        GeometrySpec {
            capacity: 4096,
            columns: 8,
            ..GeometrySpec::default()
        },
    ]
}

fn policy_pool() -> Vec<PolicySpec> {
    vec![
        PolicySpec::Shared,
        PolicySpec::Heuristic,
        PolicySpec::RoundRobin,
        PolicySpec::PartitionSweep,
        PolicySpec::Partition { cache_columns: 1 },
        PolicySpec::DynamicPhases,
        PolicySpec::Fixed {
            assignment: vec![("x".to_owned(), vec![0, 1])],
        },
        PolicySpec::Tuned {
            strategy: Default::default(),
            budget: 8,
            seed: 1,
        },
    ]
}

/// Builds a spec from index vectors (duplicates very likely): every axis draws with
/// replacement from a small pool.
fn spec_from_indices(
    wl: Vec<usize>,
    be: Vec<usize>,
    ge: Vec<usize>,
    po: Vec<usize>,
    grids: usize,
    mt_quanta: Vec<usize>,
) -> ExperimentSpec {
    let wl_pool = workload_pool();
    let ge_pool = geometry_pool();
    let po_pool = policy_pool();
    let grid = ReplayGrid {
        workloads: wl
            .iter()
            .map(|&i| wl_pool[i % wl_pool.len()].clone())
            .collect(),
        backends: be
            .iter()
            .map(|&i| BackendKind::ALL[i % BackendKind::ALL.len()])
            .collect(),
        geometries: ge.iter().map(|&i| ge_pool[i % ge_pool.len()]).collect(),
        policies: po
            .iter()
            .map(|&i| po_pool[i % po_pool.len()].clone())
            .collect(),
        label: LabelScheme::Full,
    };
    let multitask = if mt_quanta.is_empty() {
        Vec::new()
    } else {
        vec![MultitaskGrid {
            jobs: vec![
                GzipJobSpec {
                    name: "a".into(),
                    seed: 1,
                    base: 0x100_0000,
                },
                GzipJobSpec {
                    name: "b".into(),
                    seed: 2,
                    base: 0x200_0000,
                },
            ],
            configs: vec![MtConfigSpec {
                label: "m".into(),
                capacity: 8 * 1024,
                columns: 8,
                line: 32,
                page: 1024,
                critical_columns: 4,
                latency: Default::default(),
            }],
            policies: vec![
                ccache_core::multitask::SharingPolicy::Shared,
                ccache_core::multitask::SharingPolicy::Mapped,
            ],
            quanta: mt_quanta.iter().map(|&q| 1 + (q % 64)).collect(),
        }]
    };
    ExperimentSpec {
        name: "prop".into(),
        // Repeating the same grid `grids` times multiplies duplicates across grids.
        replay: std::iter::repeat_n(grid, grids).collect(),
        multitask,
    }
}

/// The reference dedup: first occurrence wins, order preserved.
fn naive_dedup(keys: &[String]) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    keys.iter()
        .filter(|k| seen.insert((*k).clone()))
        .cloned()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn planner_dedup_never_drops_or_reorders(
        wl in prop::collection::vec(0usize..16, 1..5),
        be in prop::collection::vec(0usize..16, 1..4),
        ge in prop::collection::vec(0usize..16, 1..4),
        po in prop::collection::vec(0usize..16, 1..5),
        grids in 1usize..=3,
        quanta in prop::collection::vec(0usize..256, 0..5),
    ) {
        let spec = spec_from_indices(wl, be, ge, po, grids, quanta);
        let expanded = expand(&spec);
        let expanded_keys: Vec<String> = expanded.iter().map(|j| j.key()).collect();
        let planned = plan(&spec);
        let planned_keys: Vec<String> = planned.jobs.iter().map(|j| j.key()).collect();

        // Accounting: the plan reports the true expansion size.
        prop_assert_eq!(planned.expanded, expanded.len());

        // No duplicates survive planning.
        let unique: std::collections::HashSet<&String> = planned_keys.iter().collect();
        prop_assert_eq!(unique.len(), planned_keys.len());

        // Nothing is dropped and nothing is reordered: the plan is exactly the naive
        // first-occurrence dedup of the expansion.
        prop_assert_eq!(&planned_keys, &naive_dedup(&expanded_keys));

        // Every planned job is literally one of the expanded jobs (same payload, not
        // just the same key).
        for job in &planned.jobs {
            prop_assert!(expanded.contains(job));
        }
    }

    #[test]
    fn planning_is_idempotent_and_duplication_invariant(
        wl in prop::collection::vec(0usize..16, 1..4),
        po in prop::collection::vec(0usize..16, 1..4),
        grids in 1usize..=3,
    ) {
        let once = spec_from_indices(wl.clone(), vec![0], vec![0], po.clone(), 1, vec![]);
        let many = spec_from_indices(wl, vec![0], vec![0], po, grids, vec![]);
        let plan_once = plan(&once);
        let plan_many = plan(&many);
        // Repeating the same grid any number of times cannot change the planned work.
        prop_assert_eq!(&plan_once.jobs, &plan_many.jobs);
        // Planning is deterministic.
        prop_assert_eq!(&plan(&once).jobs, &plan_once.jobs);
    }
}
