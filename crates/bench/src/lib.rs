//! Shared helpers for the figure-reproduction binaries and Criterion benches.
//!
//! The binaries (`fig4`, `fig5`, `ablation`) are thin shims over the unified `ccache`
//! CLI in `ccache-cli`; the experiment scales and figure configurations they and the
//! Criterion benches share live in `ccache_exp::scale` (re-exported through
//! [`ccache_cli::scale`] and again here) so bench code keeps one import path. The
//! Criterion benches measure the wall-clock cost of the same pipelines so regressions
//! in the simulator or layout algorithms are visible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ccache_cli::scale::{figure4_config, figure5_configs, figure5_jobs, Scale};
