//! Regenerates Figure 4: cycle count of the MPEG routines versus the scratchpad/cache
//! partition of a 2 KB, 4-column on-chip memory, plus the combined-application comparison
//! against a dynamically remapped column cache.
//!
//! Usage:
//!   cargo run --release -p ccache-bench --bin fig4                 # all panels
//!   cargo run --release -p ccache-bench --bin fig4 -- --routine dequant
//!   cargo run --release -p ccache-bench --bin fig4 -- --quick      # reduced working sets
//!   cargo run --release -p ccache-bench --bin fig4 -- --json out.json

use ccache_bench::{figure4_config, Scale};
use ccache_core::dynamic::{run_dynamic, Figure4dResult};
use ccache_core::partition::{partition_sweep, PartitionSweep};
use ccache_core::report::{figure4d_table, partition_table, SweepReport};
use ccache_workloads::mpeg::{run_combined, run_dequant, run_idct, run_phases, run_plus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(args.clone());
    let routine = args
        .iter()
        .position(|a| a == "--routine")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "all".to_owned());
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mpeg = scale.mpeg();
    let config = figure4_config();
    println!(
        "Figure 4 — on-chip memory: {} bytes, {} columns, {}-byte lines, {:?} scale\n",
        config.capacity_bytes, config.columns, config.line_size, scale
    );

    let mut sweeps: Vec<PartitionSweep> = Vec::new();
    let mut fig4d: Option<Figure4dResult> = None;

    let want = |name: &str| routine == "all" || routine == name;

    if want("dequant") {
        sweeps.push(partition_sweep(&run_dequant(&mpeg), &config)?);
    }
    if want("plus") {
        sweeps.push(partition_sweep(&run_plus(&mpeg), &config)?);
    }
    if want("idct") {
        sweeps.push(partition_sweep(&run_idct(&mpeg), &config)?);
    }
    for sweep in &sweeps {
        println!("{}", partition_table(sweep));
        println!(
            "-> optimum for {}: {} cache columns / {} scratchpad columns\n",
            sweep.name,
            sweep.best().cache_columns,
            sweep.best().scratchpad_columns
        );
    }

    if want("combined") {
        let combined = run_combined(&mpeg);
        let static_sweep = partition_sweep(&combined, &config)?;
        println!("{}", partition_table(&static_sweep));
        let (phases, symbols) = run_phases(&mpeg);
        let dynamic = run_dynamic(&phases, &symbols, &config)?;
        let result = Figure4dResult {
            static_cycles: static_sweep
                .points
                .iter()
                .map(|p| (p.cache_columns, p.cycles))
                .collect(),
            column_cache_cycles: dynamic.cycles,
            column_cache_control_cycles: dynamic.control_cycles,
        };
        println!("{}", figure4d_table(&result));
        sweeps.push(static_sweep);
        fig4d = Some(result);
    }

    if let Some(path) = json_path {
        let payload = SweepReport {
            figure: "4".to_owned(),
            config,
            sweeps,
            figure4d: fig4d,
        };
        std::fs::write(&path, payload.to_json_string())?;
        println!("wrote {path}");
    }
    Ok(())
}
