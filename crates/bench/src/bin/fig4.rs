//! Thin shim over `ccache fig4`: regenerates Figure 4 (cycle count of the MPEG routines
//! versus the scratchpad/cache partition, plus the dynamic-remap comparison).
//!
//! `cargo run --release -p ccache-bench --bin fig4 -- --quick --json out.json` is
//! equivalent to `cargo run --release -p ccache-cli -- fig4 --quick --json out.json`
//! and produces byte-identical artefacts; see `ccache fig4 --help` for every option.

fn main() -> std::process::ExitCode {
    ccache_cli::main_with(Some("fig4"))
}
