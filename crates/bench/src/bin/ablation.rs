//! Thin shim over `ccache ablation`: replacement-policy, column-count, layout-quality
//! and tint-remap-cost sensitivity studies.
//!
//! `cargo run --release -p ccache-bench --bin ablation -- --quick` is equivalent to
//! `cargo run --release -p ccache-cli -- ablation --quick`.

fn main() -> std::process::ExitCode {
    ccache_cli::main_with(Some("ablation"))
}
