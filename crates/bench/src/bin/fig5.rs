//! Regenerates Figure 5: CPI of gzip job A versus the context-switch quantum under
//! round-robin multitasking with three gzip jobs, for a standard cache and a mapped column
//! cache, at 16 KiB and 128 KiB.
//!
//! Usage:
//!   cargo run --release -p ccache-bench --bin fig5
//!   cargo run --release -p ccache-bench --bin fig5 -- --quick
//!   cargo run --release -p ccache-bench --bin fig5 -- --json out.json

use ccache_bench::{figure5_configs, figure5_jobs, Scale};
use ccache_core::multitask::{quantum_sweep, SharingPolicy};
use ccache_core::report::{quantum_table, to_json};
use ccache_json::{Json, ToJson};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(args.clone());
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let jobs = figure5_jobs(scale);
    println!("Figure 5 — three gzip jobs, round-robin, {:?} scale", scale);
    for j in &jobs {
        println!("  {}: {} references", j.name, j.trace.len());
    }
    println!();

    let quanta = scale.quanta();
    let mut series = Vec::new();
    for (label, config) in figure5_configs() {
        series.push(quantum_sweep(
            &jobs,
            &quanta,
            &config,
            SharingPolicy::Shared,
            label,
        )?);
        series.push(quantum_sweep(
            &jobs,
            &quanta,
            &config,
            SharingPolicy::Mapped,
            &format!("{label} mapped"),
        )?);
    }
    println!("{}", quantum_table(&series));

    if let Some(path) = json_path {
        let payload = Json::obj([("figure", "5".to_json()), ("series", series.to_json())]);
        std::fs::write(&path, to_json(&payload))?;
        println!("wrote {path}");
    }
    Ok(())
}
