//! Thin shim over `ccache fig5`: regenerates Figure 5 (CPI of gzip job A versus the
//! context-switch quantum, shared versus mapped, at 16 KiB and 128 KiB).
//!
//! `cargo run --release -p ccache-bench --bin fig5 -- --quick --json out.json` is
//! equivalent to `cargo run --release -p ccache-cli -- fig5 --quick --json out.json`
//! and produces byte-identical artefacts; see `ccache fig5 --help` for every option.

fn main() -> std::process::ExitCode {
    ccache_cli::main_with(Some("fig5"))
}
