//! Criterion benchmarks of the paper's figure-reproduction pipelines.
//!
//! One benchmark per panel: Figures 4(a)–(d) and Figure 5. These measure the wall-clock
//! cost of the full pipeline (workload generation → layout → simulation) at a reduced
//! scale, so regressions in any layer show up; the printed rows of the actual figures come
//! from the `fig4` / `fig5` binaries.

use ccache_bench::{figure4_config, figure5_configs, figure5_jobs, Scale};
use ccache_core::dynamic::run_dynamic;
use ccache_core::multitask::{run_multitasking, SharingPolicy};
use ccache_core::partition::partition_sweep;
use ccache_workloads::mpeg::{run_combined, run_dequant, run_idct, run_phases, run_plus};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn fig4_dequant(c: &mut Criterion) {
    let mpeg = Scale::Quick.mpeg();
    let cfg = figure4_config();
    let run = run_dequant(&mpeg);
    c.bench_function("fig4a_dequant_partition_sweep", |b| {
        b.iter(|| partition_sweep(black_box(&run), black_box(&cfg)).expect("sweep succeeds"))
    });
}

fn fig4_plus(c: &mut Criterion) {
    let mpeg = Scale::Quick.mpeg();
    let cfg = figure4_config();
    let run = run_plus(&mpeg);
    c.bench_function("fig4b_plus_partition_sweep", |b| {
        b.iter(|| partition_sweep(black_box(&run), black_box(&cfg)).expect("sweep succeeds"))
    });
}

fn fig4_idct(c: &mut Criterion) {
    let mpeg = Scale::Quick.mpeg();
    let cfg = figure4_config();
    let run = run_idct(&mpeg);
    c.bench_function("fig4c_idct_partition_sweep", |b| {
        b.iter(|| partition_sweep(black_box(&run), black_box(&cfg)).expect("sweep succeeds"))
    });
}

fn fig4_combined(c: &mut Criterion) {
    let mpeg = Scale::Quick.mpeg();
    let cfg = figure4_config();
    let combined = run_combined(&mpeg);
    let (phases, symbols) = run_phases(&mpeg);
    let mut group = c.benchmark_group("fig4d_combined");
    group.bench_function("static_partition_sweep", |b| {
        b.iter(|| partition_sweep(black_box(&combined), black_box(&cfg)).expect("sweep succeeds"))
    });
    group.bench_function("dynamic_column_cache", |b| {
        b.iter(|| {
            run_dynamic(black_box(&phases), black_box(&symbols), black_box(&cfg))
                .expect("dynamic run succeeds")
        })
    });
    group.finish();
}

fn fig5_multitasking(c: &mut Criterion) {
    let jobs = figure5_jobs(Scale::Quick);
    let mut group = c.benchmark_group("fig5_multitasking");
    group.sample_size(10);
    for (label, cfg) in figure5_configs() {
        group.bench_function(format!("{label}_shared_q256"), |b| {
            b.iter_batched(
                || jobs.clone(),
                |jobs| {
                    run_multitasking(&jobs, 256, black_box(&cfg), SharingPolicy::Shared)
                        .expect("run succeeds")
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("{label}_mapped_q256"), |b| {
            b.iter_batched(
                || jobs.clone(),
                |jobs| {
                    run_multitasking(&jobs, 256, black_box(&cfg), SharingPolicy::Mapped)
                        .expect("run succeeds")
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(20);
    targets = fig4_dequant, fig4_plus, fig4_idct, fig4_combined, fig5_multitasking
}
criterion_main!(figures);
