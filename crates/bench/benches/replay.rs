//! Benchmarks of the replay engine against the per-reference replay path.
//!
//! * `replay_paths/*` — the same Figure-4 traces through `run_on` (one `access` call per
//!   reference) and through `ReplayEngine::replay` (batched, last-page translation
//!   cache). Both produce bit-identical `RunResult`s; the difference is pure overhead.
//! * `sweep_paths/*` — the full dequant partition sweep computed serially and with the
//!   thread-parallel `par_map` fan-out.
//! * `snapshot_reset` — the cost of restoring a programmed system between sweep points,
//!   versus rebuilding and re-applying the mapping from scratch.

use ccache_bench::{figure4_config, Scale};
use ccache_core::engine::ReplayEngine;
use ccache_core::partition::{partition_sweep, partition_sweep_serial};
use ccache_core::runner::{run_on, CacheMapping, RegionMapping};
use ccache_sim::backend::{build_backend, BackendKind};
use ccache_sim::{ColumnMask, SystemConfig};
use ccache_workloads::mpeg::{run_combined, run_dequant};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn engine_config() -> SystemConfig {
    SystemConfig {
        page_size: 128,
        ..SystemConfig::default()
    }
}

fn mapping() -> CacheMapping {
    let mut m = CacheMapping::new();
    m.map(
        0x0,
        512,
        RegionMapping::Exclusive {
            mask: ColumnMask::single(0),
            preload: true,
        },
    );
    m
}

fn replay_paths(c: &mut Criterion) {
    let mpeg = Scale::Quick.mpeg();
    for (label, workload) in [
        ("dequant", run_dequant(&mpeg)),
        ("combined", run_combined(&mpeg)),
    ] {
        let mut group = c.benchmark_group(format!("replay_paths/{label}"));
        group.throughput(Throughput::Elements(workload.trace.len() as u64));
        group.bench_function("per_reference", |b| {
            let mut backend = build_backend(BackendKind::ColumnCache, engine_config()).unwrap();
            mapping().apply(backend.as_mut()).unwrap();
            b.iter(|| run_on("bench", backend.as_mut(), black_box(&workload.trace)).unwrap())
        });
        group.bench_function("batched_engine", |b| {
            let mut engine = ReplayEngine::new(BackendKind::ColumnCache, engine_config()).unwrap();
            engine.apply(&mapping()).unwrap();
            b.iter(|| engine.replay("bench", black_box(&workload.trace)))
        });
        group.finish();
    }
}

fn sweep_paths(c: &mut Criterion) {
    let mpeg = Scale::Quick.mpeg();
    let workload = run_dequant(&mpeg);
    let cfg = figure4_config();
    let mut group = c.benchmark_group("sweep_paths/dequant");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| partition_sweep_serial(black_box(&workload), black_box(&cfg)).unwrap())
    });
    group.bench_function("parallel", |b| {
        b.iter(|| partition_sweep(black_box(&workload), black_box(&cfg)).unwrap())
    });
    group.finish();
}

fn snapshot_reset(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_reset");
    group.bench_function("engine_reset", |b| {
        let mut engine = ReplayEngine::new(BackendKind::ColumnCache, engine_config()).unwrap();
        engine.apply(&mapping()).unwrap();
        engine.snapshot();
        b.iter(|| {
            engine.reset();
            black_box(engine.backend().control_cycles())
        })
    });
    group.bench_function("rebuild_and_remap", |b| {
        let m = mapping();
        b.iter(|| {
            let mut backend = build_backend(BackendKind::ColumnCache, engine_config()).unwrap();
            m.apply(backend.as_mut()).unwrap();
            black_box(backend.control_cycles())
        })
    });
    group.finish();
}

criterion_group! {
    name = replay;
    config = Criterion::default().sample_size(20);
    targets = replay_paths, sweep_paths, snapshot_reset
}
criterion_main!(replay);
