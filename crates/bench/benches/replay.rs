//! Placeholder; the real replay benchmark is added with the ReplayEngine.
fn main() {}
