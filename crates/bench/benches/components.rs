//! Criterion micro-benchmarks of the individual substrates: the cache access path, the
//! conflict-graph construction and coloring, the gzip match finder and the multitasking
//! scheduler. These bound the cost of the building blocks the figure pipelines compose.

use ccache_layout::weights::conflict_graph_from_trace;
use ccache_layout::{assign_columns, LayoutOptions, WeightOptions};
use ccache_sim::{ColumnMask, MemorySystem, Tint};
use ccache_trace::synth::{pointer_chase, sequential_scan};
use ccache_workloads::gzipsim::{compress, generate_input, GzipConfig};
use ccache_workloads::mpeg::{run_idct, MpegConfig};
use ccache_workloads::multitask::{round_robin, Job};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn cache_access_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_access_path");
    let hits = sequential_scan(0x0, 1024, 32, 4, 64, None);
    group.throughput(Throughput::Elements(hits.len() as u64));
    group.bench_function("mostly_hits", |b| {
        let mut sys = MemorySystem::with_default_cache();
        b.iter(|| {
            let mut cycles = 0u64;
            for e in &hits {
                cycles += sys.access(black_box(e.addr), e.is_write());
            }
            cycles
        })
    });
    let misses = pointer_chase(0x0, 256 * 1024, 32, 16_384, None);
    group.throughput(Throughput::Elements(misses.len() as u64));
    group.bench_function("mostly_misses", |b| {
        let mut sys = MemorySystem::with_default_cache();
        b.iter(|| {
            let mut cycles = 0u64;
            for e in &misses {
                cycles += sys.access(black_box(e.addr), e.is_write());
            }
            cycles
        })
    });
    group.bench_function("partitioned_access", |b| {
        let mut sys = MemorySystem::with_default_cache();
        sys.define_tint(Tint(1), ColumnMask::single(0)).unwrap();
        sys.tint_range(0..64 * 1024, Tint(1));
        b.iter(|| {
            let mut cycles = 0u64;
            for e in &hits {
                cycles += sys.access(black_box(e.addr), e.is_write());
            }
            cycles
        })
    });
    group.finish();
}

fn layout_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_pipeline");
    let idct = run_idct(&MpegConfig::small());
    let opts = WeightOptions::default();
    group.bench_function("conflict_graph_from_trace", |b| {
        b.iter(|| conflict_graph_from_trace(black_box(&idct.trace), &idct.symbols, &opts))
    });
    let (graph, _units) = conflict_graph_from_trace(&idct.trace, &idct.symbols, &opts);
    group.bench_function("assign_columns_4", |b| {
        b.iter(|| assign_columns(black_box(&graph), &LayoutOptions::new(4, 512)).unwrap())
    });
    group.bench_function("assign_columns_2", |b| {
        b.iter(|| assign_columns(black_box(&graph), &LayoutOptions::new(2, 512)).unwrap())
    });
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    let input = generate_input(16 * 1024, 7);
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("gzip_compress_16k", |b| {
        b.iter(|| compress(black_box(&input), &GzipConfig::default()))
    });
    group.bench_function("idct_instrumented_small", |b| {
        b.iter(|| run_idct(black_box(&MpegConfig::small())))
    });
    group.finish();
}

fn scheduler(c: &mut Criterion) {
    let jobs: Vec<Job> = (0..3)
        .map(|j| {
            Job::new(
                format!("job{j}"),
                sequential_scan(j as u64 * 0x10_0000, 64 * 1024, 32, 4, 1, None),
            )
        })
        .collect();
    let mut group = c.benchmark_group("multitask_scheduler");
    let total: usize = jobs.iter().map(|j| j.trace.len()).sum();
    group.throughput(Throughput::Elements(total as u64));
    for quantum in [16usize, 1024, 65_536] {
        group.bench_function(format!("round_robin_q{quantum}"), |b| {
            b.iter(|| round_robin(black_box(&jobs), quantum))
        });
    }
    group.finish();
}

criterion_group! {
    name = components;
    config = Criterion::default().sample_size(20);
    targets = cache_access_path, layout_pipeline, workload_generation, scheduler
}
criterion_main!(components);
