//! Application-specific memory management with a software-controlled (column) cache.
//!
//! This crate is the top of the reproduction stack: it combines the cache/TLB/tint
//! simulator (`ccache-sim`), the data-layout algorithms (`ccache-layout`) and the
//! instrumented workloads (`ccache-workloads`) into the experiments the paper reports.
//!
//! * [`runner`] — program a [`ccache_sim::MemorySystem`] from a column assignment
//!   ([`runner::CacheMapping`]) and replay traces ([`runner::run_trace`]).
//! * [`placement`] — relocate program variables (page alignment, scratchpad packing)
//!   before an experiment.
//! * [`fitness`] — the replay engine packaged as a fitness function for configuration
//!   search ([`fitness::ReplayFitness`]): pooled engines, a shared trace arena, warm-up
//!   checkpoint reuse, and order-preserving parallel batches.
//! * [`partition`] — the Figure 4 scratchpad/cache partition sweep.
//! * [`dynamic`] — the dynamically remapped column-cache run of Figure 4(d).
//! * [`multitask`] — the Figure 5 multitasking CPI-vs-quantum experiment.
//! * [`report`] — the tables printed by the benchmark harness.
//!
//! # Example: isolate a streaming variable from a hot table
//!
//! ```
//! use ccache_core::runner::{run_trace, CacheMapping, RegionMapping};
//! use ccache_sim::{ColumnMask, SystemConfig};
//! use ccache_trace::synth::sequential_scan;
//! use ccache_trace::Trace;
//!
//! // A hot 512-byte table walked twice, with a 32 KiB stream in between.
//! let hot = sequential_scan(0x0, 512, 32, 4, 1, None);
//! let stream = sequential_scan(0x10_0000, 32 * 1024, 32, 4, 1, None);
//! let trace = Trace::concat([&hot, &stream, &hot]);
//!
//! // Confine the stream to one column so it cannot evict the table.
//! let mut mapping = CacheMapping::new();
//! mapping.map(0x10_0000, 32 * 1024, RegionMapping::Columns { mask: ColumnMask::single(3) });
//!
//! let cfg = SystemConfig { page_size: 256, ..SystemConfig::default() };
//! let partitioned = run_trace("partitioned", cfg, &mapping, &trace)?;
//! let shared = run_trace("shared", cfg, &CacheMapping::new(), &trace)?;
//! assert!(partitioned.total_cycles() < shared.total_cycles());
//! # Ok::<(), ccache_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checkpoint;
pub mod dynamic;
pub mod engine;
pub mod error;
pub mod fitness;
pub mod multitask;
pub mod observe;
pub mod parallel;
pub mod partition;
pub mod placement;
pub mod report;
pub mod runner;

pub use checkpoint::ReplayCheckpoints;
pub use dynamic::{run_dynamic, run_dynamic_observed, DynamicRunResult, Figure4dResult};
pub use engine::ReplayEngine;
pub use error::CoreError;
pub use fitness::{Candidate, FitnessMode, ReplayFitness};
pub use multitask::{
    quantum_sweep, run_multitasking, JobMetrics, MultitaskConfig, MultitaskRun, QuantumSeries,
    SharingPolicy,
};
pub use observe::{
    NoopObserver, ReplayEvent, ReplayObserver, SeriesRecorder, TimeSeries, WindowSample,
};
pub use partition::{
    partition_sweep, partition_sweep_serial, PartitionConfig, PartitionPoint, PartitionSweep,
};
pub use placement::{pack_scratchpad_first, page_aligned, relocate, PlacementPlan};
pub use report::SweepReport;
pub use runner::{run_on, run_trace, run_trace_on, CacheMapping, RegionMapping, RunResult};

/// Convenient glob-import of the types most programs need.
pub mod prelude {
    pub use crate::checkpoint::ReplayCheckpoints;
    pub use crate::dynamic::{run_dynamic, Figure4dResult};
    pub use crate::engine::ReplayEngine;
    pub use crate::error::CoreError;
    pub use crate::fitness::{Candidate, FitnessMode, ReplayFitness};
    pub use crate::multitask::{quantum_sweep, run_multitasking, MultitaskConfig, SharingPolicy};
    pub use crate::partition::{partition_sweep, PartitionConfig, PartitionSweep};
    pub use crate::report::SweepReport;
    pub use crate::runner::{run_trace, run_trace_on, CacheMapping, RegionMapping, RunResult};
}
