//! Error type for the column-cache management system.

use ccache_layout::LayoutError;
use ccache_sim::SimError;
use std::fmt;

/// Errors produced while configuring or running column-cache experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An error from the cache/memory simulator.
    Sim(SimError),
    /// An error from the data-layout algorithms.
    Layout(LayoutError),
    /// The experiment configuration is inconsistent.
    BadExperiment {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// The requested partition does not fit the cache geometry.
    BadPartition {
        /// Number of columns requested as scratchpad.
        scratchpad_columns: usize,
        /// Number of columns in the cache.
        columns: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulator error: {e}"),
            CoreError::Layout(e) => write!(f, "layout error: {e}"),
            CoreError::BadExperiment { reason } => write!(f, "invalid experiment: {reason}"),
            CoreError::BadPartition {
                scratchpad_columns,
                columns,
            } => write!(
                f,
                "cannot reserve {scratchpad_columns} scratchpad columns in a {columns}-column cache"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<LayoutError> for CoreError {
    fn from(e: LayoutError) -> Self {
        CoreError::Layout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_component_errors_with_source() {
        use std::error::Error;
        let e: CoreError = SimError::EmptyMask.into();
        assert!(e.to_string().contains("simulator"));
        assert!(e.source().is_some());
        let e: CoreError = LayoutError::NoColumns.into();
        assert!(e.to_string().contains("layout"));
        let e = CoreError::BadPartition {
            scratchpad_columns: 5,
            columns: 4,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.source().is_none());
    }

    #[test]
    fn is_send_sync() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<CoreError>();
    }
}
