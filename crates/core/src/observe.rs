//! Streaming replay observation: windowed time series and phase/remap events.
//!
//! The paper's programming model is software *watching* and *reprogramming* the cache,
//! but until this module a replay's statistics were readable only after it finished.
//! [`ReplayObserver`] is the streaming counterpart: hook one into
//! [`ReplayEngine::replay_observed`](crate::ReplayEngine::replay_observed) (or the
//! experiment executor's `--observe` path) and it receives
//!
//! * one [`WindowSample`] every `window` references — the miss-rate/CPI time series of
//!   the run, computed from statistics deltas at window boundaries, and
//! * [`ReplayEvent`]s at phase boundaries and dynamic remaps
//!   ([`run_dynamic_observed`](crate::dynamic::run_dynamic_observed)).
//!
//! Observation is free when it is off: the unobserved replay paths
//! ([`ReplayEngine::replay`](crate::ReplayEngine::replay) and friends) do not take an
//! observer at all — they are the exact pre-observer code — and the observed paths
//! produce byte-identical [`RunResult`](crate::runner::RunResult)s because window
//! boundaries only change *batch* boundaries, which never change statistics
//! (property-tested in `tests/observer_parity.rs`).

use ccache_sim::backend::MemoryBackend;
use ccache_sim::{CycleReport, MemoryStats};

/// One point of the windowed time series: statistics deltas over `references`
/// consecutive references starting at reference index `start`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Window number, starting at 0.
    pub index: u64,
    /// Reference index of the first reference in the window.
    pub start: u64,
    /// References replayed in this window (equal to the window size except possibly for
    /// the final partial window).
    pub references: u64,
    /// Cache hits in this window.
    pub hits: u64,
    /// Cache misses (including bypasses) in this window.
    pub misses: u64,
    /// Memory cycles spent in this window.
    pub memory_cycles: u64,
    /// Clocks per instruction over this window, under the run's compute model.
    pub cpi: f64,
}

impl WindowSample {
    /// Cache miss rate over this window.
    pub fn miss_rate(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.misses as f64 / self.references as f64
        }
    }
}

/// A discrete event observed during a replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayEvent {
    /// A named phase (procedure) is about to replay.
    PhaseStart {
        /// The phase name.
        name: String,
        /// References replayed before this phase (across the whole observed run).
        at_ref: u64,
    },
    /// A cache mapping was (re)programmed into a warm backend.
    Remap {
        /// A label for the remap (the phase it prepares).
        label: String,
        /// References replayed when the remap happened.
        at_ref: u64,
        /// Number of region mappings programmed.
        regions: usize,
    },
    /// A named phase finished replaying.
    PhaseEnd {
        /// The phase name.
        name: String,
        /// References replayed up to and including this phase.
        at_ref: u64,
        /// Total cycles of the phase (compute model included, control excluded).
        cycles: u64,
    },
}

impl ReplayEvent {
    /// The reference index the event is anchored to.
    pub fn at_ref(&self) -> u64 {
        match self {
            ReplayEvent::PhaseStart { at_ref, .. }
            | ReplayEvent::Remap { at_ref, .. }
            | ReplayEvent::PhaseEnd { at_ref, .. } => *at_ref,
        }
    }
}

/// A streaming observer of replay progress.
///
/// Both hooks default to no-ops, so an observer may care about windows, events or both.
/// Implementations must be cheap: `on_window` fires every `window` references on the
/// replay hot path.
pub trait ReplayObserver: Send {
    /// Called at every window boundary (and once for a final partial window).
    fn on_window(&mut self, _sample: &WindowSample) {}

    /// Called at phase boundaries and remaps.
    fn on_event(&mut self, _event: &ReplayEvent) {}
}

/// The do-nothing observer: both hooks are empty bodies, so attaching it costs two
/// inlined no-op calls per window — and the unobserved replay paths do not even do
/// that, as they never take an observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl ReplayObserver for NoopObserver {}

/// The windowed series an observed run produces, ready for serialization.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    /// The window size in references.
    pub window: u64,
    /// The windowed samples, in replay order. `start` indices are global across a
    /// multi-phase run.
    pub samples: Vec<WindowSample>,
    /// Phase and remap events, in replay order.
    pub events: Vec<ReplayEvent>,
}

impl TimeSeries {
    /// Total references across all samples.
    pub fn total_references(&self) -> u64 {
        self.samples.iter().map(|s| s.references).sum()
    }

    /// Total misses across all samples.
    pub fn total_misses(&self) -> u64 {
        self.samples.iter().map(|s| s.misses).sum()
    }

    /// Total hits across all samples.
    pub fn total_hits(&self) -> u64 {
        self.samples.iter().map(|s| s.hits).sum()
    }

    /// Total memory cycles across all samples.
    pub fn total_memory_cycles(&self) -> u64 {
        self.samples.iter().map(|s| s.memory_cycles).sum()
    }
}

/// A [`ReplayObserver`] that records everything into a [`TimeSeries`].
///
/// Window `start`/`index` values are rebased to be global across consecutive observed
/// replays (each engine replay numbers its windows from zero): [`ReplayEvent::PhaseEnd`]
/// advances the base, which is exactly what
/// [`run_dynamic_observed`](crate::dynamic::run_dynamic_observed) emits between phases.
#[derive(Debug, Clone, Default)]
pub struct SeriesRecorder {
    series: TimeSeries,
    /// References replayed by phases that already ended (the rebase offset).
    base: u64,
}

impl SeriesRecorder {
    /// Creates a recorder for the given window size.
    pub fn new(window: u64) -> Self {
        SeriesRecorder {
            series: TimeSeries {
                window: window.max(1),
                ..TimeSeries::default()
            },
            base: 0,
        }
    }

    /// The recorded series so far.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Consumes the recorder into its series.
    pub fn into_series(self) -> TimeSeries {
        self.series
    }
}

impl ReplayObserver for SeriesRecorder {
    fn on_window(&mut self, sample: &WindowSample) {
        let mut sample = sample.clone();
        sample.index = self.series.samples.len() as u64;
        sample.start += self.base;
        self.series.samples.push(sample);
    }

    fn on_event(&mut self, event: &ReplayEvent) {
        if let ReplayEvent::PhaseEnd { at_ref, .. } = event {
            self.base = *at_ref;
        }
        self.series.events.push(event.clone());
    }
}

/// Per-replay window bookkeeping shared by the observed replay paths of
/// [`ReplayEngine`](crate::ReplayEngine): tracks the statistics snapshot at the current
/// window's start and emits delta samples at boundaries.
pub(crate) struct WindowTracker {
    window: u64,
    index: u64,
    /// References replayed when the current window started.
    start: u64,
    prev: MemoryStats,
    prev_hits: u64,
    prev_misses: u64,
}

impl WindowTracker {
    /// Creates a tracker; statistics are assumed freshly reset (all zero).
    pub(crate) fn new(window: u64) -> Self {
        WindowTracker {
            window: window.max(1),
            index: 0,
            start: 0,
            prev: MemoryStats::default(),
            prev_hits: 0,
            prev_misses: 0,
        }
    }

    /// References that may be replayed before the next window boundary.
    pub(crate) fn until_boundary(&self, replayed: u64) -> u64 {
        (self.start + self.window).saturating_sub(replayed).max(1)
    }

    /// Emits a sample if the backend's reference count reached the window boundary, or
    /// (when `finished`) for a non-empty partial window.
    pub(crate) fn observe(
        &mut self,
        backend: &dyn MemoryBackend,
        observer: &mut dyn ReplayObserver,
        finished: bool,
    ) {
        let mem = *backend.stats();
        let replayed = mem.references;
        if replayed < self.start + self.window && !(finished && replayed > self.start) {
            return;
        }
        let cache = backend.cache_stats();
        let misses = cache.misses + cache.bypasses;
        let delta = delta_stats(&mem, &self.prev);
        let sample = WindowSample {
            index: self.index,
            start: self.start,
            references: delta.references,
            hits: cache.hits - self.prev_hits,
            misses: misses - self.prev_misses,
            memory_cycles: delta.memory_cycles,
            cpi: CycleReport::from_stats(&delta, &backend.config().latency, 0, false).cpi(),
        };
        observer.on_window(&sample);
        self.index += 1;
        self.start = replayed;
        self.prev = mem;
        self.prev_hits = cache.hits;
        self.prev_misses = misses;
    }
}

/// Field-wise difference of two cumulative statistics snapshots (`now - then`).
fn delta_stats(now: &MemoryStats, then: &MemoryStats) -> MemoryStats {
    MemoryStats {
        references: now.references - then.references,
        memory_cycles: now.memory_cycles - then.memory_cycles,
        scratchpad_accesses: now.scratchpad_accesses - then.scratchpad_accesses,
        uncached_accesses: now.uncached_accesses - then.uncached_accesses,
        tlb_hits: now.tlb_hits - then.tlb_hits,
        tlb_misses: now.tlb_misses - then.tlb_misses,
        tlb_flushes: now.tlb_flushes - then.tlb_flushes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ReplayEngine;
    use ccache_sim::backend::BackendKind;
    use ccache_sim::SystemConfig;
    use ccache_trace::synth::sequential_scan;

    fn config() -> SystemConfig {
        SystemConfig {
            page_size: 256,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn observed_replay_matches_unobserved_and_reconciles() {
        let trace = sequential_scan(0x0, 4096, 32, 4, 3, None);
        let mut plain = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        let expected = plain.replay("x", &trace);

        let mut observed = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        let mut recorder = SeriesRecorder::new(100);
        let result = observed.replay_observed("x", &trace, 100, &mut recorder);
        assert_eq!(result, expected, "observation must not change statistics");

        let series = recorder.into_series();
        assert_eq!(series.total_references(), result.references);
        assert_eq!(series.total_misses(), result.misses);
        assert_eq!(series.total_hits(), result.hits);
        assert_eq!(series.total_memory_cycles(), result.memory_cycles);
        // full windows of 100 plus one partial
        let n = result.references;
        assert_eq!(series.samples.len() as u64, n.div_ceil(100));
        for (i, s) in series.samples.iter().enumerate() {
            assert_eq!(s.index, i as u64);
            assert_eq!(s.start, i as u64 * 100);
            assert!(s.cpi > 0.0);
        }
    }

    #[test]
    fn window_larger_than_trace_yields_one_sample() {
        let trace = sequential_scan(0x0, 512, 32, 4, 1, None);
        let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        let mut recorder = SeriesRecorder::new(1 << 30);
        let result = engine.replay_observed("x", &trace, 1 << 30, &mut recorder);
        let series = recorder.into_series();
        assert_eq!(series.samples.len(), 1);
        assert_eq!(series.samples[0].references, result.references);
        assert!((series.samples[0].cpi - result.cpi()).abs() < 1e-9);
        assert!((series.samples[0].miss_rate() - result.miss_rate()).abs() < 1e-9);
    }

    #[test]
    fn empty_traces_produce_no_windows() {
        let trace = ccache_trace::Trace::new();
        let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        let mut recorder = SeriesRecorder::new(8);
        engine.replay_observed("x", &trace, 8, &mut recorder);
        assert!(recorder.series().samples.is_empty());
    }

    #[test]
    fn recorder_rebases_windows_across_phases() {
        let mut recorder = SeriesRecorder::new(10);
        recorder.on_window(&WindowSample {
            index: 0,
            start: 0,
            references: 10,
            hits: 5,
            misses: 5,
            memory_cycles: 50,
            cpi: 1.0,
        });
        recorder.on_event(&ReplayEvent::PhaseEnd {
            name: "a".into(),
            at_ref: 10,
            cycles: 99,
        });
        // the next phase's engine numbers its windows from zero again
        recorder.on_window(&WindowSample {
            index: 0,
            start: 0,
            references: 4,
            hits: 2,
            misses: 2,
            memory_cycles: 20,
            cpi: 1.0,
        });
        let series = recorder.into_series();
        assert_eq!(series.samples[1].index, 1);
        assert_eq!(series.samples[1].start, 10);
        assert_eq!(series.events[0].at_ref(), 10);
    }
}
