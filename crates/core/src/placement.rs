//! Address placement: relocating program variables for column-cache experiments.
//!
//! The column-cache mapping granularity is a page, and scratchpad emulation needs the
//! region mapped to a column to cover each cache set exactly once per allotted way. Both
//! requirements are placement (link-time address assignment) concerns, so this module
//! rewrites a recorded trace to a new memory map: variables selected for scratchpad are
//! packed contiguously in a column-aligned block, every other variable starts on its own
//! page. The relocation preserves each variable's internal layout, so the reference stream
//! is unchanged except for the base address of every variable.

use ccache_trace::{MemAccess, SymbolTable, Trace, VarId};
use std::collections::BTreeMap;

/// A plan mapping each variable to a new base address.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementPlan {
    targets: BTreeMap<VarId, u64>,
}

impl PlacementPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        PlacementPlan::default()
    }

    /// Places `var` at `base`.
    pub fn place(&mut self, var: VarId, base: u64) {
        self.targets.insert(var, base);
    }

    /// The planned base address of `var`, if any.
    pub fn target(&self, var: VarId) -> Option<u64> {
        self.targets.get(&var).copied()
    }

    /// Number of planned variables.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` if no variable has been placed yet.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

/// Builds a placement where the variables in `scratchpad_vars` are packed contiguously
/// (in the given order) into a block starting at `scratchpad_base`, and every other
/// variable of `symbols` starts on a fresh `page_size`-aligned address beginning at
/// `general_base`.
pub fn pack_scratchpad_first(
    symbols: &SymbolTable,
    scratchpad_vars: &[VarId],
    scratchpad_base: u64,
    general_base: u64,
    page_size: u64,
) -> PlacementPlan {
    let mut plan = PlacementPlan::new();
    let mut cursor = scratchpad_base;
    for &v in scratchpad_vars {
        if let Some(region) = symbols.region(v) {
            plan.place(v, cursor);
            cursor += region.size;
        }
    }
    let mut general = general_base.max(align_up(cursor, page_size));
    for region in symbols.iter() {
        if scratchpad_vars.contains(&region.id) {
            continue;
        }
        plan.place(region.id, general);
        general = align_up(general + region.size, page_size);
    }
    plan
}

/// Builds a placement where every variable starts on its own `page_size`-aligned address,
/// in symbol-table order, starting at `base`.
pub fn page_aligned(symbols: &SymbolTable, base: u64, page_size: u64) -> PlacementPlan {
    let mut plan = PlacementPlan::new();
    let mut cursor = align_up(base, page_size);
    for region in symbols.iter() {
        plan.place(region.id, cursor);
        cursor = align_up(cursor + region.size, page_size);
    }
    plan
}

/// Applies a placement plan: returns the relocated trace and the new symbol table.
///
/// Variables without a planned target keep their original addresses. Events not attributed
/// to any variable are left untouched.
pub fn relocate(
    trace: &Trace,
    symbols: &SymbolTable,
    plan: &PlacementPlan,
) -> (Trace, SymbolTable) {
    // Build the new symbol table (preserving ids and order).
    let mut new_symbols = SymbolTable::with_base(0);
    for region in symbols.iter() {
        let base = plan.target(region.id).unwrap_or(region.base);
        // insert_at preserves explicit placement; ids are assigned in order, matching the
        // original ids because we iterate in allocation order.
        new_symbols
            .insert_at(&region.name, base, region.size)
            .expect("plan produced overlapping regions");
    }
    let mut delta: BTreeMap<VarId, i128> = BTreeMap::new();
    for region in symbols.iter() {
        let new_base = plan.target(region.id).unwrap_or(region.base);
        delta.insert(region.id, i128::from(new_base) - i128::from(region.base));
    }
    let relocated: Trace = trace
        .iter()
        .map(|e| {
            let var = e.var.or_else(|| symbols.resolve(e.addr));
            match var.and_then(|v| delta.get(&v)) {
                Some(d) => MemAccess {
                    addr: (i128::from(e.addr) + d) as u64,
                    var,
                    ..*e
                },
                None => *e,
            }
        })
        .collect();
    (relocated, new_symbols)
}

fn align_up(value: u64, align: u64) -> u64 {
    if align <= 1 {
        return value;
    }
    value.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccache_trace::{AccessKind, TraceRecorder};

    fn sample() -> (Trace, SymbolTable, VarId, VarId, VarId) {
        let mut rec = TraceRecorder::new();
        let a = rec.allocate("a", 100, 8);
        let b = rec.allocate("b", 300, 8);
        let c = rec.allocate("c", 50, 8);
        for i in 0..10u64 {
            rec.record(a, i * 8, 8, AccessKind::Read);
            rec.record(b, i * 16, 8, AccessKind::Write);
            rec.record(c, i * 4, 4, AccessKind::Read);
        }
        let (t, s) = rec.finish();
        (t, s, a, b, c)
    }

    #[test]
    fn page_aligned_places_every_variable_on_a_page() {
        let (_, symbols, ..) = sample();
        let plan = page_aligned(&symbols, 0x10000, 1024);
        assert_eq!(plan.len(), 3);
        for region in symbols.iter() {
            assert_eq!(plan.target(region.id).unwrap() % 1024, 0);
        }
        // no overlap and increasing addresses
        let bases: Vec<u64> = symbols.iter().map(|r| plan.target(r.id).unwrap()).collect();
        assert!(bases.windows(2).all(|w| w[1] >= w[0] + 1024));
    }

    #[test]
    fn scratchpad_vars_are_packed_contiguously() {
        let (_, symbols, a, _b, c) = sample();
        let plan = pack_scratchpad_first(&symbols, &[c, a], 0x8000, 0x2_0000, 1024);
        assert_eq!(plan.target(c), Some(0x8000));
        assert_eq!(plan.target(a), Some(0x8000 + 50));
        // the non-scratchpad variable is page aligned and out of the scratchpad block
        let b_base = plan.target(VarId(1)).unwrap();
        assert_eq!(b_base % 1024, 0);
        assert!(b_base >= 0x2_0000);
    }

    #[test]
    fn relocate_rewrites_addresses_preserving_offsets() {
        let (trace, symbols, a, ..) = sample();
        let plan = page_aligned(&symbols, 0x40_0000, 4096);
        let (new_trace, new_symbols) = relocate(&trace, &symbols, &plan);
        assert_eq!(new_trace.len(), trace.len());
        let old_base = symbols.region(a).unwrap().base;
        let new_base = new_symbols.region(a).unwrap().base;
        for (old, new) in trace.iter().zip(new_trace.iter()) {
            assert_eq!(old.kind, new.kind);
            assert_eq!(old.var, new.var);
            if old.var == Some(a) {
                assert_eq!(old.addr - old_base, new.addr - new_base);
            }
        }
        // the new symbol table resolves the new addresses
        assert_eq!(new_symbols.resolve(new_base + 8), Some(a));
    }

    #[test]
    fn variables_without_target_keep_addresses() {
        let (trace, symbols, a, b, _c) = sample();
        let mut plan = PlacementPlan::new();
        plan.place(a, 0x70_0000);
        assert!(!plan.is_empty());
        let (new_trace, new_symbols) = relocate(&trace, &symbols, &plan);
        assert_eq!(
            new_symbols.region(b).unwrap().base,
            symbols.region(b).unwrap().base
        );
        let b_events_old: Vec<u64> = trace
            .iter()
            .filter(|e| e.var == Some(b))
            .map(|e| e.addr)
            .collect();
        let b_events_new: Vec<u64> = new_trace
            .iter()
            .filter(|e| e.var == Some(b))
            .map(|e| e.addr)
            .collect();
        assert_eq!(b_events_old, b_events_new);
    }

    #[test]
    fn align_up_behaviour() {
        assert_eq!(align_up(10, 0), 10);
        assert_eq!(align_up(10, 1), 10);
        assert_eq!(align_up(10, 8), 16);
        assert_eq!(align_up(16, 8), 16);
        assert_eq!(align_up(1, 1000), 1000);
    }
}
