//! Dynamic (per-procedure) column-cache execution — the "Column" result of Figure 4(d).
//!
//! A static scratchpad/cache partition must compromise across procedures whose optimal
//! partitions differ. A column cache instead remaps variables to columns between
//! procedures: before each phase the tint table is reprogrammed with that phase's own
//! column assignment (computed by the Section 3 algorithm on that phase's profile), and
//! columns whose resident data fits entirely are pre-loaded so they behave as scratchpad.
//! The remapping and preload overheads are charged as control cycles and reported.

use crate::engine::ReplayEngine;
use crate::error::CoreError;
use crate::observe::{ReplayEvent, ReplayObserver};
use crate::placement::{page_aligned, relocate};
use crate::runner::{CacheMapping, RunResult};
use ccache_layout::weights::conflict_graph_from_trace;
use ccache_layout::{assign_columns, LayoutOptions, WeightOptions};
use ccache_sim::backend::{BackendKind, MemoryBackend};
use ccache_sim::ColumnMask;
use ccache_trace::{SymbolTable, Trace};

use crate::partition::PartitionConfig;

/// Result of one dynamically-remapped phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseResult {
    /// Phase (procedure) name.
    pub name: String,
    /// Run statistics of the phase.
    pub result: RunResult,
    /// Cost `W` of the phase's column assignment.
    pub layout_cost: u64,
    /// Number of columns whose contents were pre-loaded (scratchpad-like columns).
    pub preloaded_columns: usize,
}

/// Result of a full dynamically-remapped application run.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicRunResult {
    /// Per-phase results in execution order.
    pub phases: Vec<PhaseResult>,
    /// Total cycles excluding remap/preload overhead (comparable to the paper's figure).
    pub cycles: u64,
    /// Total software control cycles spent on remapping and preloading.
    pub control_cycles: u64,
}

impl DynamicRunResult {
    /// Total cycles including the control overhead.
    pub fn cycles_with_control(&self) -> u64 {
        self.cycles + self.control_cycles
    }
}

/// Runs an application phase-by-phase on one column cache, recomputing and applying the
/// column assignment before each phase.
///
/// `phases` are `(name, trace)` pairs sharing `symbols`. The variables are first placed
/// page-aligned (so per-variable tinting is exact), then each phase is laid out and run.
pub fn run_dynamic(
    phases: &[(String, Trace)],
    symbols: &SymbolTable,
    config: &PartitionConfig,
) -> Result<DynamicRunResult, CoreError> {
    run_dynamic_inner(phases, symbols, config, None)
}

/// As [`run_dynamic`], with a streaming [`ReplayObserver`] receiving windowed samples
/// every `window` references plus [`ReplayEvent::PhaseStart`], [`ReplayEvent::Remap`]
/// and [`ReplayEvent::PhaseEnd`] markers with run-global reference offsets.
///
/// The returned [`DynamicRunResult`] is byte-identical to an unobserved
/// [`run_dynamic`] of the same phases.
///
/// # Errors
///
/// As [`run_dynamic`].
pub fn run_dynamic_observed(
    phases: &[(String, Trace)],
    symbols: &SymbolTable,
    config: &PartitionConfig,
    window: u64,
    observer: &mut dyn ReplayObserver,
) -> Result<DynamicRunResult, CoreError> {
    run_dynamic_inner(phases, symbols, config, Some((window, observer)))
}

fn run_dynamic_inner(
    phases: &[(String, Trace)],
    symbols: &SymbolTable,
    config: &PartitionConfig,
    mut observe: Option<(u64, &mut dyn ReplayObserver)>,
) -> Result<DynamicRunResult, CoreError> {
    let column_bytes = config.column_bytes();
    let plan = page_aligned(symbols, 0x10_0000, config.page_size);
    // Relocate each phase's trace with the same placement.
    let relocated: Vec<(String, Trace, SymbolTable)> = phases
        .iter()
        .map(|(name, trace)| {
            let (t, s) = relocate(trace, symbols, &plan);
            (name.clone(), t, s)
        })
        .collect();

    let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config.system_config()?)?;
    let weight_opts = WeightOptions {
        column_bytes,
        split_large_variables: true,
        min_accesses: 1,
    };
    let layout_opts = LayoutOptions::new(config.columns, column_bytes);

    let mut phase_results = Vec::with_capacity(relocated.len());
    let mut total_cycles = 0u64;
    let mut total_control = 0u64;
    let mut replayed_refs = 0u64;
    for (name, trace, new_symbols) in &relocated {
        // Per-phase layout.
        let (graph, units) = conflict_graph_from_trace(trace, new_symbols, &weight_opts);
        let assignment = assign_columns(&graph, &layout_opts)?;

        // Columns whose resident data fits entirely in the column are pre-loaded and made
        // exclusive: they behave as scratchpad for this phase.
        let mut column_bytes_used = vec![0u64; config.columns];
        for (idx, _unit) in units.iter().enumerate() {
            if let Some(col) = assignment.column_of_vertex(idx) {
                column_bytes_used[col] += units.unit(idx).map(|u| u.size).unwrap_or(0);
            }
        }
        let exclusive_columns: Vec<usize> = (0..config.columns)
            .filter(|&c| column_bytes_used[c] > 0 && column_bytes_used[c] <= column_bytes)
            .collect();
        // Keep at least one non-exclusive column for everything else.
        let exclusive_columns = if exclusive_columns.len() >= config.columns {
            exclusive_columns[..config.columns - 1].to_vec()
        } else {
            exclusive_columns
        };

        let mapping =
            CacheMapping::from_assignment(&assignment, &units, new_symbols, &exclusive_columns);
        // Re-applying a mapping on a warm system is exactly the dynamic remapping the
        // paper describes: tints are redefined and affected pages re-tinted.
        if let Some((_, observer)) = observe.as_mut() {
            observer.on_event(&ReplayEvent::PhaseStart {
                name: name.clone(),
                at_ref: replayed_refs,
            });
        }
        apply_remap(engine.backend_mut(), &mapping)?;
        if let Some((_, observer)) = observe.as_mut() {
            observer.on_event(&ReplayEvent::Remap {
                label: name.clone(),
                at_ref: replayed_refs,
                regions: mapping.regions.len(),
            });
        }
        let result = match observe.as_mut() {
            Some((window, observer)) => {
                engine.replay_observed(name, trace, *window, &mut **observer)
            }
            None => engine.replay(name, trace),
        };
        replayed_refs += result.references;
        if let Some((_, observer)) = observe.as_mut() {
            observer.on_event(&ReplayEvent::PhaseEnd {
                name: name.clone(),
                at_ref: replayed_refs,
                cycles: result.total_cycles(),
            });
        }
        total_cycles += if config.include_control {
            result.total_cycles_with_control()
        } else {
            result.total_cycles()
        };
        total_control += result.control_cycles;
        phase_results.push(PhaseResult {
            name: name.clone(),
            result,
            layout_cost: assignment.cost,
            preloaded_columns: exclusive_columns.len(),
        });
    }
    Ok(DynamicRunResult {
        phases: phase_results,
        cycles: total_cycles,
        control_cycles: total_control,
    })
}

/// Applies a new mapping to a warm backend (the per-phase remap).
fn apply_remap(system: &mut dyn MemoryBackend, mapping: &CacheMapping) -> Result<(), CoreError> {
    // Reset the default tint to all columns before narrowing it again, so a previous
    // phase's exclusivity does not leak into this phase.
    let columns = system.config().cache.columns();
    system.define_tint(ccache_sim::Tint::DEFAULT, ColumnMask::all(columns))?;
    mapping.apply(system)
}

/// Convenience wrapper: the static-partition cycle counts (from the partition sweep of the
/// combined application) next to the dynamic column-cache cycle count — the two curves of
/// Figure 4(d).
#[derive(Debug, Clone, PartialEq)]
pub struct Figure4dResult {
    /// Cycle count of the combined application for each static partition (cache columns
    /// 0..=k).
    pub static_cycles: Vec<(usize, u64)>,
    /// Cycle count of the dynamically remapped column cache.
    pub column_cache_cycles: u64,
    /// Control overhead of the dynamic run.
    pub column_cache_control_cycles: u64,
}

impl Figure4dResult {
    /// The best static partition (cache columns, cycles).
    pub fn best_static(&self) -> (usize, u64) {
        self.static_cycles
            .iter()
            .copied()
            .min_by_key(|&(_, c)| c)
            .expect("at least one static point")
    }

    /// Whether the column cache beats every static partition.
    pub fn column_cache_wins(&self) -> bool {
        self.column_cache_cycles <= self.best_static().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_sweep;
    use ccache_workloads::mpeg::{run_combined, run_phases, MpegConfig};

    fn small_mpeg() -> MpegConfig {
        MpegConfig::small()
    }

    #[test]
    fn dynamic_run_executes_every_phase() {
        let cfg = PartitionConfig::default();
        let (phases, symbols) = run_phases(&small_mpeg());
        let result = run_dynamic(&phases, &symbols, &cfg).unwrap();
        assert_eq!(result.phases.len(), 3);
        assert!(result.cycles > 0);
        assert!(result.cycles_with_control() >= result.cycles);
        let total_refs: u64 = result.phases.iter().map(|p| p.result.references).sum();
        let expected: usize = phases.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(total_refs, expected as u64);
        // dequant and plus have few variables, so their per-phase layouts are conflict-free
        let dequant = result.phases.iter().find(|p| p.name == "dequant").unwrap();
        assert_eq!(dequant.layout_cost, 0);
    }

    #[test]
    fn column_cache_beats_or_matches_static_partitions() {
        let cfg = PartitionConfig::default();
        let mpeg = small_mpeg();
        let combined = run_combined(&mpeg);
        let sweep = partition_sweep(&combined, &cfg).unwrap();
        let (phases, symbols) = run_phases(&mpeg);
        let dynamic = run_dynamic(&phases, &symbols, &cfg).unwrap();

        let fig4d = Figure4dResult {
            static_cycles: sweep
                .points
                .iter()
                .map(|p| (p.cache_columns, p.cycles))
                .collect(),
            column_cache_cycles: dynamic.cycles,
            column_cache_control_cycles: dynamic.control_cycles,
        };
        let (best_cols, best_cycles) = fig4d.best_static();
        assert!(best_cols <= 4);
        // The dynamic column cache should be at least competitive with the best static
        // partition, and strictly better than the worst one.
        let worst = fig4d.static_cycles.iter().map(|&(_, c)| c).max().unwrap();
        assert!(
            fig4d.column_cache_cycles < worst,
            "column cache ({}) should beat the worst static partition ({worst})",
            fig4d.column_cache_cycles
        );
        assert!(
            fig4d.column_cache_cycles as f64 <= best_cycles as f64 * 1.15,
            "column cache ({}) should be competitive with the best static partition ({best_cycles})",
            fig4d.column_cache_cycles
        );
    }
}
