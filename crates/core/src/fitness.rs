//! Replay-driven fitness evaluation for configuration search.
//!
//! An autotuner proposes *candidates* — a cache geometry plus a [`CacheMapping`] steering
//! variables into columns — and needs to know how each would perform. The only honest
//! answer is a replay, so this module packages the [`ReplayEngine`] as a fitness
//! function: [`ReplayFitness`] decodes the trace **once** into a shared `(addr,
//! is_write)` reference arena and evaluates any number of candidates against it,
//! serially or thread-parallel with order-preserving results (the same guarantee as
//! [`par_map`](crate::parallel::par_map()), so a search that consumes results in order
//! is byte-identical with the `parallel` feature on or off).
//!
//! # The amortized datapath
//!
//! Evaluation does **not** build a fresh backend per candidate. Engines live in a pool
//! keyed by `(backend kind, geometry)`: a candidate that finds a pooled engine returns
//! it to pristine state in place ([`ReplayEngine::reset`], whose
//! equivalence to fresh construction is pinned by tests), applies its mapping and
//! replays straight from the shared arena — no trace re-decode, no backend
//! reallocation, no staging copy. On top of pooling, the default
//! [`FitnessMode::PooledCheckpoint`] records one post-warm-up
//! [`ReplayCheckpoints`](crate::checkpoint::ReplayCheckpoints) plus its [`RunResult`]
//! per geometry, and serves any later candidate whose *mapping signature* proves it
//! programs identical hardware state (for the column cache: the full mapping; for the
//! set-associative baseline: only the uncached regions, the one control surface it
//! honours; for the ideal scratchpad: anything) — such duplicates cost a clone instead
//! of a replay. A candidate whose signature does not match falls back to a full pooled
//! replay; eligibility is decided per backend kind and proven by parity tests against
//! the fresh-engine oracle ([`FitnessMode::Fresh`]), never assumed.
//!
//! Results are bit-identical across all three modes. The amortization is observable
//! through the `opt.engine_pool.{hits,builds}` and `opt.warmup.{reused,full}` counters:
//!
//! ```
//! use ccache_core::{Candidate, ReplayFitness};
//! use ccache_core::runner::CacheMapping;
//! use ccache_sim::SystemConfig;
//! use ccache_telemetry::Registry;
//! use ccache_trace::synth::sequential_scan;
//!
//! let trace = sequential_scan(0x0, 4096, 32, 4, 2, None);
//! let mut fitness = ReplayFitness::new(trace);
//! let registry = Registry::new();
//! fitness.set_telemetry(&registry);
//!
//! let config = SystemConfig { page_size: 256, ..SystemConfig::default() };
//! let candidate = Candidate::column_cache(config, CacheMapping::new());
//! let batch = vec![candidate.clone(), candidate.clone(), candidate];
//! let results = fitness.evaluate_batch(&batch);
//! assert!(results.iter().all(|r| r.is_ok()));
//!
//! // One engine was built for the geometry; the other two candidates pooled it...
//! assert_eq!(registry.counter_value("opt.engine_pool.builds"), 1);
//! assert_eq!(registry.counter_value("opt.engine_pool.hits"), 2);
//! // ...and one warm-up replay served all three identical mappings.
//! assert_eq!(registry.counter_value("opt.warmup.full"), 1);
//! assert_eq!(registry.counter_value("opt.warmup.reused"), 2);
//! ```

use crate::checkpoint::ReplayCheckpoints;
use crate::engine::ReplayEngine;
use crate::error::CoreError;
use crate::parallel::{par_map, seq_map};
use crate::runner::{CacheMapping, RegionMapping, RunResult};
use ccache_sim::backend::BackendKind;
use ccache_sim::SystemConfig;
use ccache_telemetry::{Counter, Registry};
use ccache_trace::Trace;
use std::sync::{Arc, Mutex};

/// Segments recorded per warm-up checkpoint. Small: the checkpoints' job here is to
/// carry the reusable post-warm-up state (and support segment-parallel re-replay);
/// each segment costs one backend clone held in the pool.
const WARMUP_SEGMENTS: usize = 4;

/// One candidate for fitness evaluation: a full system geometry plus the cache mapping to
/// program before the replay.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The geometry (cache shape, page size, TLB entries, latencies) to simulate.
    pub config: SystemConfig,
    /// The column mapping to program into the backend.
    pub mapping: CacheMapping,
    /// The backend to replay on (searches optimize [`BackendKind::ColumnCache`];
    /// baselines replay on the others).
    pub backend: BackendKind,
}

impl Candidate {
    /// A column-cache candidate — the common case for search.
    pub fn column_cache(config: SystemConfig, mapping: CacheMapping) -> Self {
        Candidate {
            config,
            mapping,
            backend: BackendKind::ColumnCache,
        }
    }
}

/// How much of the amortized datapath [`ReplayFitness`] uses. Every mode returns
/// bit-identical results; the modes exist so the bench harness can price each rung and
/// parity tests can hold the fast paths against the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FitnessMode {
    /// The oracle: build a fresh engine per candidate, exactly the pre-pool datapath.
    Fresh,
    /// Reuse pooled engines per `(backend, geometry)` via in-place reset; every
    /// candidate still pays a full replay.
    Pooled,
    /// [`FitnessMode::Pooled`] plus warm-up reuse: one recorded warm-up per geometry
    /// serves every candidate whose mapping signature proves identical programmed state.
    #[default]
    PooledCheckpoint,
}

/// What a candidate's mapping means to its backend — the checkpoint-reuse eligibility
/// rule. Two candidates of the same `(backend, geometry)` with equal signatures program
/// byte-identical hardware state from pristine, so their replays are interchangeable.
#[derive(Debug, Clone, PartialEq)]
enum MappingSignature {
    /// Column cache: every part of the mapping reaches hardware — full equality.
    Full(CacheMapping),
    /// Set-associative baseline: only uncacheability is honoured; the signature is the
    /// ordered `(base, size)` list of uncached regions.
    Uncached(Vec<(u64, u64)>),
    /// Ideal scratchpad: ignores all control operations — always eligible.
    Unit,
}

fn signature_of(candidate: &Candidate) -> MappingSignature {
    match candidate.backend {
        BackendKind::ColumnCache => MappingSignature::Full(candidate.mapping.clone()),
        BackendKind::SetAssociative => MappingSignature::Uncached(
            candidate
                .mapping
                .regions
                .iter()
                .filter(|(_, _, m)| matches!(m, RegionMapping::Uncached))
                .map(|(base, size, _)| (*base, *size))
                .collect(),
        ),
        BackendKind::IdealScratchpad => MappingSignature::Unit,
    }
}

/// A warm-up recorded once per pool entry: the eligibility signature, the post-warm-up
/// checkpoints, and the warm-up's own [`RunResult`] served to signature-equal candidates.
#[derive(Debug)]
struct Recorded {
    signature: MappingSignature,
    /// Kept so callers can resume segment-parallel replay from the warm state; parity
    /// between these and `result` is pinned by tests.
    #[allow(dead_code)]
    checkpoints: ReplayCheckpoints,
    result: RunResult,
}

/// One `(backend kind, geometry)` slot of the engine pool.
#[derive(Debug)]
struct PoolEntry {
    kind: BackendKind,
    config: SystemConfig,
    /// Engines ready for checkout. Grows past one only when a parallel batch replays
    /// several same-geometry candidates concurrently.
    idle: Vec<ReplayEngine>,
    recorded: Option<Recorded>,
}

/// Pre-resolved telemetry handles. All counts are taken in the serial planning pass, in
/// candidate input order, so snapshots are schedule-independent.
#[derive(Debug, Clone)]
struct FitnessTelemetry {
    pool_hits: Counter,
    pool_builds: Counter,
    warmup_reused: Counter,
    warmup_full: Counter,
}

impl FitnessTelemetry {
    fn bind(registry: &Registry) -> Self {
        FitnessTelemetry {
            pool_hits: registry.counter("opt.engine_pool.hits"),
            pool_builds: registry.counter("opt.engine_pool.builds"),
            warmup_reused: registry.counter("opt.warmup.reused"),
            warmup_full: registry.counter("opt.warmup.full"),
        }
    }
}

/// The per-candidate execution plan produced by the serial planning pass.
enum Plan {
    /// Serve the recorded warm-up result of this pool entry.
    Reuse(usize),
    /// Record this pool entry's warm-up (checkpoint + result) with this signature.
    Record(usize, MappingSignature),
    /// Full replay on a pooled engine of this entry.
    Replay(usize),
}

/// A trace packaged as a reusable fitness function.
#[derive(Debug)]
pub struct ReplayFitness {
    trace: Trace,
    /// The trace decoded once into the form [`MemoryBackend::run_batch`]
    /// (ccache_sim::backend::MemoryBackend::run_batch) consumes, shared read-only by
    /// every evaluation (and by clones of this fitness).
    arena: Arc<Vec<(u64, bool)>>,
    parallel: bool,
    mode: FitnessMode,
    registry: Registry,
    telemetry: FitnessTelemetry,
    pool: Mutex<Vec<PoolEntry>>,
}

impl Clone for ReplayFitness {
    /// Clones share the trace arena but start with an empty engine pool — results are
    /// identical regardless of pool state, so a clone only re-pays engine builds.
    fn clone(&self) -> Self {
        ReplayFitness {
            trace: self.trace.clone(),
            arena: Arc::clone(&self.arena),
            parallel: self.parallel,
            mode: self.mode,
            registry: self.registry.clone(),
            telemetry: self.telemetry.clone(),
            pool: Mutex::new(Vec::new()),
        }
    }
}

impl ReplayFitness {
    /// Wraps a trace for repeated evaluation, decoding it once into the shared
    /// reference arena. Evaluation batches run thread-parallel when the `parallel`
    /// feature is enabled, and use the full amortized datapath
    /// ([`FitnessMode::PooledCheckpoint`]) by default.
    pub fn new(trace: Trace) -> Self {
        let arena: Vec<(u64, bool)> = trace
            .as_slice()
            .iter()
            .map(|ev| (ev.addr, ev.is_write()))
            .collect();
        let registry = Registry::global();
        let telemetry = FitnessTelemetry::bind(&registry);
        ReplayFitness {
            trace,
            arena: Arc::new(arena),
            parallel: true,
            mode: FitnessMode::default(),
            registry,
            telemetry,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Forces every batch onto the serial path even when the `parallel` feature is
    /// compiled in. Searches use this to prove that their results do not depend on the
    /// evaluation schedule.
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Selects the evaluation datapath (builder form). Results are bit-identical in
    /// every mode; see [`FitnessMode`].
    pub fn with_mode(mut self, mode: FitnessMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the evaluation datapath in place; see [`FitnessMode`].
    pub fn set_mode(&mut self, mode: FitnessMode) {
        self.mode = mode;
    }

    /// The active evaluation datapath.
    pub fn mode(&self) -> FitnessMode {
        self.mode
    }

    /// Rebinds telemetry to `registry` (the process-wide [`Registry::global`] is bound
    /// at construction) and drops any pooled engines so they re-bind too. Purely
    /// observational — results are unaffected.
    pub fn set_telemetry(&mut self, registry: &Registry) {
        self.registry = registry.clone();
        self.telemetry = FitnessTelemetry::bind(registry);
        self.pool.get_mut().expect("fitness pool lock").clear();
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Replays the trace for one candidate and returns the run statistics.
    ///
    /// # Errors
    ///
    /// Returns an error if the candidate's geometry or mapping is invalid.
    pub fn evaluate(&self, name: &str, candidate: &Candidate) -> Result<RunResult, CoreError> {
        if self.mode == FitnessMode::Fresh {
            return self.evaluate_fresh(name, candidate);
        }
        self.evaluate_batch_named(name, std::slice::from_ref(candidate))
            .pop()
            .expect("a one-candidate batch returns one result")
    }

    /// Evaluates a batch of candidates, returning results **in input order**. With the
    /// `parallel` feature on (and [`ReplayFitness::serial`] not requested) full replays
    /// fan out over worker threads; the output is identical either way, because pool
    /// and warm-up decisions are planned in a serial pass over the input order before
    /// any replay starts.
    pub fn evaluate_batch(&self, candidates: &[Candidate]) -> Vec<Result<RunResult, CoreError>> {
        self.evaluate_batch_named("candidate", candidates)
    }

    /// The oracle datapath: a fresh engine per candidate, as before the pool existed.
    fn evaluate_fresh(&self, name: &str, candidate: &Candidate) -> Result<RunResult, CoreError> {
        let mut engine = ReplayEngine::new(candidate.backend, candidate.config)?;
        engine.set_telemetry(&self.registry);
        engine.apply(&candidate.mapping)?;
        Ok(engine.replay_refs(name, &self.arena))
    }

    /// Pops an idle engine of pool entry `idx`, building one only when a parallel batch
    /// has every idle engine of the entry checked out at once. Contended builds are not
    /// counted — their number depends on the schedule; `opt.engine_pool.builds` counts
    /// entry creations, which do not.
    fn checkout(&self, idx: usize) -> ReplayEngine {
        let mut pool = self.pool.lock().expect("fitness pool lock");
        let entry = &mut pool[idx];
        entry.idle.pop().unwrap_or_else(|| {
            let mut engine = ReplayEngine::new(entry.kind, entry.config)
                .expect("pool entries are only created for valid configurations");
            engine.set_telemetry(&self.registry);
            engine
        })
    }

    /// Returns a checked-out engine to its pool entry.
    fn check_in(&self, idx: usize, engine: ReplayEngine) {
        self.pool.lock().expect("fitness pool lock")[idx]
            .idle
            .push(engine);
    }

    /// The pooled datapath shared by [`ReplayFitness::evaluate`] and
    /// [`ReplayFitness::evaluate_batch`]: plan serially, record warm-ups serially,
    /// then fan full replays out.
    fn evaluate_batch_named(
        &self,
        name: &str,
        candidates: &[Candidate],
    ) -> Vec<Result<RunResult, CoreError>> {
        if self.mode == FitnessMode::Fresh {
            let eval = |c: &Candidate| self.evaluate_fresh(name, c);
            return if self.parallel {
                par_map(candidates, eval)
            } else {
                seq_map(candidates, eval)
            };
        }

        let mut results: Vec<Option<Result<RunResult, CoreError>>> =
            candidates.iter().map(|_| None).collect();
        let mut plans: Vec<Option<Plan>> = Vec::with_capacity(candidates.len());

        // Phase 0 — plan, serially and in input order, under one pool lock. All pool
        // and warm-up counters are taken here, so they depend only on the candidate
        // sequence, never on the replay schedule.
        {
            let mut pool = self.pool.lock().expect("fitness pool lock");
            let mut pending: Vec<Option<MappingSignature>> = pool.iter().map(|_| None).collect();
            let (mut hits, mut builds) = (0u64, 0u64);
            let (mut reused, mut full) = (0u64, 0u64);
            for candidate in candidates {
                let found = pool
                    .iter()
                    .position(|e| e.kind == candidate.backend && e.config == candidate.config);
                let idx = match found {
                    Some(idx) => {
                        hits += 1;
                        idx
                    }
                    None => match ReplayEngine::new(candidate.backend, candidate.config) {
                        Ok(mut engine) => {
                            engine.set_telemetry(&self.registry);
                            pool.push(PoolEntry {
                                kind: candidate.backend,
                                config: candidate.config,
                                idle: vec![engine],
                                recorded: None,
                            });
                            pending.push(None);
                            builds += 1;
                            pool.len() - 1
                        }
                        Err(e) => {
                            // Invalid geometry: no pool entry, no counters, the error
                            // is the result — exactly what the fresh path returns.
                            results[plans.len()] = Some(Err(e));
                            plans.push(None);
                            continue;
                        }
                    },
                };
                let plan = if self.mode == FitnessMode::PooledCheckpoint {
                    let sig = signature_of(candidate);
                    let recorded_match = pool[idx]
                        .recorded
                        .as_ref()
                        .is_some_and(|r| r.signature == sig);
                    if recorded_match || pending[idx].as_ref() == Some(&sig) {
                        reused += 1;
                        Plan::Reuse(idx)
                    } else if pool[idx].recorded.is_none() && pending[idx].is_none() {
                        pending[idx] = Some(sig.clone());
                        full += 1;
                        Plan::Record(idx, sig)
                    } else {
                        full += 1;
                        Plan::Replay(idx)
                    }
                } else {
                    full += 1;
                    Plan::Replay(idx)
                };
                plans.push(Some(plan));
            }
            self.telemetry.pool_hits.add(hits);
            self.telemetry.pool_builds.add(builds);
            self.telemetry.warmup_reused.add(reused);
            self.telemetry.warmup_full.add(full);
        }

        // Phase 1 — record warm-ups, serially (at most one per pool entry per batch).
        // A failed `apply` leaves the entry unrecorded; its signature-equal reusers
        // demote to full replays, which reproduce the same error through `apply`.
        let mut failed_records: Vec<usize> = Vec::new();
        for (i, plan) in plans.iter().enumerate() {
            let Some(Plan::Record(idx, sig)) = plan else {
                continue;
            };
            let mut engine = self.checkout(*idx);
            engine.reset();
            match engine.apply(&candidates[i].mapping) {
                Err(e) => {
                    results[i] = Some(Err(e));
                    failed_records.push(*idx);
                }
                Ok(()) => {
                    // The warm-up leaves the backend in the whole-trace end state with
                    // statistics covering exactly the replay, so collecting a result
                    // here matches `replay_refs` byte for byte.
                    let control_before = engine.backend().control_cycles();
                    let checkpoints = engine.checkpoint_refs(&self.arena, WARMUP_SEGMENTS);
                    let result =
                        crate::runner::collect_result(name, engine.backend(), control_before);
                    results[i] = Some(Ok(result.clone()));
                    self.pool.lock().expect("fitness pool lock")[*idx].recorded = Some(Recorded {
                        signature: sig.clone(),
                        checkpoints,
                        result,
                    });
                }
            }
            self.check_in(*idx, engine);
        }
        for plan in plans.iter_mut() {
            if let Some(Plan::Reuse(idx)) = plan {
                if failed_records.contains(idx) {
                    *plan = Some(Plan::Replay(*idx));
                }
            }
        }

        // Phase 2a — serve reuses: a clone of the recorded warm-up result.
        {
            let pool = self.pool.lock().expect("fitness pool lock");
            for (i, plan) in plans.iter().enumerate() {
                if let Some(Plan::Reuse(idx)) = plan {
                    let recorded = pool[*idx]
                        .recorded
                        .as_ref()
                        .expect("a reuse plan implies a recorded warm-up");
                    let mut result = recorded.result.clone();
                    result.name = name.to_owned();
                    results[i] = Some(Ok(result));
                }
            }
        }

        // Phase 2b — fan the full replays out (parallel when enabled), each on a
        // pooled engine reset in place to pristine state.
        let work: Vec<usize> = plans
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                Some(Plan::Replay(_)) => Some(i),
                _ => None,
            })
            .collect();
        let eval = |&i: &usize| -> Result<RunResult, CoreError> {
            let Some(Plan::Replay(idx)) = plans[i] else {
                unreachable!("work list only holds replay plans")
            };
            let mut engine = self.checkout(idx);
            engine.reset();
            let out = match engine.apply(&candidates[i].mapping) {
                Err(e) => Err(e),
                Ok(()) => Ok(engine.replay_refs(name, &self.arena)),
            };
            self.check_in(idx, engine);
            out
        };
        let outs = if self.parallel {
            par_map(&work, eval)
        } else {
            seq_map(&work, eval)
        };
        for (&i, out) in work.iter().zip(outs) {
            results[i] = Some(out);
        }

        results
            .into_iter()
            .map(|r| r.expect("every candidate was planned"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RegionMapping;
    use ccache_sim::{CacheConfig, ColumnMask};
    use ccache_trace::synth::sequential_scan;

    fn config() -> SystemConfig {
        SystemConfig {
            page_size: 256,
            ..SystemConfig::default()
        }
    }

    fn trace() -> Trace {
        let hot = sequential_scan(0x0, 512, 32, 4, 2, None);
        let stream = sequential_scan(0x10_0000, 8 * 1024, 32, 4, 1, None);
        Trace::concat([&hot, &stream, &hot])
    }

    fn steered() -> CacheMapping {
        let mut m = CacheMapping::new();
        m.map(
            0x10_0000,
            8 * 1024,
            RegionMapping::Columns {
                mask: ColumnMask::single(3),
            },
        );
        m
    }

    fn uncached() -> CacheMapping {
        let mut m = CacheMapping::new();
        m.map(0x10_0000, 4 * 1024, RegionMapping::Uncached);
        m
    }

    #[test]
    fn evaluate_matches_a_hand_built_engine() {
        let fitness = ReplayFitness::new(trace());
        let candidate = Candidate::column_cache(config(), steered());
        let result = fitness.evaluate("x", &candidate).unwrap();

        let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        engine.apply(&steered()).unwrap();
        assert_eq!(result, engine.replay("x", fitness.trace()));
    }

    #[test]
    fn batches_preserve_order_and_match_serial() {
        let fitness = ReplayFitness::new(trace());
        let candidates: Vec<Candidate> = BackendKind::ALL
            .into_iter()
            .map(|backend| Candidate {
                config: config(),
                mapping: steered(),
                backend,
            })
            .chain(std::iter::once(Candidate::column_cache(
                config(),
                CacheMapping::new(),
            )))
            .collect();
        let parallel: Vec<RunResult> = fitness
            .evaluate_batch(&candidates)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let serial: Vec<RunResult> = fitness
            .clone()
            .serial()
            .evaluate_batch(&candidates)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(parallel, serial);
        assert_eq!(parallel[0].name, "candidate");
        // the steered column-cache run differs from the unsteered one
        assert_ne!(parallel[0], parallel[3]);
    }

    #[test]
    fn invalid_geometry_is_an_error_not_a_panic() {
        let fitness = ReplayFitness::new(trace());
        let bad = SystemConfig {
            cache: CacheConfig::default(),
            tlb_entries: 0,
            ..config()
        };
        let candidate = Candidate::column_cache(bad, CacheMapping::new());
        assert!(fitness.evaluate("bad", &candidate).is_err());
        let results = fitness.evaluate_batch(std::slice::from_ref(&candidate));
        assert!(results[0].is_err());
    }

    /// A duplicate-heavy, geometry-diverse, backend-diverse batch with an invalid
    /// candidate mixed in — the shapes the pool has to get right.
    fn mixed_batch() -> Vec<Candidate> {
        let alt_config = SystemConfig {
            tlb_entries: 8,
            ..config()
        };
        let bad = SystemConfig {
            tlb_entries: 0,
            ..config()
        };
        let mut batch = vec![
            Candidate::column_cache(config(), steered()),
            Candidate::column_cache(config(), CacheMapping::new()),
            Candidate::column_cache(config(), steered()), // duplicate of [0]
            Candidate::column_cache(alt_config, steered()),
            Candidate::column_cache(bad, CacheMapping::new()),
            Candidate::column_cache(config(), uncached()),
        ];
        for backend in BackendKind::ALL {
            batch.push(Candidate {
                config: config(),
                mapping: steered(),
                backend,
            });
            batch.push(Candidate {
                config: config(),
                mapping: uncached(),
                backend,
            });
        }
        batch
    }

    #[test]
    fn pooled_modes_match_the_fresh_oracle() {
        let batch = mixed_batch();
        let oracle: Vec<_> = ReplayFitness::new(trace())
            .with_mode(FitnessMode::Fresh)
            .evaluate_batch(&batch);
        for mode in [FitnessMode::Pooled, FitnessMode::PooledCheckpoint] {
            for serial in [false, true] {
                let mut fitness = ReplayFitness::new(trace()).with_mode(mode);
                if serial {
                    fitness = fitness.serial();
                }
                // two batches through the same pool: the second batch exercises
                // cross-batch engine reuse and recorded-warm-up reuse
                for _ in 0..2 {
                    let got = fitness.evaluate_batch(&batch);
                    for (g, o) in got.iter().zip(&oracle) {
                        match (g, o) {
                            (Ok(g), Ok(o)) => assert_eq!(g, o, "{mode:?} serial={serial}"),
                            (Err(_), Err(_)) => {}
                            _ => panic!("ok/err mismatch in {mode:?} serial={serial}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pool_and_warmup_counters_are_deterministic() {
        let batch = mixed_batch();
        let run = || {
            let registry = Registry::new();
            let mut fitness = ReplayFitness::new(trace());
            fitness.set_telemetry(&registry);
            fitness.evaluate_batch(&batch);
            (
                registry.counter_value("opt.engine_pool.builds"),
                registry.counter_value("opt.engine_pool.hits"),
                registry.counter_value("opt.warmup.full"),
                registry.counter_value("opt.warmup.reused"),
            )
        };
        let (builds, hits, full, reused) = run();
        // 4 distinct valid (backend, geometry) pairs; the invalid one builds nothing.
        assert_eq!(builds, 4);
        assert_eq!(hits, (batch.len() as u64 - 1) - builds);
        // column-cache@config records `steered` and reuses its duplicates; other
        // distinct mappings replay in full. set-assoc: `steered` and `uncached` have
        // different uncached-region signatures (record + replay). scratchpad: every
        // mapping shares the unit signature (record + reuse).
        assert_eq!(full + reused, batch.len() as u64 - 1);
        assert_eq!(reused, 3);
        // and identical runs count identically
        assert_eq!((builds, hits, full, reused), run());
    }

    #[test]
    fn recorded_warmups_survive_across_batches() {
        let fitness = ReplayFitness::new(trace());
        let candidate = Candidate::column_cache(config(), steered());
        let first = fitness.evaluate("x", &candidate).unwrap();
        let second = fitness.evaluate("x", &candidate).unwrap();
        let oracle = ReplayFitness::new(trace())
            .with_mode(FitnessMode::Fresh)
            .evaluate("x", &candidate)
            .unwrap();
        assert_eq!(first, oracle);
        assert_eq!(second, oracle);
    }
}
