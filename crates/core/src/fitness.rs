//! Replay-driven fitness evaluation for configuration search.
//!
//! An autotuner proposes *candidates* — a cache geometry plus a [`CacheMapping`] steering
//! variables into columns — and needs to know how each would perform. The only honest
//! answer is a replay, so this module packages the [`ReplayEngine`] as a fitness function:
//! [`ReplayFitness`] owns the trace once and evaluates any number of candidates against
//! it, serially or thread-parallel with order-preserving results (the same guarantee as
//! [`par_map`](crate::parallel::par_map()), so a search that consumes results in order is
//! byte-identical with the `parallel` feature on or off).
//!
//! Each evaluation builds a fresh backend: candidates may disagree on geometry, and a
//! fresh backend per candidate is what makes the parallel path safe without locking.
//! Searches that evaluate many mappings under *one* geometry can instead hold a
//! [`ReplayEngine`], [`snapshot`](ReplayEngine::snapshot) the pristine state and
//! [`reset`](ReplayEngine::reset) between candidates — see the engine's documentation for
//! that contract.

use crate::engine::ReplayEngine;
use crate::error::CoreError;
use crate::parallel::{par_map, seq_map};
use crate::runner::{CacheMapping, RunResult};
use ccache_sim::backend::BackendKind;
use ccache_sim::SystemConfig;
use ccache_trace::Trace;

/// One candidate for fitness evaluation: a full system geometry plus the cache mapping to
/// program before the replay.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The geometry (cache shape, page size, TLB entries, latencies) to simulate.
    pub config: SystemConfig,
    /// The column mapping to program into the backend.
    pub mapping: CacheMapping,
    /// The backend to replay on (searches optimize [`BackendKind::ColumnCache`];
    /// baselines replay on the others).
    pub backend: BackendKind,
}

impl Candidate {
    /// A column-cache candidate — the common case for search.
    pub fn column_cache(config: SystemConfig, mapping: CacheMapping) -> Self {
        Candidate {
            config,
            mapping,
            backend: BackendKind::ColumnCache,
        }
    }
}

/// A trace packaged as a reusable fitness function.
#[derive(Debug, Clone)]
pub struct ReplayFitness {
    trace: Trace,
    parallel: bool,
}

impl ReplayFitness {
    /// Wraps a trace for repeated evaluation. Evaluation batches run thread-parallel
    /// when the `parallel` feature is enabled.
    pub fn new(trace: Trace) -> Self {
        ReplayFitness {
            trace,
            parallel: true,
        }
    }

    /// Forces every batch onto the serial path even when the `parallel` feature is
    /// compiled in. Searches use this to prove that their results do not depend on the
    /// evaluation schedule.
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Replays the trace for one candidate and returns the run statistics.
    ///
    /// # Errors
    ///
    /// Returns an error if the candidate's geometry or mapping is invalid.
    pub fn evaluate(&self, name: &str, candidate: &Candidate) -> Result<RunResult, CoreError> {
        let mut engine = ReplayEngine::new(candidate.backend, candidate.config)?;
        engine.apply(&candidate.mapping)?;
        Ok(engine.replay(name, &self.trace))
    }

    /// Evaluates a batch of candidates, returning results **in input order**. With the
    /// `parallel` feature on (and [`ReplayFitness::serial`] not requested) the batch fans
    /// out over worker threads; the output is identical either way.
    pub fn evaluate_batch(&self, candidates: &[Candidate]) -> Vec<Result<RunResult, CoreError>> {
        let eval = |c: &Candidate| self.evaluate("candidate", c);
        if self.parallel {
            par_map(candidates, eval)
        } else {
            seq_map(candidates, eval)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RegionMapping;
    use ccache_sim::{CacheConfig, ColumnMask};
    use ccache_trace::synth::sequential_scan;

    fn config() -> SystemConfig {
        SystemConfig {
            page_size: 256,
            ..SystemConfig::default()
        }
    }

    fn trace() -> Trace {
        let hot = sequential_scan(0x0, 512, 32, 4, 2, None);
        let stream = sequential_scan(0x10_0000, 8 * 1024, 32, 4, 1, None);
        Trace::concat([&hot, &stream, &hot])
    }

    fn steered() -> CacheMapping {
        let mut m = CacheMapping::new();
        m.map(
            0x10_0000,
            8 * 1024,
            RegionMapping::Columns {
                mask: ColumnMask::single(3),
            },
        );
        m
    }

    #[test]
    fn evaluate_matches_a_hand_built_engine() {
        let fitness = ReplayFitness::new(trace());
        let candidate = Candidate::column_cache(config(), steered());
        let result = fitness.evaluate("x", &candidate).unwrap();

        let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        engine.apply(&steered()).unwrap();
        assert_eq!(result, engine.replay("x", fitness.trace()));
    }

    #[test]
    fn batches_preserve_order_and_match_serial() {
        let fitness = ReplayFitness::new(trace());
        let candidates: Vec<Candidate> = BackendKind::ALL
            .into_iter()
            .map(|backend| Candidate {
                config: config(),
                mapping: steered(),
                backend,
            })
            .chain(std::iter::once(Candidate::column_cache(
                config(),
                CacheMapping::new(),
            )))
            .collect();
        let parallel: Vec<RunResult> = fitness
            .evaluate_batch(&candidates)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let serial: Vec<RunResult> = fitness
            .clone()
            .serial()
            .evaluate_batch(&candidates)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(parallel, serial);
        assert_eq!(parallel[0].name, "candidate");
        // the steered column-cache run differs from the unsteered one
        assert_ne!(parallel[0], parallel[3]);
    }

    #[test]
    fn invalid_geometry_is_an_error_not_a_panic() {
        let fitness = ReplayFitness::new(trace());
        let bad = SystemConfig {
            cache: CacheConfig::default(),
            tlb_entries: 0,
            ..config()
        };
        let candidate = Candidate::column_cache(bad, CacheMapping::new());
        assert!(fitness.evaluate("bad", &candidate).is_err());
        let results = fitness.evaluate_batch(std::slice::from_ref(&candidate));
        assert!(results[0].is_err());
    }
}
