//! Applying a data layout to the simulated memory system and replaying traces.
//!
//! The runner is the glue between the three substrates: it takes a column assignment
//! produced by `ccache-layout`, programs the tint table and page table of a
//! `ccache-sim::MemorySystem` accordingly (one tint per column, exclusive tints and
//! preloads for scratchpad-style regions), replays a trace and gathers cycle statistics.

use crate::error::CoreError;
use ccache_layout::{ColumnAssignment, UnitMap};
use ccache_sim::backend::{BackendKind, MemoryBackend};
use ccache_sim::{ColumnMask, CycleReport, SystemConfig, Tint};
use ccache_trace::{SymbolTable, Trace, VarId};
use std::collections::BTreeMap;

/// How a region of memory is mapped onto the column cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionMapping {
    /// Restrict the region's replacements to the given columns.
    Columns {
        /// The columns the region may occupy.
        mask: ColumnMask,
    },
    /// Give the region exclusive use of the given columns (other tints lose them) and
    /// optionally pre-load it so accesses are guaranteed hits — scratchpad emulation.
    Exclusive {
        /// The columns dedicated to the region.
        mask: ColumnMask,
        /// Whether to pre-load every line of the region.
        preload: bool,
    },
    /// Bypass the cache entirely for this region.
    Uncached,
}

/// A complete mapping of variables onto the cache, ready to be programmed into a system.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheMapping {
    /// Per-address-range mappings as `(base, size, mapping)`.
    pub regions: Vec<(u64, u64, RegionMapping)>,
    /// Mask used for pages not covered by any region (the default tint). `None` leaves the
    /// hardware default (all columns).
    pub default_mask: Option<ColumnMask>,
}

impl CacheMapping {
    /// Creates an empty mapping (every page behaves like a normal cache).
    pub fn new() -> Self {
        CacheMapping::default()
    }

    /// Adds a region mapping.
    pub fn map(&mut self, base: u64, size: u64, mapping: RegionMapping) -> &mut Self {
        self.regions.push((base, size, mapping));
        self
    }

    /// Builds the mapping corresponding to a column assignment: every unit of every
    /// variable is tinted to its assigned column.
    ///
    /// Units whose assigned column appears in `exclusive_columns` are mapped exclusively
    /// and pre-loaded (scratchpad emulation); everything else is a plain column
    /// restriction. The default mask (for unmapped pages) excludes the exclusive columns.
    pub fn from_assignment(
        assignment: &ColumnAssignment,
        units: &UnitMap,
        symbols: &SymbolTable,
        exclusive_columns: &[usize],
    ) -> Self {
        let mut mapping = CacheMapping::new();
        for (idx, unit) in units.iter().enumerate() {
            let Some(column) = assignment.column_of_vertex(idx) else {
                continue;
            };
            let Some(region) = symbols.region(unit.var) else {
                continue;
            };
            let base = region.base + unit.offset;
            let size = unit.size;
            let m = if exclusive_columns.contains(&column) {
                RegionMapping::Exclusive {
                    mask: ColumnMask::single(column),
                    preload: true,
                }
            } else {
                RegionMapping::Columns {
                    mask: ColumnMask::single(column),
                }
            };
            mapping.map(base, size, m);
        }
        if !exclusive_columns.is_empty() {
            let mut default = ColumnMask::all(assignment.columns);
            for &c in exclusive_columns {
                default = default.without(c);
            }
            if !default.is_empty() {
                mapping.default_mask = Some(default);
            }
        }
        mapping
    }

    /// Programs the mapping into any memory backend: defines tints, tints page ranges,
    /// marks uncached regions and performs preloads. Backends without a column-mapping
    /// control surface (e.g. the set-associative baseline) accept and ignore the tint
    /// operations.
    ///
    /// # Errors
    ///
    /// Returns an error if a mask is invalid for the system's cache.
    pub fn apply<B: MemoryBackend + ?Sized>(&self, system: &mut B) -> Result<(), CoreError> {
        // Tints are allocated deterministically: one per distinct mask, starting at 1.
        let mut tint_of_mask: BTreeMap<u64, Tint> = BTreeMap::new();
        let mut next_tint = 1u32;
        if let Some(default) = self.default_mask {
            system.define_tint(Tint::DEFAULT, default)?;
        }
        for (base, size, mapping) in &self.regions {
            match mapping {
                RegionMapping::Columns { mask } => {
                    let tint = *tint_of_mask.entry(mask.bits()).or_insert_with(|| {
                        let t = Tint(next_tint);
                        next_tint += 1;
                        t
                    });
                    system.define_tint(tint, *mask)?;
                    system.tint_range(*base..*base + *size, tint);
                }
                RegionMapping::Exclusive { mask, preload } => {
                    let tint = Tint(next_tint);
                    next_tint += 1;
                    system.map_exclusive_region(*base, *size, *mask, tint, *preload)?;
                }
                RegionMapping::Uncached => {
                    system.set_cacheable(*base..*base + *size, false);
                }
            }
        }
        Ok(())
    }
}

/// The outcome of replaying one trace on one configured system.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Label of the run (workload or configuration name).
    pub name: String,
    /// Total memory cycles (excluding software control overhead).
    pub memory_cycles: u64,
    /// Software control cycles (tint management, preloads, explicit copies).
    pub control_cycles: u64,
    /// Cycle/CPI report including the compute model (control cycles excluded).
    pub report: CycleReport,
    /// References replayed.
    pub references: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (including bypasses).
    pub misses: u64,
    /// Lines written back to memory.
    pub writebacks: u64,
    /// Accesses that bypassed the cache (uncacheable pages or empty masks).
    pub uncached: u64,
}

impl RunResult {
    /// Total cycles of the run including the compute model but excluding control cycles.
    pub fn total_cycles(&self) -> u64 {
        self.report.total_cycles()
    }

    /// Total cycles including software control overhead.
    pub fn total_cycles_with_control(&self) -> u64 {
        self.report.total_cycles() + self.control_cycles
    }

    /// Clocks per instruction (control excluded).
    pub fn cpi(&self) -> f64 {
        self.report.cpi()
    }

    /// Cache miss rate.
    pub fn miss_rate(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.misses as f64 / self.references as f64
        }
    }
}

/// Builds a column-cache system, applies a mapping and replays a trace (batched).
///
/// # Errors
///
/// Returns an error if the system configuration or the mapping is invalid.
pub fn run_trace(
    name: &str,
    config: SystemConfig,
    mapping: &CacheMapping,
    trace: &Trace,
) -> Result<RunResult, CoreError> {
    run_trace_on(BackendKind::ColumnCache, name, config, mapping, trace)
}

/// Builds a backend of the requested kind, applies a mapping and replays a trace through
/// the batched [`ReplayEngine`](crate::engine::ReplayEngine) path.
///
/// # Errors
///
/// Returns an error if the system configuration or the mapping is invalid.
pub fn run_trace_on(
    kind: BackendKind,
    name: &str,
    config: SystemConfig,
    mapping: &CacheMapping,
    trace: &Trace,
) -> Result<RunResult, CoreError> {
    let mut engine = crate::engine::ReplayEngine::new(kind, config)?;
    engine.apply(mapping)?;
    Ok(engine.replay(name, trace))
}

/// Replays a trace on an already-configured backend one reference at a time, collecting
/// a [`RunResult`] from the statistics accumulated *by this call only* (existing
/// statistics are reset first; cache contents and mappings are preserved).
///
/// This is the reference replay path; the batched
/// [`ReplayEngine::replay`](crate::engine::ReplayEngine::replay) produces identical
/// results faster.
pub fn run_on<B: MemoryBackend + ?Sized>(
    name: &str,
    system: &mut B,
    trace: &Trace,
) -> Result<RunResult, CoreError> {
    // Control cycles spent while configuring the system (tint setup, preloads) are kept
    // and added to any control work performed during the run itself.
    let control_before = system.control_cycles();
    system.reset_stats();
    for ev in trace {
        system.access(ev.addr, ev.is_write());
    }
    Ok(collect_result(name, system, control_before))
}

/// Assembles a [`RunResult`] from a backend's statistics after a replay.
pub(crate) fn collect_result<B: MemoryBackend + ?Sized>(
    name: &str,
    system: &B,
    control_before: u64,
) -> RunResult {
    let report = system.cycle_report(false);
    let cache = system.cache_stats();
    let mem = system.stats();
    RunResult {
        name: name.to_owned(),
        memory_cycles: mem.memory_cycles,
        control_cycles: control_before + system.control_cycles(),
        report,
        references: mem.references,
        hits: cache.hits,
        misses: cache.misses + cache.bypasses,
        writebacks: cache.writebacks,
        uncached: mem.uncached_accesses,
    }
}

/// Convenience: variables of a workload sorted by decreasing access density
/// (accesses per byte), the ranking used to pick scratchpad residents.
pub fn rank_by_density(trace: &Trace, symbols: &SymbolTable) -> Vec<(VarId, u64, f64)> {
    let profile = ccache_trace::AccessProfile::from_trace(trace, symbols);
    let mut ranked: Vec<(VarId, u64, f64)> = profile
        .iter()
        .map(|p| (p.var, p.size, p.access_density()))
        .collect();
    ranked.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccache_sim::{LatencyConfig, MemorySystem};
    use ccache_trace::synth::sequential_scan;

    fn config() -> SystemConfig {
        SystemConfig {
            page_size: 256,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn empty_mapping_behaves_like_plain_cache() {
        let trace = sequential_scan(0x1000, 1024, 32, 4, 2, None);
        let result = run_trace("plain", config(), &CacheMapping::new(), &trace).unwrap();
        assert_eq!(result.references, trace.len() as u64);
        // second pass hits everything that fits: 1 KiB < 2 KiB cache
        assert!(result.hits >= 32);
        assert!(result.cpi() > 1.0);
        assert_eq!(result.name, "plain");
        assert!(result.total_cycles() <= result.total_cycles_with_control());
    }

    #[test]
    fn exclusive_mapping_protects_a_region_from_streaming() {
        // hot region of one column (512 B), plus a large streaming region
        let hot = sequential_scan(0x0, 512, 32, 4, 1, None);
        let stream = sequential_scan(0x10_0000, 64 * 1024, 32, 4, 1, None);
        let hot_again = sequential_scan(0x0, 512, 32, 4, 1, None);
        let trace = Trace::concat([&hot, &stream, &hot_again]);

        // Unprotected: the stream evicts the hot region.
        let unprotected = run_trace("unprotected", config(), &CacheMapping::new(), &trace).unwrap();

        // Protected: the hot region owns column 0 exclusively.
        let mut mapping = CacheMapping::new();
        mapping.map(
            0x0,
            512,
            RegionMapping::Exclusive {
                mask: ColumnMask::single(0),
                preload: true,
            },
        );
        let protected = run_trace("protected", config(), &mapping, &trace).unwrap();

        assert!(
            protected.misses < unprotected.misses,
            "exclusive mapping should reduce misses ({} vs {})",
            protected.misses,
            unprotected.misses
        );
        assert!(protected.control_cycles > 0, "preload must be charged");
        assert!(protected.total_cycles() < unprotected.total_cycles());
    }

    #[test]
    fn uncached_mapping_bypasses_the_cache() {
        let trace = sequential_scan(0x2000, 256, 32, 4, 3, None);
        let mut mapping = CacheMapping::new();
        mapping.map(0x2000, 256, RegionMapping::Uncached);
        let result = run_trace("uncached", config(), &mapping, &trace).unwrap();
        assert_eq!(result.hits, 0);
        assert_eq!(result.uncached, trace.len() as u64);
    }

    #[test]
    fn column_restriction_limits_footprint() {
        // stream bigger than one column, restricted to column 2
        let trace = sequential_scan(0x0, 4096, 32, 4, 1, None);
        let mut mapping = CacheMapping::new();
        mapping.map(
            0x0,
            4096,
            RegionMapping::Columns {
                mask: ColumnMask::single(2),
            },
        );
        let mut system = MemorySystem::new(config()).unwrap();
        mapping.apply(&mut system).unwrap();
        for ev in &trace {
            system.access(ev.addr, ev.is_write());
        }
        // only column 2 holds lines
        assert_eq!(system.cache().occupancy(0).unwrap(), 0);
        assert_eq!(system.cache().occupancy(1).unwrap(), 0);
        assert!(system.cache().occupancy(2).unwrap() > 0);
        assert_eq!(system.cache().occupancy(3).unwrap(), 0);
    }

    #[test]
    fn default_mask_steers_unmapped_pages() {
        let mut mapping = CacheMapping::new();
        mapping.default_mask = Some(ColumnMask::from_columns([1, 3]));
        let trace = sequential_scan(0x9000, 2048, 32, 4, 1, None);
        let mut system = MemorySystem::new(config()).unwrap();
        mapping.apply(&mut system).unwrap();
        for ev in &trace {
            system.access(ev.addr, ev.is_write());
        }
        assert_eq!(system.cache().occupancy(0).unwrap(), 0);
        assert_eq!(system.cache().occupancy(2).unwrap(), 0);
        assert!(system.cache().occupancy(1).unwrap() > 0);
    }

    #[test]
    fn run_on_resets_statistics_between_calls() {
        let trace = sequential_scan(0x1000, 512, 32, 4, 1, None);
        let mut system = MemorySystem::new(config()).unwrap();
        let first = run_on("first", &mut system, &trace).unwrap();
        let second = run_on("second", &mut system, &trace).unwrap();
        assert_eq!(first.references, second.references);
        // second run hits in the warm cache
        assert!(second.hits > first.hits);
    }

    #[test]
    fn rank_by_density_prefers_hot_small_variables() {
        use ccache_trace::{AccessKind, TraceRecorder};
        let mut rec = TraceRecorder::new();
        let hot = rec.allocate("hot", 64, 8);
        let cold = rec.allocate("cold", 4096, 8);
        for i in 0..100u64 {
            rec.record(hot, (i % 8) * 8, 8, AccessKind::Read);
        }
        for i in 0..100u64 {
            rec.record(cold, i * 8, 8, AccessKind::Read);
        }
        let (trace, symbols) = rec.finish();
        let ranked = rank_by_density(&trace, &symbols);
        assert_eq!(ranked[0].0, hot);
        assert!(ranked[0].2 > ranked[1].2);
    }

    #[test]
    fn zero_penalty_latency_counts_only_hits() {
        let cfg = SystemConfig {
            latency: LatencyConfig::zero_penalty(),
            page_size: 256,
            ..SystemConfig::default()
        };
        let trace = sequential_scan(0x0, 256, 32, 4, 1, None);
        let result = run_trace("zero", cfg, &CacheMapping::new(), &trace).unwrap();
        assert_eq!(result.memory_cycles, trace.len() as u64);
    }
}
