//! Checkpoint-parallel replay of a single trace.
//!
//! Sweeps parallelise trivially — every point owns its system — but one long trace on
//! one configuration is inherently sequential: each reference sees the cache state left
//! by every reference before it. This module breaks that chain with the engine's own
//! snapshot machinery. A **sequential warm-up pass** replays the trace once, cloning the
//! backend at each segment boundary ([`ReplayEngine::checkpoint`](crate::engine::ReplayEngine::checkpoint)); each clone *is* the
//! exact state the corresponding segment starts from. The segments can then replay
//! concurrently from their checkpoints ([`ReplayCheckpoints::replay`]), and because
//! every statistic the simulator keeps is additive, summing the per-segment counters
//! reproduces the sequential [`RunResult`] byte for byte (property-tested in
//! `tests/checkpoint_parity.rs`).
//!
//! The warm-up pass costs one sequential replay, so this pays off when the *same* trace
//! is replayed repeatedly from the same programmed state — the optimizer's fitness
//! loop, A/B latency studies, and the `ccache bench` harness — or when checkpoints are
//! retained and only a suffix of the trace is re-examined.
//!
//! Worker fan-out uses the same [`par_map`] primitive as the
//! sweep executor, so the `parallel` feature gates threading here too; with the feature
//! off the segments replay serially with identical results.

use crate::parallel::par_map;
use crate::runner::RunResult;
use ccache_sim::backend::MemoryBackend;
use ccache_sim::{CacheStats, CycleReport, MemoryStats};
use ccache_trace::Trace;

/// Per-segment checkpoints of a backend, recorded by [`ReplayEngine::checkpoint`](crate::engine::ReplayEngine::checkpoint)
/// during one sequential warm-up replay.
///
/// [`ReplayEngine::checkpoint`](crate::engine::ReplayEngine::checkpoint): crate::engine::ReplayEngine::checkpoint
pub struct ReplayCheckpoints {
    /// `checkpoints[s]` is the backend state immediately before segment `s` replays.
    checkpoints: Vec<Box<dyn MemoryBackend>>,
    /// Segment boundaries into the trace: segment `s` covers `bounds[s]..bounds[s + 1]`.
    bounds: Vec<usize>,
    /// Length of the trace the checkpoints were recorded against.
    trace_len: usize,
    /// Control cycles accumulated before the warm-up replay began (programming the
    /// backend), carried into every merged result exactly like sequential replay.
    control_before: u64,
    /// Batch size the owning engine used; workers stage references the same way.
    batch: usize,
}

/// Additive statistics one worker brings back from its segment.
struct SegmentStats {
    mem: MemoryStats,
    cache: CacheStats,
    control: u64,
}

impl ReplayCheckpoints {
    pub(crate) fn new(
        checkpoints: Vec<Box<dyn MemoryBackend>>,
        bounds: Vec<usize>,
        trace_len: usize,
        control_before: u64,
        batch: usize,
    ) -> Self {
        debug_assert_eq!(bounds.len(), checkpoints.len() + 1);
        ReplayCheckpoints {
            checkpoints,
            bounds,
            trace_len,
            control_before,
            batch,
        }
    }

    /// Number of segments the trace was split into (always at least 1).
    pub fn segments(&self) -> usize {
        self.checkpoints.len()
    }

    /// Length of the trace these checkpoints were recorded against; only that exact
    /// trace can be replayed through them.
    pub fn trace_len(&self) -> usize {
        self.trace_len
    }

    /// Replays `trace` across all segments — in parallel with the `parallel` feature
    /// enabled — and merges the per-segment statistics into one [`RunResult`] that is
    /// byte-identical to a sequential [`replay`](crate::engine::ReplayEngine::replay)
    /// of the same trace from the same starting state.
    ///
    /// # Panics
    ///
    /// Panics if `trace` does not have the length the checkpoints were recorded
    /// against: checkpoints encode mid-trace cache state, so replaying a different
    /// trace through them would silently produce garbage.
    pub fn replay(&self, name: &str, trace: &Trace) -> RunResult {
        assert_eq!(
            trace.len(),
            self.trace_len,
            "checkpoints were recorded against a trace of {} events, got {}",
            self.trace_len,
            trace.len()
        );
        let events = trace.as_slice();
        let segments: Vec<usize> = (0..self.segments()).collect();
        let parts = par_map(&segments, |&s| {
            let mut backend = self.checkpoints[s].boxed_clone();
            backend.reset_stats();
            let mut buffer: Vec<(u64, bool)> = Vec::with_capacity(self.batch);
            for chunk in events[self.bounds[s]..self.bounds[s + 1]].chunks(self.batch) {
                buffer.clear();
                buffer.extend(chunk.iter().map(|ev| (ev.addr, ev.is_write())));
                backend.run_batch(&buffer);
            }
            SegmentStats {
                mem: *backend.stats(),
                cache: backend.cache_stats().clone(),
                control: backend.control_cycles(),
            }
        });
        self.merge(name, &parts)
    }

    /// As [`ReplayCheckpoints::replay`], over already-decoded `(addr, is_write)`
    /// references — the form the fitness datapath's shared trace arena holds. Workers
    /// feed subslices of `refs` to the backend directly, with no per-chunk staging copy;
    /// the batch boundaries are identical to the trace path, so for the same event
    /// stream the result is byte-identical to [`ReplayCheckpoints::replay`].
    ///
    /// # Panics
    ///
    /// Panics if `refs` does not have the length the checkpoints were recorded against,
    /// for the same reason as [`ReplayCheckpoints::replay`].
    pub fn replay_refs(&self, name: &str, refs: &[(u64, bool)]) -> RunResult {
        assert_eq!(
            refs.len(),
            self.trace_len,
            "checkpoints were recorded against a trace of {} events, got {}",
            self.trace_len,
            refs.len()
        );
        let segments: Vec<usize> = (0..self.segments()).collect();
        let parts = par_map(&segments, |&s| {
            let mut backend = self.checkpoints[s].boxed_clone();
            backend.reset_stats();
            for chunk in refs[self.bounds[s]..self.bounds[s + 1]].chunks(self.batch) {
                backend.run_batch(chunk);
            }
            SegmentStats {
                mem: *backend.stats(),
                cache: backend.cache_stats().clone(),
                control: backend.control_cycles(),
            }
        });
        self.merge(name, &parts)
    }

    /// Sums per-segment statistics into one [`RunResult`]. Every counter is additive
    /// across segments, so the merge is a plain sum; the CPI report is then derived
    /// through the same single function every backend uses, from the summed counters.
    fn merge(&self, name: &str, parts: &[SegmentStats]) -> RunResult {
        let mut mem = MemoryStats::default();
        let mut cache = CacheStats::default();
        let mut control_during = 0u64;
        for part in parts {
            mem += &part.mem;
            cache += &part.cache;
            control_during += part.control;
        }
        let latency = self.checkpoints[0].config().latency;
        RunResult {
            name: name.to_owned(),
            memory_cycles: mem.memory_cycles,
            control_cycles: self.control_before + control_during,
            report: CycleReport::from_stats(&mem, &latency, control_during, false),
            references: mem.references,
            hits: cache.hits,
            misses: cache.misses + cache.bypasses,
            writebacks: cache.writebacks,
            uncached: mem.uncached_accesses,
        }
    }
}

impl std::fmt::Debug for ReplayCheckpoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayCheckpoints")
            .field("segments", &self.segments())
            .field("trace_len", &self.trace_len)
            .field("batch", &self.batch)
            .finish()
    }
}

/// Splits `len` events into `segments` contiguous ranges whose sizes differ by at most
/// one, returned as `segments + 1` boundary indices.
pub(crate) fn segment_bounds(len: usize, segments: usize) -> Vec<usize> {
    let segments = segments.max(1);
    let base = len / segments;
    let rem = len % segments;
    let mut bounds = Vec::with_capacity(segments + 1);
    let mut pos = 0usize;
    bounds.push(0);
    for s in 0..segments {
        pos += base + usize::from(s < rem);
        bounds.push(pos);
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_cover_the_trace_evenly() {
        assert_eq!(segment_bounds(10, 3), vec![0, 4, 7, 10]);
        assert_eq!(segment_bounds(9, 3), vec![0, 3, 6, 9]);
        assert_eq!(segment_bounds(2, 4), vec![0, 1, 2, 2, 2]);
        assert_eq!(segment_bounds(0, 1), vec![0, 0]);
        assert_eq!(segment_bounds(5, 1), vec![0, 5]);
    }

    #[test]
    fn bounds_clamp_zero_segments() {
        assert_eq!(segment_bounds(4, 0), vec![0, 4]);
    }
}
