//! Deterministic thread-parallel mapping for experiment sweeps.
//!
//! Sweep points (partition counts, scheduling quanta) are embarrassingly parallel: each
//! builds and drives its own simulated memory system. [`par_map`] fans a slice out over
//! scoped `std::thread` workers and returns results **in input order**, so a sweep's
//! output — and therefore its serialized `SweepReport` — is byte-identical whether the
//! `parallel` feature is on or off.
//!
//! With the `parallel` feature disabled (or a single-item input, or a single-CPU
//! machine) the map degrades to a plain serial loop.

/// Upper bound on worker threads, to keep small machines responsive.
#[cfg(feature = "parallel")]
const MAX_THREADS: usize = 16;

/// Applies `f` to every item, possibly in parallel, preserving input order.
#[cfg(feature = "parallel")]
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    par_map_threads(items, f, threads)
}

/// [`par_map`] with an explicit worker count (clamped to the item count and the
/// 16-thread cap). Exposed so tests can exercise the threaded path even on single-CPU
/// machines.
#[cfg(feature = "parallel")]
pub fn par_map_threads<T, R, F>(items: &[T], f: F, threads: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    let threads = threads.min(n).min(MAX_THREADS);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                collected.lock().expect("no poisoned worker").push((i, r));
            });
        }
    });
    let mut tagged = collected.into_inner().expect("workers joined");
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Serial fallback when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    items.iter().map(f).collect()
}

/// Serial stand-in for the explicit-thread variant when `parallel` is disabled.
#[cfg(not(feature = "parallel"))]
pub fn par_map_threads<T, R, F>(items: &[T], f: F, _threads: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    items.iter().map(f).collect()
}

/// Always-serial mapping, for measuring the parallel speed-up and for the
/// byte-identical-output tests.
pub fn seq_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    F: Fn(&T) -> R,
{
    items.iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let squares = par_map(&items, |&x| x * x);
        assert_eq!(squares, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn forced_threads_agree_with_serial() {
        // Forces real worker threads even on single-CPU machines.
        let items: Vec<u64> = (0..37).collect();
        let f = |&x: &u64| (0..x).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i));
        for threads in [2, 4, 16, 64] {
            assert_eq!(par_map_threads(&items, f, threads), seq_map(&items, f));
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
        assert_eq!(par_map_threads(&[7u64, 8], |&x| x + 1, 8), vec![8, 9]);
    }
}
