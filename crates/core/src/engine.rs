//! The replay engine: batched trace replay over a pluggable memory backend, with cheap
//! snapshot/reset between sweep points.
//!
//! The seed replayed traces one reference at a time through a concrete `MemorySystem`,
//! and every sweep point rebuilt the whole system. [`ReplayEngine`] replaces that path:
//!
//! * references are fed to the backend in **batches** ([`MemoryBackend::run_batch`]),
//!   which lets the column-cache backend short-circuit address translation for
//!   consecutive same-page references — statistics stay identical to per-reference
//!   replay, only wall-clock time changes;
//! * [`ReplayEngine::snapshot`] captures the fully programmed system (tints, page table,
//!   preloaded lines) and [`ReplayEngine::reset`] restores it, so a sweep can reprogram
//!   tints from a warm starting point instead of reconstructing and re-mapping;
//! * the backend is a `Box<dyn MemoryBackend>`, so the same engine drives the column
//!   cache, the set-associative baseline or the ideal scratchpad.

use crate::checkpoint::ReplayCheckpoints;
use crate::error::CoreError;
use crate::observe::{ReplayObserver, WindowTracker};
use crate::runner::{CacheMapping, RunResult};
use ccache_sim::backend::{BackendKind, MemoryBackend};
use ccache_sim::registry::BackendRegistry;
use ccache_sim::SystemConfig;
use ccache_telemetry::{Counter, Registry, Span};
use ccache_trace::Trace;

/// References handed to the backend per [`MemoryBackend::run_batch`] call.
///
/// Large enough to amortise the per-batch bookkeeping and keep the last-page translation
/// cache effective, small enough that the staging buffer stays in L1/L2.
const DEFAULT_BATCH: usize = 4096;

/// Batched trace replay over a pluggable, snapshottable memory backend.
///
/// # Example: build a backend, program tints, replay, read stats
///
/// ```
/// use ccache_core::engine::ReplayEngine;
/// use ccache_core::runner::{CacheMapping, RegionMapping};
/// use ccache_sim::backend::BackendKind;
/// use ccache_sim::{ColumnMask, SystemConfig};
/// use ccache_trace::synth::sequential_scan;
///
/// let config = SystemConfig { page_size: 256, ..SystemConfig::default() };
/// let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config)?;
///
/// // Program tints: confine a streaming region to column 3 so it cannot evict the rest.
/// let mut mapping = CacheMapping::new();
/// mapping.map(0x10_0000, 16 * 1024, RegionMapping::Columns { mask: ColumnMask::single(3) });
/// engine.apply(&mapping)?;
///
/// // Replay a trace and read the statistics.
/// let trace = sequential_scan(0x10_0000, 16 * 1024, 32, 4, 2, None);
/// let result = engine.replay("stream", &trace);
/// assert_eq!(result.references, trace.len() as u64);
/// assert!(result.total_cycles() > 0);
/// assert!(result.miss_rate() > 0.0);
/// # Ok::<(), ccache_core::CoreError>(())
/// ```
pub struct ReplayEngine {
    backend: Box<dyn MemoryBackend>,
    /// Taken lazily: one-shot replays (every partition-sweep point) never pay for a
    /// snapshot clone they would not use.
    snapshot: Option<Box<dyn MemoryBackend>>,
    batch: usize,
    buffer: Vec<(u64, bool)>,
    telemetry: EngineTelemetry,
}

/// Pre-resolved telemetry handles, bound once per engine so the replay loops never
/// touch the registry. All accounting happens *after* a replay finishes (the counters
/// are fed from the backend's own statistics), so the hot loop is untouched and results
/// stay byte-identical with or without a registry attached.
#[derive(Clone)]
struct EngineTelemetry {
    replays: Counter,
    batches: Counter,
    references: Counter,
    tlb_hits: Counter,
    tlb_misses: Counter,
    memo_translation_hits: Counter,
    memo_tint_hits: Counter,
    coalesced_windows: Counter,
    checkpoint_segments: Counter,
    checkpoint_warmup: Span,
}

impl EngineTelemetry {
    fn bind(registry: &Registry) -> Self {
        EngineTelemetry {
            replays: registry.counter("engine.replays"),
            batches: registry.counter("engine.batches"),
            references: registry.counter("engine.references"),
            tlb_hits: registry.counter("engine.tlb.hits"),
            tlb_misses: registry.counter("engine.tlb.misses"),
            memo_translation_hits: registry.counter("engine.memo.translation_hits"),
            memo_tint_hits: registry.counter("engine.memo.tint_hits"),
            coalesced_windows: registry.counter("engine.observe.coalesced_windows"),
            checkpoint_segments: registry.counter("engine.checkpoint.segments"),
            checkpoint_warmup: registry.span("engine.checkpoint.warmup"),
        }
    }

    /// Post-replay accounting: fold the backend's per-replay statistics (absolute since
    /// the `reset_stats` at replay start) into the counters.
    fn record_replay(&self, backend: &dyn MemoryBackend, batches: u64) {
        let stats = backend.stats();
        let memo = backend.memo_stats();
        self.replays.incr();
        self.batches.add(batches);
        self.references.add(stats.references);
        self.tlb_hits.add(stats.tlb_hits);
        self.tlb_misses.add(stats.tlb_misses);
        self.memo_translation_hits.add(memo.translation_hits);
        self.memo_tint_hits.add(memo.tint_hits);
    }

    /// Counts the coalesced tail of an observed replay: when `window` does not divide
    /// the reference count, the remainder is emitted as one final *partial* window
    /// rather than silently truncated — this counter is the visible record of that.
    fn record_observed_tail(&self, backend: &dyn MemoryBackend, window: u64) {
        let references = backend.stats().references;
        if references > 0 && window > 0 && !references.is_multiple_of(window) {
            self.coalesced_windows.incr();
        }
    }
}

impl ReplayEngine {
    /// Creates an engine over a freshly built backend of the given kind.
    ///
    /// Construction routes through the shared [`BackendRegistry`], the same factory
    /// table every backend-name parse site resolves against.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(kind: BackendKind, config: SystemConfig) -> Result<Self, CoreError> {
        ReplayEngine::from_registry(BackendRegistry::global(), kind.canonical_name(), config)
    }

    /// Creates an engine over a backend resolved **by name** through a registry — the
    /// `Session` facade path, which makes user-registered backends replayable with the
    /// exact engine the built-ins use.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown backend names or invalid configurations.
    pub fn from_registry(
        registry: &BackendRegistry,
        name: &str,
        config: SystemConfig,
    ) -> Result<Self, CoreError> {
        Ok(ReplayEngine::from_backend(registry.build(name, config)?))
    }

    /// Creates an engine over an existing backend.
    pub fn from_backend(backend: Box<dyn MemoryBackend>) -> Self {
        ReplayEngine {
            backend,
            snapshot: None,
            batch: DEFAULT_BATCH,
            buffer: Vec::with_capacity(DEFAULT_BATCH),
            telemetry: EngineTelemetry::bind(&Registry::global()),
        }
    }

    /// Rebinds the engine's telemetry to `registry` (the process-wide
    /// [`Registry::global`] is bound at construction). Sessions and servers that own a
    /// private registry route their engines here; results are unaffected — telemetry
    /// accounting happens outside the replay loops, from statistics the backend
    /// maintains anyway.
    pub fn set_telemetry(&mut self, registry: &Registry) {
        self.telemetry = EngineTelemetry::bind(registry);
    }

    /// Read-only view of the backend.
    pub fn backend(&self) -> &dyn MemoryBackend {
        self.backend.as_ref()
    }

    /// Mutable access to the backend, for control operations between replays.
    pub fn backend_mut(&mut self) -> &mut dyn MemoryBackend {
        self.backend.as_mut()
    }

    /// Overrides the batch size (mainly for tests and the bench harness; 0 is treated
    /// as 1). This is the **only** place the ≥ 1 invariant is enforced — the replay
    /// loops rely on it and never re-clamp.
    pub fn set_batch_size(&mut self, batch: usize) {
        self.batch = batch.max(1);
    }

    /// References handed to the backend per [`MemoryBackend::run_batch`] call.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Programs a cache mapping into the backend.
    ///
    /// # Errors
    ///
    /// Returns an error if a mask in the mapping is invalid for the backend's cache.
    pub fn apply(&mut self, mapping: &CacheMapping) -> Result<(), CoreError> {
        mapping.apply(self.backend.as_mut())
    }

    /// Captures the backend's current state — contents, mappings, statistics — as the
    /// state [`ReplayEngine::reset`] returns to.
    ///
    /// # Contract (the optimizer inner loop)
    ///
    /// `snapshot`/`reset` round-trips are cheap (one backend clone each, no replay) and
    /// panic-free **in any order**: snapshotting a freshly built engine, resetting before
    /// any snapshot, and resetting twice in a row are all well defined. A search that
    /// evaluates many mappings under one geometry snapshots the pristine engine once and
    /// then `reset` + [`apply`](ReplayEngine::apply) + [`replay`](ReplayEngine::replay)
    /// per candidate, never paying for reconstruction:
    ///
    /// ```
    /// use ccache_core::engine::ReplayEngine;
    /// use ccache_core::runner::{CacheMapping, RegionMapping};
    /// use ccache_sim::backend::BackendKind;
    /// use ccache_sim::{ColumnMask, SystemConfig};
    /// use ccache_trace::synth::sequential_scan;
    ///
    /// let config = SystemConfig { page_size: 256, ..SystemConfig::default() };
    /// let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config)?;
    /// engine.reset();    // before any snapshot or replay: a no-op back to pristine
    /// engine.snapshot(); // the state every candidate evaluation starts from
    ///
    /// let trace = sequential_scan(0x0, 4096, 32, 4, 2, None);
    /// let mut results = Vec::new();
    /// for column in 0..4 {
    ///     engine.reset(); // back to the pristine snapshot, mappings and stats cleared
    ///     let mut mapping = CacheMapping::new();
    ///     mapping.map(0x0, 4096, RegionMapping::Columns { mask: ColumnMask::single(column) });
    ///     engine.apply(&mapping)?;
    ///     results.push(engine.replay("candidate", &trace));
    /// }
    /// // every candidate saw an identical starting state; by symmetry the four
    /// // single-column restrictions perform identically
    /// assert!(results.iter().all(|r| r.references == trace.len() as u64));
    /// assert_eq!(results[0], results[3]);
    /// # Ok::<(), ccache_core::CoreError>(())
    /// ```
    pub fn snapshot(&mut self) {
        self.snapshot = Some(self.backend.boxed_clone());
    }

    /// Returns `true` if a snapshot has been taken (and [`ReplayEngine::reset`] will
    /// restore it rather than the just-constructed state).
    pub fn has_snapshot(&self) -> bool {
        self.snapshot.is_some()
    }

    /// Drops the snapshot, so the next [`ReplayEngine::reset`] returns the backend to its
    /// just-constructed state.
    pub fn clear_snapshot(&mut self) {
        self.snapshot = None;
    }

    /// Restores the backend to the last snapshot; with no snapshot taken, returns it to
    /// its just-constructed state ([`MemoryBackend::full_reset`]).
    ///
    /// Safe to call at any point — including before any snapshot or replay — and
    /// idempotent: consecutive resets land on the same state. See
    /// [`ReplayEngine::snapshot`] for the full round-trip contract.
    pub fn reset(&mut self) {
        match &self.snapshot {
            Some(snap) => self.backend = snap.boxed_clone(),
            None => self.backend.full_reset(),
        }
    }

    /// Replays a trace in batches and collects a [`RunResult`].
    ///
    /// Statistics are reset first and cover this replay only, like
    /// [`run_on`](crate::runner::run_on); control cycles spent programming the backend
    /// beforehand are carried into the result. The result is bit-identical to
    /// per-reference replay — batching only changes wall-clock time.
    pub fn replay(&mut self, name: &str, trace: &Trace) -> RunResult {
        let control_before = self.backend.control_cycles();
        self.backend.reset_stats();
        let mut batches = 0u64;
        for chunk in trace.as_slice().chunks(self.batch) {
            self.buffer.clear();
            self.buffer
                .extend(chunk.iter().map(|ev| (ev.addr, ev.is_write())));
            self.backend.run_batch(&self.buffer);
            batches += 1;
        }
        self.telemetry.record_replay(self.backend.as_ref(), batches);
        crate::runner::collect_result(name, self.backend.as_ref(), control_before)
    }

    /// As [`ReplayEngine::replay`], over already-decoded `(addr, is_write)` references.
    ///
    /// This is the fitness datapath's hot loop: the tuner decodes the trace once into a
    /// shared arena and every candidate replays from it, so the per-replay staging copy
    /// of [`ReplayEngine::replay`] disappears — chunks of `refs` go to
    /// [`MemoryBackend::run_batch`] directly. Batch boundaries are identical to the
    /// trace path, so for the same event stream the result is byte-identical.
    pub fn replay_refs(&mut self, name: &str, refs: &[(u64, bool)]) -> RunResult {
        let control_before = self.backend.control_cycles();
        self.backend.reset_stats();
        let mut batches = 0u64;
        for chunk in refs.chunks(self.batch) {
            self.backend.run_batch(chunk);
            batches += 1;
        }
        self.telemetry.record_replay(self.backend.as_ref(), batches);
        crate::runner::collect_result(name, self.backend.as_ref(), control_before)
    }

    /// Replays a binary-format trace straight from a streaming
    /// [`TraceReader`](ccache_trace::binfmt::TraceReader), without materialising it in
    /// memory: events are decoded into the engine's staging buffer one batch at a time
    /// and fed to [`MemoryBackend::run_batch`], so a trace file larger than RAM replays
    /// in bounded memory.
    ///
    /// Statistics behave exactly like [`ReplayEngine::replay`], and for the same event
    /// stream the results are bit-identical (property-tested in
    /// `tests/trace_format.rs`).
    ///
    /// # Errors
    ///
    /// Propagates I/O and format errors from the reader; the replay stops at the first
    /// bad batch.
    pub fn replay_reader<R: std::io::BufRead>(
        &mut self,
        name: &str,
        reader: &mut ccache_trace::binfmt::TraceReader<R>,
    ) -> std::io::Result<RunResult> {
        let control_before = self.backend.control_cycles();
        self.backend.reset_stats();
        let mut batches = 0u64;
        loop {
            self.buffer.clear();
            if reader.read_chunk(&mut self.buffer, self.batch)? == 0 {
                break;
            }
            self.backend.run_batch(&self.buffer);
            batches += 1;
        }
        self.telemetry.record_replay(self.backend.as_ref(), batches);
        Ok(crate::runner::collect_result(
            name,
            self.backend.as_ref(),
            control_before,
        ))
    }

    /// As [`ReplayEngine::replay`], with a streaming [`ReplayObserver`] receiving one
    /// [`WindowSample`](crate::observe::WindowSample) every `window` references (plus a
    /// final partial window).
    ///
    /// Window boundaries only shorten *batch* boundaries, and batch size never changes
    /// statistics, so the returned [`RunResult`] is byte-identical to an unobserved
    /// [`ReplayEngine::replay`] of the same trace (property-tested in
    /// `tests/observer_parity.rs`). The unobserved path stays a separate function that
    /// never consults an observer, so turning observation off costs literally nothing.
    pub fn replay_observed(
        &mut self,
        name: &str,
        trace: &Trace,
        window: u64,
        observer: &mut dyn ReplayObserver,
    ) -> RunResult {
        let control_before = self.backend.control_cycles();
        self.backend.reset_stats();
        let mut tracker = WindowTracker::new(window);
        let events = trace.as_slice();
        let mut pos = 0usize;
        let mut batches = 0u64;
        while pos < events.len() {
            let n = (tracker.until_boundary(pos as u64) as usize)
                .min(self.batch)
                .min(events.len() - pos);
            self.buffer.clear();
            self.buffer.extend(
                events[pos..pos + n]
                    .iter()
                    .map(|ev| (ev.addr, ev.is_write())),
            );
            self.backend.run_batch(&self.buffer);
            pos += n;
            batches += 1;
            tracker.observe(self.backend.as_ref(), observer, pos == events.len());
        }
        self.telemetry.record_replay(self.backend.as_ref(), batches);
        self.telemetry
            .record_observed_tail(self.backend.as_ref(), window);
        crate::runner::collect_result(name, self.backend.as_ref(), control_before)
    }

    /// As [`ReplayEngine::replay_reader`], with a streaming [`ReplayObserver`] — the
    /// observed counterpart for traces replayed straight from disk. Statistics are
    /// identical to the unobserved streaming replay.
    ///
    /// # Errors
    ///
    /// Propagates I/O and format errors from the reader.
    pub fn replay_reader_observed<R: std::io::BufRead>(
        &mut self,
        name: &str,
        reader: &mut ccache_trace::binfmt::TraceReader<R>,
        window: u64,
        observer: &mut dyn ReplayObserver,
    ) -> std::io::Result<RunResult> {
        let control_before = self.backend.control_cycles();
        self.backend.reset_stats();
        let mut tracker = WindowTracker::new(window);
        let mut replayed = 0u64;
        let mut batches = 0u64;
        loop {
            let cap = (tracker.until_boundary(replayed) as usize)
                .min(self.batch)
                .max(1);
            self.buffer.clear();
            if reader.read_chunk(&mut self.buffer, cap)? == 0 {
                break;
            }
            self.backend.run_batch(&self.buffer);
            replayed += self.buffer.len() as u64;
            batches += 1;
            tracker.observe(self.backend.as_ref(), observer, false);
        }
        // Flush the final partial window now that the stream length is known.
        tracker.observe(self.backend.as_ref(), observer, true);
        self.telemetry.record_replay(self.backend.as_ref(), batches);
        self.telemetry
            .record_observed_tail(self.backend.as_ref(), window);
        Ok(crate::runner::collect_result(
            name,
            self.backend.as_ref(),
            control_before,
        ))
    }

    /// Records per-segment [`ReplayCheckpoints`] for `trace` with one sequential
    /// warm-up replay: the trace is split into `segments` contiguous ranges (clamped to
    /// `1..=trace.len()`), the backend is cloned at each boundary, and the segments can
    /// then replay concurrently via [`ReplayCheckpoints::replay`] with results
    /// byte-identical to [`ReplayEngine::replay`].
    ///
    /// The warm-up behaves exactly like [`ReplayEngine::replay`] as far as the engine
    /// is concerned — statistics are reset first and the backend ends in the
    /// whole-trace end state — only the [`RunResult`] assembly is deferred to the
    /// checkpoints.
    pub fn checkpoint(&mut self, trace: &Trace, segments: usize) -> ReplayCheckpoints {
        let events = trace.as_slice();
        let segments = segments.clamp(1, events.len().max(1));
        let bounds = crate::checkpoint::segment_bounds(events.len(), segments);
        let control_before = self.backend.control_cycles();
        self.backend.reset_stats();
        let warmup = self.telemetry.checkpoint_warmup.start();
        let mut checkpoints = Vec::with_capacity(segments);
        for s in 0..segments {
            checkpoints.push(self.backend.boxed_clone());
            for chunk in events[bounds[s]..bounds[s + 1]].chunks(self.batch) {
                self.buffer.clear();
                self.buffer
                    .extend(chunk.iter().map(|ev| (ev.addr, ev.is_write())));
                self.backend.run_batch(&self.buffer);
            }
        }
        drop(warmup);
        self.telemetry.checkpoint_segments.add(segments as u64);
        ReplayCheckpoints::new(
            checkpoints,
            bounds,
            events.len(),
            control_before,
            self.batch,
        )
    }

    /// As [`ReplayEngine::checkpoint`], over already-decoded `(addr, is_write)`
    /// references from a shared trace arena. The warm-up feeds subslices of `refs` to
    /// the backend directly (no staging copy); segment boundaries, statistics handling
    /// and the backend's end state are identical to the trace path, so the recorded
    /// checkpoints replay byte-identically.
    pub fn checkpoint_refs(&mut self, refs: &[(u64, bool)], segments: usize) -> ReplayCheckpoints {
        let segments = segments.clamp(1, refs.len().max(1));
        let bounds = crate::checkpoint::segment_bounds(refs.len(), segments);
        let control_before = self.backend.control_cycles();
        self.backend.reset_stats();
        let warmup = self.telemetry.checkpoint_warmup.start();
        let mut checkpoints = Vec::with_capacity(segments);
        for s in 0..segments {
            checkpoints.push(self.backend.boxed_clone());
            for chunk in refs[bounds[s]..bounds[s + 1]].chunks(self.batch) {
                self.backend.run_batch(chunk);
            }
        }
        drop(warmup);
        self.telemetry.checkpoint_segments.add(segments as u64);
        ReplayCheckpoints::new(checkpoints, bounds, refs.len(), control_before, self.batch)
    }

    /// Convenience: [`ReplayEngine::checkpoint`] followed by one
    /// [`ReplayCheckpoints::replay`] — a checkpoint-parallel replay of one trace whose
    /// result is byte-identical to the sequential [`ReplayEngine::replay`].
    ///
    /// The warm-up pass is itself a full sequential replay, so a single
    /// checkpoint-parallel run is *not* faster than `replay`; the win comes from
    /// keeping the checkpoints and replaying the same trace many times (fitness loops,
    /// benchmarking), or treating the warm-up as the first of many measured runs.
    pub fn replay_checkpointed(&mut self, name: &str, trace: &Trace, segments: usize) -> RunResult {
        let checkpoints = self.checkpoint(trace, segments);
        checkpoints.replay(name, trace)
    }
}

impl Clone for ReplayEngine {
    fn clone(&self) -> Self {
        ReplayEngine {
            backend: self.backend.boxed_clone(),
            snapshot: self.snapshot.as_ref().map(|s| s.boxed_clone()),
            batch: self.batch,
            buffer: Vec::with_capacity(self.batch),
            telemetry: self.telemetry.clone(),
        }
    }
}

impl std::fmt::Debug for ReplayEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayEngine")
            .field("backend", &self.backend.name())
            .field("batch", &self.batch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_on, RegionMapping};
    use ccache_sim::{ColumnMask, MemorySystem};
    use ccache_trace::synth::sequential_scan;

    fn config() -> SystemConfig {
        SystemConfig {
            page_size: 256,
            ..SystemConfig::default()
        }
    }

    fn mapping() -> CacheMapping {
        let mut m = CacheMapping::new();
        m.map(
            0x0,
            512,
            RegionMapping::Exclusive {
                mask: ColumnMask::single(0),
                preload: true,
            },
        );
        m.map(0x8000, 256, RegionMapping::Uncached);
        m
    }

    fn trace() -> ccache_trace::Trace {
        let hot = sequential_scan(0x0, 512, 32, 4, 2, None);
        let stream = sequential_scan(0x10_0000, 16 * 1024, 32, 4, 1, None);
        let uncached = sequential_scan(0x8000, 256, 32, 4, 1, None);
        ccache_trace::Trace::concat([&hot, &stream, &uncached])
    }

    #[test]
    fn batched_replay_matches_per_reference_replay() {
        let t = trace();
        let m = mapping();

        let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        engine.apply(&m).unwrap();
        let batched = engine.replay("x", &t);

        let mut system = MemorySystem::new(config()).unwrap();
        m.apply(&mut system).unwrap();
        let per_ref = run_on("x", &mut system, &t).unwrap();

        assert_eq!(batched, per_ref);
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let t = trace();
        let mut small = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        small.set_batch_size(3);
        let mut large = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        large.set_batch_size(1 << 20);
        assert_eq!(small.replay("x", &t), large.replay("x", &t));
    }

    #[test]
    fn refs_paths_match_the_trace_paths() {
        let t = trace();
        let refs: Vec<(u64, bool)> = t
            .as_slice()
            .iter()
            .map(|ev| (ev.addr, ev.is_write()))
            .collect();
        let m = mapping();

        let mut a = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        a.apply(&m).unwrap();
        let mut b = a.clone();
        let from_trace = a.replay("x", &t);
        let from_refs = b.replay_refs("x", &refs);
        assert_eq!(from_trace, from_refs);

        // checkpoint_refs reproduces the sequential result through both replay paths
        let mut c = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        c.apply(&m).unwrap();
        let cps = c.checkpoint_refs(&refs, 3);
        assert_eq!(cps.replay_refs("x", &refs), from_refs);
        assert_eq!(cps.replay("x", &t), from_refs);
    }

    #[test]
    fn snapshot_reset_round_trips_state() {
        let t = trace();
        let m = mapping();
        let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        engine.apply(&m).unwrap();
        engine.snapshot();

        let first = engine.replay("run", &t);
        engine.reset();
        let second = engine.replay("run", &t);
        assert_eq!(
            first, second,
            "reset must restore the programmed state exactly"
        );
    }

    #[test]
    fn reset_without_snapshot_returns_to_construction_state() {
        let t = trace();
        let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        let pristine = engine.replay("cold", &t);
        engine.reset(); // back to an empty, unmapped system
        let again = engine.replay("cold", &t);
        assert_eq!(pristine, again);
    }

    #[test]
    fn snapshot_and_reset_are_safe_before_any_replay() {
        let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        assert!(!engine.has_snapshot());
        engine.reset(); // no snapshot, nothing replayed: must not panic
        engine.reset(); // idempotent
        engine.snapshot(); // snapshot of a pristine engine
        assert!(engine.has_snapshot());
        engine.reset();

        // the pristine snapshot behaves exactly like a fresh engine
        let t = trace();
        let from_snapshot = engine.replay("x", &t);
        let mut fresh = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        assert_eq!(from_snapshot, fresh.replay("x", &t));

        engine.clear_snapshot();
        assert!(!engine.has_snapshot());
        engine.reset(); // back to full_reset semantics, still panic-free
        assert_eq!(engine.replay("x", &t), fresh.replay("x", &t));
    }

    #[test]
    fn repeated_reset_apply_replay_is_stable() {
        // The optimizer inner loop: many candidates from one pristine snapshot.
        let t = trace();
        let m = mapping();
        let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        engine.snapshot();
        let mut results = Vec::new();
        for _ in 0..3 {
            engine.reset();
            engine.apply(&m).unwrap();
            results.push(engine.replay("candidate", &t));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn streaming_replay_matches_in_memory_replay() {
        let t = trace();
        let m = mapping();
        let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        engine.apply(&m).unwrap();
        engine.snapshot();
        let in_memory = engine.replay("x", &t);

        let mut bytes = Vec::new();
        ccache_trace::binfmt::write_trace(&t, &mut bytes).unwrap();
        engine.reset();
        let mut reader = ccache_trace::binfmt::TraceReader::new(&bytes[..]).unwrap();
        let streamed = engine.replay_reader("x", &mut reader).unwrap();

        assert_eq!(in_memory, streamed);
    }

    #[test]
    fn engine_drives_every_backend_kind() {
        let t = trace();
        for kind in BackendKind::ALL {
            let mut engine = ReplayEngine::new(kind, config()).unwrap();
            engine.apply(&mapping()).unwrap();
            let result = engine.replay("k", &t);
            assert_eq!(result.references, t.len() as u64);
            assert!(result.total_cycles() > 0);
        }
    }
}
