//! Report formatting: the tables and series printed by the benchmark harness, and the
//! JSON renderings of every experiment result (the `--json` artefacts of the figure
//! binaries).

use crate::dynamic::{DynamicRunResult, Figure4dResult, PhaseResult};
use crate::multitask::{JobMetrics, MultitaskRun, QuantumSeries, SharingPolicy};
use crate::partition::{PartitionConfig, PartitionPoint, PartitionSweep};
use crate::runner::RunResult;
use ccache_json::{Json, ToJson};
use std::fmt::Write as _;

/// Renders a partition sweep (one panel of Figure 4) as an ASCII table:
/// cache columns, scratchpad columns, cycle count, miss count.
pub fn partition_table(sweep: &PartitionSweep) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} — cycle count vs. cache size (columns)",
        sweep.name
    );
    let _ = writeln!(
        out,
        "{:>13} {:>18} {:>12} {:>10} {:>10}",
        "cache_columns", "scratchpad_columns", "cycles", "misses", "hit_rate"
    );
    for p in &sweep.points {
        let hit_rate = if p.result.references == 0 {
            0.0
        } else {
            p.result.hits as f64 / p.result.references as f64
        };
        let _ = writeln!(
            out,
            "{:>13} {:>18} {:>12} {:>10} {:>9.1}%",
            p.cache_columns,
            p.scratchpad_columns,
            p.cycles,
            p.result.misses,
            hit_rate * 100.0
        );
    }
    out
}

/// Renders the Figure 4(d) comparison: every static partition against the column cache.
pub fn figure4d_table(result: &Figure4dResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# combined application — static partitions vs. column cache"
    );
    let _ = writeln!(out, "{:>22} {:>12}", "configuration", "cycles");
    for (cols, cycles) in &result.static_cycles {
        let _ = writeln!(out, "{:>22} {:>12}", format!("static cache={cols}"), cycles);
    }
    let _ = writeln!(
        out,
        "{:>22} {:>12}",
        "column cache (dynamic)", result.column_cache_cycles
    );
    let _ = writeln!(
        out,
        "{:>22} {:>12}",
        "  + remap overhead",
        result.column_cache_cycles + result.column_cache_control_cycles
    );
    let (best_cols, best) = result.best_static();
    let _ = writeln!(
        out,
        "best static partition: cache={best_cols} ({best} cycles); column cache {}",
        if result.column_cache_wins() {
            "wins or ties"
        } else {
            "does not win"
        }
    );
    out
}

/// Renders one or more Figure 5 series (CPI vs. quantum) as an aligned table with one
/// column per series.
pub fn quantum_table(series: &[QuantumSeries]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# clocks per instruction of job A vs. context-switch quantum"
    );
    let _ = write!(out, "{:>10}", "quantum");
    for s in series {
        let _ = write!(out, " {:>18}", s.label);
    }
    let _ = writeln!(out);
    let quanta: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|&(q, _)| q).collect())
        .unwrap_or_default();
    for (i, q) in quanta.iter().enumerate() {
        let _ = write!(out, "{q:>10}");
        for s in series {
            match s.points.get(i) {
                Some(&(_, cpi)) => {
                    let _ = write!(out, " {cpi:>18.3}");
                }
                None => {
                    let _ = write!(out, " {:>18}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    for s in series {
        let _ = writeln!(
            out,
            "{}: min CPI {:.3}, max CPI {:.3}, variation {:.3}",
            s.label,
            s.min_cpi(),
            s.max_cpi(),
            s.variation()
        );
    }
    out
}

/// Serialises any report payload to pretty JSON (for EXPERIMENTS.md artefacts).
pub fn to_json<T: ToJson>(value: &T) -> String {
    value.to_json().pretty()
}

/// The JSON artefact of one figure run: the sweeps of every routine plus the optional
/// Figure 4(d) comparison, under a fixed configuration.
///
/// Serialization is deterministic (fixed key order, no maps), so two structurally equal
/// reports — e.g. one computed serially and one in parallel — render byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Which figure the report reproduces (e.g. `"4"`).
    pub figure: String,
    /// The partition-experiment configuration the sweeps ran under.
    pub config: PartitionConfig,
    /// One sweep per routine.
    pub sweeps: Vec<PartitionSweep>,
    /// The static-vs-dynamic comparison, when the combined application was run.
    pub figure4d: Option<Figure4dResult>,
}

impl SweepReport {
    /// Renders the report as pretty JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }
}

impl ToJson for SweepReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("figure", self.figure.to_json()),
            ("config", self.config.to_json()),
            ("sweeps", self.sweeps.to_json()),
            ("figure4d", self.figure4d.to_json()),
        ])
    }
}

impl ToJson for RunResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("memory_cycles", self.memory_cycles.to_json()),
            ("control_cycles", self.control_cycles.to_json()),
            ("report", self.report.to_json()),
            ("references", self.references.to_json()),
            ("hits", self.hits.to_json()),
            ("misses", self.misses.to_json()),
            ("writebacks", self.writebacks.to_json()),
            ("uncached", self.uncached.to_json()),
        ])
    }
}

impl ToJson for crate::observe::WindowSample {
    fn to_json(&self) -> Json {
        Json::obj([
            ("index", self.index.to_json()),
            ("start", self.start.to_json()),
            ("references", self.references.to_json()),
            ("hits", self.hits.to_json()),
            ("misses", self.misses.to_json()),
            ("memory_cycles", self.memory_cycles.to_json()),
            ("miss_rate", self.miss_rate().to_json()),
            ("cpi", self.cpi.to_json()),
        ])
    }
}

impl ToJson for crate::observe::ReplayEvent {
    fn to_json(&self) -> Json {
        use crate::observe::ReplayEvent;
        match self {
            ReplayEvent::PhaseStart { name, at_ref } => Json::obj([
                ("kind", "phase-start".to_json()),
                ("label", name.to_json()),
                ("at_ref", at_ref.to_json()),
            ]),
            ReplayEvent::Remap {
                label,
                at_ref,
                regions,
            } => Json::obj([
                ("kind", "remap".to_json()),
                ("label", label.to_json()),
                ("at_ref", at_ref.to_json()),
                ("regions", regions.to_json()),
            ]),
            ReplayEvent::PhaseEnd {
                name,
                at_ref,
                cycles,
            } => Json::obj([
                ("kind", "phase-end".to_json()),
                ("label", name.to_json()),
                ("at_ref", at_ref.to_json()),
                ("cycles", cycles.to_json()),
            ]),
        }
    }
}

impl ToJson for crate::observe::TimeSeries {
    fn to_json(&self) -> Json {
        Json::obj([
            ("window", self.window.to_json()),
            ("samples", self.samples.to_json()),
            ("events", self.events.to_json()),
        ])
    }
}

impl ToJson for PartitionConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("capacity_bytes", self.capacity_bytes.to_json()),
            ("columns", self.columns.to_json()),
            ("line_size", self.line_size.to_json()),
            ("page_size", self.page_size.to_json()),
            ("latency", self.latency.to_json()),
            ("include_control", self.include_control.to_json()),
        ])
    }
}

impl ToJson for PartitionPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cache_columns", self.cache_columns.to_json()),
            ("scratchpad_columns", self.scratchpad_columns.to_json()),
            ("cycles", self.cycles.to_json()),
            ("scratchpad_vars", self.scratchpad_vars.to_json()),
            ("result", self.result.to_json()),
        ])
    }
}

impl ToJson for PartitionSweep {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("points", self.points.to_json()),
        ])
    }
}

impl ToJson for Figure4dResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("static_cycles", self.static_cycles.to_json()),
            ("column_cache_cycles", self.column_cache_cycles.to_json()),
            (
                "column_cache_control_cycles",
                self.column_cache_control_cycles.to_json(),
            ),
        ])
    }
}

impl ToJson for PhaseResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("result", self.result.to_json()),
            ("layout_cost", self.layout_cost.to_json()),
            ("preloaded_columns", self.preloaded_columns.to_json()),
        ])
    }
}

impl ToJson for DynamicRunResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("phases", self.phases.to_json()),
            ("cycles", self.cycles.to_json()),
            ("control_cycles", self.control_cycles.to_json()),
        ])
    }
}

impl ToJson for SharingPolicy {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                SharingPolicy::Shared => "shared",
                SharingPolicy::Mapped => "mapped",
            }
            .to_owned(),
        )
    }
}

impl ToJson for JobMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("references", self.references.to_json()),
            ("memory_cycles", self.memory_cycles.to_json()),
            ("instructions", self.instructions.to_json()),
            ("cpi", self.cpi.to_json()),
        ])
    }
}

impl ToJson for MultitaskRun {
    fn to_json(&self) -> Json {
        Json::obj([
            ("quantum", self.quantum.to_json()),
            ("policy", self.policy.to_json()),
            ("jobs", self.jobs.to_json()),
            ("context_switches", self.context_switches.to_json()),
        ])
    }
}

impl ToJson for QuantumSeries {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", self.label.to_json()),
            ("points", self.points.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multitask::QuantumSeries;

    #[test]
    fn quantum_table_lists_every_series_and_quantum() {
        let a = QuantumSeries {
            label: "gzip.16k".into(),
            points: vec![(1, 2.8), (4, 2.5)],
        };
        let b = QuantumSeries {
            label: "gzip.16k mapped".into(),
            points: vec![(1, 1.9), (4, 1.9)],
        };
        let table = quantum_table(&[a, b]);
        assert!(table.contains("gzip.16k"));
        assert!(table.contains("mapped"));
        assert!(table.contains("2.800"));
        assert!(table.contains("1.900"));
        assert!(table.contains("variation"));
    }

    #[test]
    fn figure4d_table_reports_winner() {
        let r = Figure4dResult {
            static_cycles: vec![(0, 1000), (4, 800)],
            column_cache_cycles: 700,
            column_cache_control_cycles: 50,
        };
        let t = figure4d_table(&r);
        assert!(t.contains("column cache"));
        assert!(t.contains("700"));
        assert!(t.contains("wins"));
        assert!(t.contains("750"));
    }

    #[test]
    fn to_json_round_trips_simple_values() {
        struct S {
            x: u32,
        }
        impl ToJson for S {
            fn to_json(&self) -> Json {
                Json::obj([("x", self.x.to_json())])
            }
        }
        let s = to_json(&S { x: 4 });
        assert!(s.contains("\"x\": 4"));
    }
}
