//! The multitasking experiment of Figure 5.
//!
//! Three gzip jobs run round-robin on one processor. With a standard cache every job may
//! replace any line, so job A's hit rate — and therefore its CPI — depends strongly on how
//! often it is interrupted (the context-switch quantum). With a mapped column cache job A
//! owns a set of columns exclusively and the other jobs share the remainder, so job A's
//! CPI is both lower and nearly independent of the quantum.

use crate::error::CoreError;
use crate::parallel::par_map;
use ccache_sim::backend::{build_backend, BackendKind, MemoryBackend};
use ccache_sim::{CacheConfig, ColumnMask, LatencyConfig, SystemConfig, Tint};
use ccache_trace::Trace;
use ccache_workloads::multitask::{round_robin, Job, Schedule};

/// Configuration of the multitasking experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultitaskConfig {
    /// Total cache capacity in bytes (the paper uses 16 KiB and 128 KiB).
    pub capacity_bytes: u64,
    /// Number of columns.
    pub columns: usize,
    /// Line size in bytes.
    pub line_size: u64,
    /// Page size of the TLB/page table.
    pub page_size: u64,
    /// Latency model.
    pub latency: LatencyConfig,
    /// Columns given exclusively to the critical job (job 0) in the mapped configuration.
    pub critical_job_columns: usize,
}

/// The latency model used by the Figure 5 experiment: a deeper memory hierarchy than
/// the 2 KiB on-chip memory of Figure 4, so misses are more expensive. Public so the
/// experiment layer (`ccache-exp`) can offer it as a named preset.
pub fn figure5_latency() -> LatencyConfig {
    LatencyConfig {
        miss_penalty: 60,
        writeback_penalty: 30,
        uncached_latency: 70,
        ..LatencyConfig::default()
    }
}

impl MultitaskConfig {
    /// The 16 KiB configuration of Figure 5 (8 columns of 2 KiB). The critical job is
    /// "exclusively assigned a large fraction of the cache" — 6 of the 8 columns — so its
    /// hot working set fits in its private columns.
    pub fn cache_16k() -> Self {
        MultitaskConfig {
            capacity_bytes: 16 * 1024,
            columns: 8,
            line_size: 32,
            page_size: 1024,
            latency: figure5_latency(),
            critical_job_columns: 6,
        }
    }

    /// The 128 KiB configuration of Figure 5.
    pub fn cache_128k() -> Self {
        MultitaskConfig {
            capacity_bytes: 128 * 1024,
            columns: 8,
            line_size: 32,
            page_size: 1024,
            latency: figure5_latency(),
            critical_job_columns: 4,
        }
    }

    /// The simulator configuration for this experiment.
    pub fn system_config(&self) -> Result<SystemConfig, CoreError> {
        let cache = CacheConfig::builder()
            .capacity_bytes(self.capacity_bytes)
            .columns(self.columns)
            .line_size(self.line_size)
            .build()?;
        Ok(SystemConfig {
            cache,
            latency: self.latency,
            page_size: self.page_size,
            tlb_entries: 128,
        })
    }
}

impl Default for MultitaskConfig {
    fn default() -> Self {
        MultitaskConfig::cache_16k()
    }
}

/// Whether the column cache is partitioned between jobs or shared as a standard cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingPolicy {
    /// Standard cache: every job may replace any line.
    Shared,
    /// Mapped column cache: job 0 owns `critical_job_columns` columns exclusively and the
    /// other jobs share the remaining columns.
    Mapped,
}

/// Per-job results of one multitasking run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMetrics {
    /// Job name.
    pub name: String,
    /// References issued by the job.
    pub references: u64,
    /// Memory cycles attributed to the job.
    pub memory_cycles: u64,
    /// Instructions attributed to the job (references × instructions-per-reference).
    pub instructions: u64,
    /// Clocks per instruction of the job.
    pub cpi: f64,
}

/// Result of one multitasking run (one quantum, one sharing policy).
#[derive(Debug, Clone, PartialEq)]
pub struct MultitaskRun {
    /// The context-switch quantum in references.
    pub quantum: usize,
    /// The sharing policy used.
    pub policy: SharingPolicy,
    /// Per-job metrics, in job order.
    pub jobs: Vec<JobMetrics>,
    /// Number of context switches performed.
    pub context_switches: u64,
}

impl MultitaskRun {
    /// Metrics of the critical job (job 0, "job A" in the paper).
    pub fn critical_job(&self) -> &JobMetrics {
        &self.jobs[0]
    }
}

/// Address span `[min, max)` of a trace, for tinting a job's whole address space.
fn address_span(trace: &Trace) -> (u64, u64) {
    let stats = trace.stats();
    (stats.min_addr, stats.max_addr + 1)
}

/// Replays an interleaved schedule, attributing cycles and references to the issuing
/// job. The schedule is contiguous per quantum, so each owner-run is handed to the
/// backend as one batch (same statistics as per-reference replay, less overhead).
fn replay_schedule(
    system: &mut dyn MemoryBackend,
    schedule: &Schedule,
    jobs: usize,
    quantum: usize,
) -> (Vec<u64>, Vec<u64>) {
    let mut per_job_cycles = vec![0u64; jobs];
    let mut per_job_refs = vec![0u64; jobs];
    let events = schedule.merged.as_slice();
    let owners = &schedule.owner;
    let mut batch: Vec<(u64, bool)> = Vec::with_capacity(quantum.min(events.len()).max(1));
    let mut start = 0usize;
    while start < events.len() {
        let owner = owners[start];
        let mut end = start + 1;
        while end < events.len() && owners[end] == owner {
            end += 1;
        }
        batch.clear();
        batch.extend(events[start..end].iter().map(|ev| (ev.addr, ev.is_write())));
        per_job_cycles[owner] += system.run_batch(&batch);
        per_job_refs[owner] += (end - start) as u64;
        start = end;
    }
    (per_job_cycles, per_job_refs)
}

/// Runs one multitasking experiment point on the column cache.
///
/// # Errors
///
/// Returns an error if the cache geometry is invalid or the mapped configuration requests
/// more exclusive columns than exist.
pub fn run_multitasking(
    jobs: &[Job],
    quantum: usize,
    config: &MultitaskConfig,
    policy: SharingPolicy,
) -> Result<MultitaskRun, CoreError> {
    run_multitasking_on(BackendKind::ColumnCache, jobs, quantum, config, policy)
}

/// Runs one multitasking experiment point on any backend kind.
///
/// With [`SharingPolicy::Mapped`] on a backend that ignores tint control (the baseline
/// kinds), the run degrades to the shared behaviour — useful for checking that the
/// benefit really comes from the mapping.
///
/// # Errors
///
/// Returns an error if the cache geometry is invalid or the mapped configuration requests
/// more exclusive columns than exist.
pub fn run_multitasking_on(
    kind: BackendKind,
    jobs: &[Job],
    quantum: usize,
    config: &MultitaskConfig,
    policy: SharingPolicy,
) -> Result<MultitaskRun, CoreError> {
    if jobs.is_empty() {
        return Err(CoreError::BadExperiment {
            reason: "no jobs supplied".to_owned(),
        });
    }
    if config.critical_job_columns >= config.columns {
        return Err(CoreError::BadExperiment {
            reason: format!("critical job cannot own all {} columns", config.columns),
        });
    }
    let mut system = build_backend(kind, config.system_config()?)?;

    if policy == SharingPolicy::Mapped {
        // Job 0 owns columns [0, critical_job_columns); the others share the rest.
        let critical_mask = ColumnMask::range(0, config.critical_job_columns);
        let other_mask = ColumnMask::range(
            config.critical_job_columns,
            config.columns - config.critical_job_columns,
        );
        system.define_tint(Tint(1), critical_mask)?;
        system.define_tint(Tint(2), other_mask)?;
        // Unmapped pages (there should be none) stay off the critical columns too.
        system.define_tint(Tint::DEFAULT, other_mask)?;
        for (j, job) in jobs.iter().enumerate() {
            let (lo, hi) = address_span(&job.trace);
            let tint = if j == 0 { Tint(1) } else { Tint(2) };
            system.tint_range(lo..hi, tint);
        }
    }

    let schedule: Schedule = round_robin(jobs, quantum);
    let (per_job_cycles, per_job_refs) =
        replay_schedule(system.as_mut(), &schedule, jobs.len(), quantum);

    let lat = config.latency;
    let jobs_metrics = jobs
        .iter()
        .enumerate()
        .map(|(j, job)| {
            let instructions = per_job_refs[j] * lat.instructions_per_reference;
            let compute = instructions * lat.compute_cycles_per_instruction;
            let total = compute + per_job_cycles[j];
            JobMetrics {
                name: job.name.clone(),
                references: per_job_refs[j],
                memory_cycles: per_job_cycles[j],
                instructions,
                cpi: if instructions == 0 {
                    0.0
                } else {
                    total as f64 / instructions as f64
                },
            }
        })
        .collect();
    Ok(MultitaskRun {
        quantum,
        policy,
        jobs: jobs_metrics,
        context_switches: schedule.context_switches,
    })
}

/// One series of Figure 5: the critical job's CPI at every quantum, for one cache size and
/// one sharing policy.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantumSeries {
    /// Label of the series (e.g. `"gzip.16k mapped"`).
    pub label: String,
    /// `(quantum, cpi)` points in increasing quantum order.
    pub points: Vec<(usize, f64)>,
}

impl QuantumSeries {
    /// Largest CPI in the series.
    pub fn max_cpi(&self) -> f64 {
        self.points.iter().map(|&(_, c)| c).fold(0.0, f64::max)
    }

    /// Smallest CPI in the series.
    pub fn min_cpi(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, c)| c)
            .fold(f64::INFINITY, f64::min)
    }

    /// Peak-to-trough CPI variation (the paper's "performance variation").
    pub fn variation(&self) -> f64 {
        self.max_cpi() - self.min_cpi()
    }
}

/// Sweeps the quantum for one configuration and policy, reporting the critical job's CPI.
///
/// Quanta are independent sweep points (each replays its own system), so with the
/// `parallel` feature they run on worker threads; points are collected in quantum order,
/// making the series deterministic either way.
pub fn quantum_sweep(
    jobs: &[Job],
    quanta: &[usize],
    config: &MultitaskConfig,
    policy: SharingPolicy,
    label: &str,
) -> Result<QuantumSeries, CoreError> {
    let points = par_map(quanta, |&q| {
        run_multitasking(jobs, q, config, policy).map(|run| (q, run.critical_job().cpi))
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    Ok(QuantumSeries {
        label: label.to_owned(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccache_workloads::gzipsim::{run_gzip_job, GzipConfig};

    fn small_jobs() -> Vec<Job> {
        (0..3)
            .map(|j| {
                let cfg = GzipConfig {
                    input_len: 3000,
                    ..GzipConfig::small()
                }
                .with_seed(100 + j as u64);
                let run = run_gzip_job(&cfg, 0x100_0000 * (j as u64 + 1), &format!("gzip-{j}"));
                Job::new(run.name.clone(), run.trace)
            })
            .collect()
    }

    fn tiny_cache() -> MultitaskConfig {
        // deliberately tiny so the jobs interfere heavily and the test is fast
        MultitaskConfig {
            capacity_bytes: 4 * 1024,
            columns: 8,
            line_size: 32,
            page_size: 1024,
            latency: LatencyConfig::default(),
            critical_job_columns: 4,
        }
    }

    #[test]
    fn every_reference_is_attributed_to_its_job() {
        let jobs = small_jobs();
        let run = run_multitasking(&jobs, 64, &tiny_cache(), SharingPolicy::Shared).unwrap();
        for (j, job) in jobs.iter().enumerate() {
            assert_eq!(run.jobs[j].references, job.trace.len() as u64);
            assert!(run.jobs[j].cpi >= 1.0);
        }
        assert!(run.context_switches > 0);
        assert_eq!(run.critical_job().name, "gzip-0");
    }

    #[test]
    fn mapping_reduces_cpi_sensitivity_to_the_quantum() {
        let jobs = small_jobs();
        let cfg = tiny_cache();
        let quanta = [16usize, 256, 4096, 65536];
        let shared = quantum_sweep(&jobs, &quanta, &cfg, SharingPolicy::Shared, "shared").unwrap();
        let mapped = quantum_sweep(&jobs, &quanta, &cfg, SharingPolicy::Mapped, "mapped").unwrap();
        assert!(
            mapped.variation() < shared.variation(),
            "mapped variation {} should be below shared variation {}",
            mapped.variation(),
            shared.variation()
        );
        // at the smallest quantum, mapping must help the critical job
        assert!(mapped.points[0].1 <= shared.points[0].1);
    }

    #[test]
    fn shared_cpi_improves_with_larger_quanta() {
        let jobs = small_jobs();
        let cfg = tiny_cache();
        let small_q = run_multitasking(&jobs, 4, &cfg, SharingPolicy::Shared).unwrap();
        let large_q = run_multitasking(&jobs, 1 << 20, &cfg, SharingPolicy::Shared).unwrap();
        assert!(
            large_q.critical_job().cpi <= small_q.critical_job().cpi,
            "batch-style scheduling should not be slower ({} vs {})",
            large_q.critical_job().cpi,
            small_q.critical_job().cpi
        );
    }

    #[test]
    fn bad_configurations_are_rejected() {
        let jobs = small_jobs();
        let mut cfg = tiny_cache();
        cfg.critical_job_columns = 8;
        assert!(run_multitasking(&jobs, 16, &cfg, SharingPolicy::Mapped).is_err());
        assert!(run_multitasking(&[], 16, &tiny_cache(), SharingPolicy::Shared).is_err());
    }

    #[test]
    fn series_statistics() {
        let s = QuantumSeries {
            label: "x".into(),
            points: vec![(1, 2.5), (4, 2.0), (16, 1.5)],
        };
        assert_eq!(s.max_cpi(), 2.5);
        assert_eq!(s.min_cpi(), 1.5);
        assert!((s.variation() - 1.0).abs() < 1e-12);
    }
}
