//! The scratchpad/cache partition sweep of Figure 4.
//!
//! For a fixed 2 KB, 4-column on-chip memory the experiment varies how many columns are
//! used as cache (0–4) with the remainder dedicated as scratchpad, and measures the cycle
//! count of each MPEG routine under the best data layout for that partition:
//!
//! 1. variables are ranked by access density and greedily packed into the scratchpad
//!    capacity (the paper's "critical data" selection, following Panda et al.);
//! 2. the selected variables are *placed* contiguously in a column-aligned block so the
//!    scratchpad columns hold them without internal conflicts, and every other variable is
//!    placed page-aligned;
//! 3. the scratchpad block is mapped exclusively (and pre-loaded) onto the scratchpad
//!    columns, and the remaining variables are assigned to the cache columns by the
//!    layout algorithm of Section 3;
//! 4. the routine's reference stream is replayed and its cycle count recorded.

use crate::error::CoreError;
use crate::parallel::{par_map, seq_map};
use crate::placement::{pack_scratchpad_first, relocate};
use crate::runner::{run_trace_on, CacheMapping, RegionMapping, RunResult};
use ccache_layout::weights::conflict_graph_from_trace;
use ccache_layout::{assign_columns, ConflictGraph, LayoutOptions, WeightOptions};
use ccache_sim::backend::BackendKind;
use ccache_sim::{CacheConfig, ColumnMask, LatencyConfig, SystemConfig};
use ccache_trace::{AccessProfile, SymbolTable, Trace, VarId};
use ccache_workloads::WorkloadRun;
use std::collections::BTreeSet;

/// Base address of the packed scratchpad block in the relocated memory map.
const SCRATCHPAD_BASE: u64 = 0x4_0000;
/// Base address of the page-aligned general variables in the relocated memory map.
const GENERAL_BASE: u64 = 0x10_0000;

/// Configuration of a partition-sweep experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Total on-chip memory in bytes (paper: 2048).
    pub capacity_bytes: u64,
    /// Number of columns (paper: 4).
    pub columns: usize,
    /// Cache-line size in bytes (paper-era embedded lines: 32).
    pub line_size: u64,
    /// Mapping granularity (page size) of the simulated TLB/page table.
    pub page_size: u64,
    /// Latency model.
    pub latency: LatencyConfig,
    /// Whether the reported cycle count includes software control overhead (tint setup and
    /// scratchpad preloads). The paper's figures treat scratchpad contents as established
    /// ahead of the measured region, so the default is `false`.
    pub include_control: bool,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            capacity_bytes: 2048,
            columns: 4,
            line_size: 32,
            page_size: 128,
            latency: LatencyConfig::default(),
            include_control: false,
        }
    }
}

impl PartitionConfig {
    /// Size of one column in bytes.
    pub fn column_bytes(&self) -> u64 {
        self.capacity_bytes / self.columns as u64
    }

    /// The simulator system configuration for this partition experiment.
    pub fn system_config(&self) -> Result<SystemConfig, CoreError> {
        let cache = CacheConfig::builder()
            .capacity_bytes(self.capacity_bytes)
            .columns(self.columns)
            .line_size(self.line_size)
            .build()?;
        Ok(SystemConfig {
            cache,
            latency: self.latency,
            page_size: self.page_size,
            tlb_entries: 64,
        })
    }
}

/// One point of the partition sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionPoint {
    /// Number of columns used as cache (the x-axis of Figure 4).
    pub cache_columns: usize,
    /// Number of columns dedicated as scratchpad.
    pub scratchpad_columns: usize,
    /// Cycle count of the routine under this partition (the y-axis of Figure 4).
    pub cycles: u64,
    /// Names of the variables resident in the scratchpad.
    pub scratchpad_vars: Vec<String>,
    /// Detailed run statistics.
    pub result: RunResult,
}

/// The full sweep for one routine.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSweep {
    /// Name of the routine.
    pub name: String,
    /// One point per cache-column count, in increasing order (0..=columns).
    pub points: Vec<PartitionPoint>,
}

impl PartitionSweep {
    /// The point with the lowest cycle count.
    pub fn best(&self) -> &PartitionPoint {
        self.points
            .iter()
            .min_by_key(|p| p.cycles)
            .expect("sweep has at least one point")
    }

    /// The cycle count at a given number of cache columns.
    pub fn cycles_at(&self, cache_columns: usize) -> Option<u64> {
        self.points
            .iter()
            .find(|p| p.cache_columns == cache_columns)
            .map(|p| p.cycles)
    }
}

/// Greedily selects the variables to hold in `capacity` bytes of scratchpad, by decreasing
/// access density, skipping variables that do not fit in the remaining space.
pub fn select_scratchpad_vars(trace: &Trace, symbols: &SymbolTable, capacity: u64) -> Vec<VarId> {
    if capacity == 0 {
        return Vec::new();
    }
    let profile = AccessProfile::from_trace(trace, symbols);
    let mut ranked: Vec<_> = profile.iter().collect();
    ranked.sort_by(|a, b| {
        b.access_density()
            .partial_cmp(&a.access_density())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.var.cmp(&b.var))
    });
    let mut selected = Vec::new();
    let mut used = 0u64;
    for p in ranked {
        if p.size > 0 && used + p.size <= capacity {
            selected.push(p.var);
            used += p.size;
        }
    }
    selected
}

/// Runs one partition point for a workload on the column cache: `cache_columns` columns
/// of cache, the rest scratchpad.
pub fn run_partition_point(
    workload: &WorkloadRun,
    config: &PartitionConfig,
    cache_columns: usize,
) -> Result<PartitionPoint, CoreError> {
    run_partition_point_on(BackendKind::ColumnCache, workload, config, cache_columns)
}

/// Runs one partition point against any backend kind. On the set-associative baseline
/// the scratchpad mapping degrades to ordinary cached accesses (the control operations
/// are ignored), which is exactly the "standard cache" comparison line.
pub fn run_partition_point_on(
    kind: BackendKind,
    workload: &WorkloadRun,
    config: &PartitionConfig,
    cache_columns: usize,
) -> Result<PartitionPoint, CoreError> {
    if cache_columns > config.columns {
        return Err(CoreError::BadPartition {
            scratchpad_columns: config.columns - cache_columns.min(config.columns),
            columns: config.columns,
        });
    }
    let scratchpad_columns = config.columns - cache_columns;
    let column_bytes = config.column_bytes();
    let scratchpad_capacity = scratchpad_columns as u64 * column_bytes;

    // 1. Pick the scratchpad residents.
    let scratch_vars =
        select_scratchpad_vars(&workload.trace, &workload.symbols, scratchpad_capacity);
    let scratch_set: BTreeSet<VarId> = scratch_vars.iter().copied().collect();

    // 2. Relocate: scratchpad residents packed contiguously, everything else page-aligned.
    let plan = pack_scratchpad_first(
        &workload.symbols,
        &scratch_vars,
        SCRATCHPAD_BASE,
        GENERAL_BASE,
        config.page_size,
    );
    let (trace, symbols) = relocate(&workload.trace, &workload.symbols, &plan);

    // 3. Build the cache mapping.
    let mut mapping = CacheMapping::new();
    let scratch_bytes: u64 = scratch_vars
        .iter()
        .filter_map(|v| symbols.region(*v))
        .map(|r| r.size)
        .sum();
    if scratchpad_columns > 0 && scratch_bytes > 0 {
        let scratch_mask = ColumnMask::range(cache_columns, scratchpad_columns);
        mapping.map(
            SCRATCHPAD_BASE,
            scratch_bytes,
            RegionMapping::Exclusive {
                mask: scratch_mask,
                preload: true,
            },
        );
    }

    // The remaining variables go to the cache columns via the layout algorithm.
    let weight_opts = WeightOptions {
        column_bytes,
        split_large_variables: true,
        min_accesses: 1,
    };
    let (graph, units) = conflict_graph_from_trace(&trace, &symbols, &weight_opts);
    // Reduce the graph to the units of non-scratchpad variables.
    let mut reduced = ConflictGraph::new();
    let mut reduced_to_unit: Vec<usize> = Vec::new();
    for (idx, vertex) in graph.vertices() {
        if !scratch_set.contains(&vertex.var) {
            reduced.add_vertex(vertex.clone());
            reduced_to_unit.push(idx);
        }
    }
    for i in 0..reduced_to_unit.len() {
        for j in (i + 1)..reduced_to_unit.len() {
            let w = graph.weight(reduced_to_unit[i], reduced_to_unit[j]);
            if w > 0 {
                reduced.set_weight(i, j, w);
            }
        }
    }

    if cache_columns == 0 {
        // No cache at all: whatever is not in the scratchpad bypasses to main memory.
        for &unit_idx in &reduced_to_unit {
            let unit = units.unit(unit_idx).expect("unit index valid");
            if let Some(region) = symbols.region(unit.var) {
                mapping.map(
                    region.base + unit.offset,
                    unit.size,
                    RegionMapping::Uncached,
                );
            }
        }
    } else {
        let layout_opts = LayoutOptions::new(cache_columns, column_bytes);
        let assignment = assign_columns(&reduced, &layout_opts)?;
        for (ri, &unit_idx) in reduced_to_unit.iter().enumerate() {
            let unit = units.unit(unit_idx).expect("unit index valid");
            let column = assignment
                .column_of_vertex(ri)
                .expect("assignment covers every vertex");
            if let Some(region) = symbols.region(unit.var) {
                mapping.map(
                    region.base + unit.offset,
                    unit.size,
                    RegionMapping::Columns {
                        mask: ColumnMask::single(column),
                    },
                );
            }
        }
        if scratchpad_columns > 0 {
            mapping.default_mask = Some(ColumnMask::range(0, cache_columns));
        }
    }

    // 4. Replay (batched, through the replay engine).
    let system_config = config.system_config()?;
    let result = run_trace_on(
        kind,
        &format!("{}-cache{}", workload.name, cache_columns),
        system_config,
        &mapping,
        &trace,
    )?;
    let cycles = if config.include_control {
        result.total_cycles_with_control()
    } else {
        result.total_cycles()
    };
    let scratchpad_names = scratch_vars
        .iter()
        .filter_map(|v| symbols.region(*v).map(|r| r.name.clone()))
        .collect();
    Ok(PartitionPoint {
        cache_columns,
        scratchpad_columns,
        cycles,
        scratchpad_vars: scratchpad_names,
        result,
    })
}

/// Runs the full partition sweep (cache columns 0..=columns) for one workload.
///
/// Sweep points are independent — each builds, programs and replays its own system — so
/// with the `parallel` feature (the default) they run on worker threads. Results are
/// collected in point order; the sweep is byte-for-byte identical to
/// [`partition_sweep_serial`].
pub fn partition_sweep(
    workload: &WorkloadRun,
    config: &PartitionConfig,
) -> Result<PartitionSweep, CoreError> {
    let cache_columns: Vec<usize> = (0..=config.columns).collect();
    let points = par_map(&cache_columns, |&cc| {
        run_partition_point(workload, config, cc)
    });
    collect_sweep(workload, points)
}

/// The sweep of [`partition_sweep`], computed strictly serially. Used to verify that the
/// parallel path changes nothing, and as the comparison baseline in benches.
pub fn partition_sweep_serial(
    workload: &WorkloadRun,
    config: &PartitionConfig,
) -> Result<PartitionSweep, CoreError> {
    let cache_columns: Vec<usize> = (0..=config.columns).collect();
    let points = seq_map(&cache_columns, |&cc| {
        run_partition_point(workload, config, cc)
    });
    collect_sweep(workload, points)
}

fn collect_sweep(
    workload: &WorkloadRun,
    points: Vec<Result<PartitionPoint, CoreError>>,
) -> Result<PartitionSweep, CoreError> {
    Ok(PartitionSweep {
        name: workload.name.clone(),
        points: points.into_iter().collect::<Result<Vec<_>, _>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccache_workloads::mpeg::{run_dequant, run_idct, MpegConfig};

    fn fast_config() -> PartitionConfig {
        PartitionConfig::default()
    }

    #[test]
    fn select_scratchpad_prefers_dense_variables_and_respects_capacity() {
        let run = run_dequant(&MpegConfig::small());
        let selected = select_scratchpad_vars(&run.trace, &run.symbols, 2048);
        let total: u64 = selected
            .iter()
            .map(|v| run.symbols.region(*v).unwrap().size)
            .sum();
        assert!(total <= 2048);
        // the coefficient buffer and quant table are the densest variables
        let names: Vec<&str> = selected
            .iter()
            .map(|v| run.symbols.region(*v).unwrap().name.as_str())
            .collect();
        assert!(names.contains(&"dq_coeff_blocks"));
        assert!(names.contains(&"dq_quant_tbl"));
        assert!(select_scratchpad_vars(&run.trace, &run.symbols, 0).is_empty());
    }

    #[test]
    fn dequant_prefers_scratchpad_heavy_partitions() {
        // Small configuration keeps the test fast while preserving the shape.
        let run = run_dequant(&MpegConfig::small());
        let sweep = partition_sweep(&run, &fast_config()).unwrap();
        assert_eq!(sweep.points.len(), 5);
        let all_scratchpad = sweep.cycles_at(0).unwrap();
        let all_cache = sweep.cycles_at(4).unwrap();
        assert!(
            all_scratchpad < all_cache,
            "dequant should prefer the all-scratchpad organisation ({all_scratchpad} vs {all_cache})"
        );
        assert_eq!(
            sweep.best().cache_columns,
            sweep
                .points
                .iter()
                .min_by_key(|p| p.cycles)
                .unwrap()
                .cache_columns
        );
    }

    #[test]
    fn idct_prefers_cache_heavy_partitions() {
        let run = run_idct(&MpegConfig::small());
        let sweep = partition_sweep(&run, &fast_config()).unwrap();
        let all_scratchpad = sweep.cycles_at(0).unwrap();
        let all_cache = sweep.cycles_at(4).unwrap();
        assert!(
            all_cache < all_scratchpad,
            "idct should prefer the cache organisation ({all_cache} vs {all_scratchpad})"
        );
    }

    #[test]
    fn parallel_and_serial_sweeps_serialize_identically() {
        // The acceptance bar for the parallel path: byte-identical SweepReport JSON.
        let run = run_dequant(&MpegConfig::small());
        let cfg = fast_config();
        let parallel = partition_sweep(&run, &cfg).unwrap();
        let serial = partition_sweep_serial(&run, &cfg).unwrap();
        assert_eq!(parallel, serial);

        // Force real worker threads (machines with one CPU would otherwise degrade the
        // parallel path to a serial loop) and re-check.
        let cache_columns: Vec<usize> = (0..=cfg.columns).collect();
        let threaded = collect_sweep(
            &run,
            crate::parallel::par_map_threads(
                &cache_columns,
                |&cc| run_partition_point(&run, &cfg, cc),
                4,
            ),
        )
        .unwrap();
        assert_eq!(threaded, serial);

        let report = |sweep: PartitionSweep| crate::report::SweepReport {
            figure: "4".to_owned(),
            config: cfg,
            sweeps: vec![sweep],
            figure4d: None,
        };
        assert_eq!(
            report(parallel).to_json_string(),
            report(threaded).to_json_string()
        );
        assert_eq!(
            report(serial.clone()).to_json_string(),
            report(serial).to_json_string()
        );
    }

    #[test]
    fn baseline_backend_ignores_partitioning() {
        use ccache_sim::backend::BackendKind;
        let run = run_dequant(&MpegConfig::small());
        let cfg = fast_config();
        // On a conventional cache the "partition" degrades to plain caching, so every
        // sweep point costs the same.
        let p2 = run_partition_point_on(BackendKind::SetAssociative, &run, &cfg, 2).unwrap();
        let p4 = run_partition_point_on(BackendKind::SetAssociative, &run, &cfg, 4).unwrap();
        assert_eq!(p2.result.hits, p4.result.hits);
        assert_eq!(p2.result.misses, p4.result.misses);
        // The ideal scratchpad lower-bounds the column cache at every point.
        let ideal = run_partition_point_on(BackendKind::IdealScratchpad, &run, &cfg, 2).unwrap();
        let column = run_partition_point(&run, &cfg, 2).unwrap();
        assert!(ideal.cycles <= column.cycles);
    }

    #[test]
    fn invalid_partition_is_rejected() {
        let run = run_dequant(&MpegConfig::small());
        assert!(run_partition_point(&run, &fast_config(), 9).is_err());
    }

    #[test]
    fn partition_point_reports_scratchpad_contents() {
        let run = run_dequant(&MpegConfig::small());
        let point = run_partition_point(&run, &fast_config(), 2).unwrap();
        assert_eq!(point.scratchpad_columns, 2);
        assert!(!point.scratchpad_vars.is_empty());
        assert!(point.cycles > 0);
        assert_eq!(point.result.references, run.trace.len() as u64);
    }
}
