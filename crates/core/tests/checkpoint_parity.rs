//! Checkpoint-parallel replay parity: splitting one trace into N segments and replaying
//! them from per-segment snapshots (on worker threads when the `parallel` feature is on)
//! must be **byte-identical** to sequential batched replay, which in turn must be
//! identical to per-reference replay. These tests pin that contract across random
//! traces, segment counts (including N = 1 and N far beyond the trace length),
//! geometries, mappings and batch sizes — and pin the streaming observer time series to
//! per-reference batching semantics.

use ccache_core::engine::ReplayEngine;
use ccache_core::observe::SeriesRecorder;
use ccache_core::runner::{run_on, CacheMapping, RegionMapping};
use ccache_sim::backend::BackendKind;
use ccache_sim::{ColumnMask, SystemConfig};
use ccache_trace::synth::{interleave, pseudo_random, sequential_scan};
use ccache_trace::Trace;
use proptest::prelude::*;

/// A mapping that exercises every access class: two column-restricted regions, one
/// exclusive (preloaded) region and one uncached region, plus a narrowed default mask.
fn mapping(col_a: usize, col_b: usize) -> CacheMapping {
    let mut m = CacheMapping::new();
    m.map(
        0x0000,
        0x2000,
        RegionMapping::Columns {
            mask: ColumnMask::single(col_a),
        },
    );
    m.map(
        0x4000,
        0x1000,
        RegionMapping::Columns {
            mask: ColumnMask::from_columns([col_b, (col_b + 1) % 4]),
        },
    );
    m.map(0x6000, 0x800, RegionMapping::Uncached);
    m.map(
        0x7000,
        0x400,
        RegionMapping::Exclusive {
            mask: ColumnMask::single((col_a + 2) % 4),
            preload: true,
        },
    );
    m
}

/// A freshly built and programmed engine; every replay path under comparison starts
/// from this exact state.
fn engine(col_a: usize, col_b: usize) -> ReplayEngine {
    let config = SystemConfig {
        page_size: 256,
        ..SystemConfig::default()
    };
    let mut e = ReplayEngine::new(BackendKind::ColumnCache, config).expect("valid config");
    e.apply(&mapping(col_a, col_b)).expect("valid mapping");
    e
}

/// A trace mixing random traffic over the mapped regions with a sequential stream.
fn trace(seed: u64, count: usize) -> Trace {
    let random = pseudo_random(0, 0x8000, 4, count, seed, None);
    let stream = sequential_scan(0x1_0000, (count as u64 / 4 + 1) * 32, 32, 4, 1, None);
    interleave(&[random, stream], 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpointed replay equals sequential batched replay equals per-reference replay,
    /// field for field, for arbitrary traces, segment counts and column mappings.
    /// Segment counts beyond the trace length must clamp, not fail.
    #[test]
    fn checkpointed_replay_is_byte_identical_to_sequential(
        seed in 0u64..1_000,
        count in 1usize..600,
        segments in 1usize..2_000,
        col_a in 0usize..4,
        col_b in 0usize..4,
    ) {
        let t = trace(seed, count);

        let sequential = engine(col_a, col_b).replay("parity", &t);
        let per_reference = run_on("parity", engine(col_a, col_b).backend_mut(), &t)
            .expect("per-reference replay succeeds");
        let checkpointed = engine(col_a, col_b).replay_checkpointed("parity", &t, segments);

        prop_assert_eq!(&sequential, &per_reference);
        prop_assert_eq!(&sequential, &checkpointed);
    }

    /// A recorded [`ccache_core::ReplayCheckpoints`] is immutable: replaying it any
    /// number of times yields the same result, and the result does not depend on the
    /// engine's batch size at warm-up time.
    #[test]
    fn checkpoints_replay_deterministically_for_any_batch_size(
        seed in 0u64..1_000,
        count in 1usize..300,
        segments in 1usize..16,
        batch in 1usize..64,
    ) {
        let t = trace(seed, count);

        let mut small = engine(0, 1);
        small.set_batch_size(batch);
        let checkpoints = small.checkpoint(&t, segments);
        let first = checkpoints.replay("parity", &t);
        let second = checkpoints.replay("parity", &t);
        prop_assert_eq!(&first, &second);

        let default_batch = engine(0, 1).replay_checkpointed("parity", &t, segments);
        prop_assert_eq!(&first, &default_batch);
    }

    /// The streaming observer's time series is a pure function of the trace and window —
    /// batch size must not shift window boundaries or alter any sample.
    #[test]
    fn observer_series_is_independent_of_batch_size(
        seed in 0u64..1_000,
        count in 1usize..400,
        window in 1u64..512,
        batch in 1usize..64,
    ) {
        let t = trace(seed, count);

        let mut per_ref = engine(2, 3);
        per_ref.set_batch_size(1);
        let mut per_ref_series = SeriesRecorder::new(window);
        let per_ref_result = per_ref.replay_observed("parity", &t, window, &mut per_ref_series);

        let mut batched = engine(2, 3);
        batched.set_batch_size(batch);
        let mut batched_series = SeriesRecorder::new(window);
        let batched_result = batched.replay_observed("parity", &t, window, &mut batched_series);

        prop_assert_eq!(&per_ref_result, &batched_result);
        prop_assert_eq!(per_ref_series.series(), batched_series.series());
    }
}

#[test]
fn single_segment_checkpointing_equals_plain_replay() {
    let t = trace(7, 200);
    let sequential = engine(1, 2).replay("parity", &t);
    let one_segment = engine(1, 2).replay_checkpointed("parity", &t, 1);
    assert_eq!(sequential, one_segment);
}

#[test]
fn more_segments_than_events_clamps_to_one_per_event() {
    let t = trace(11, 5);
    let sequential = engine(0, 3).replay("parity", &t);
    let oversplit = engine(0, 3).replay_checkpointed("parity", &t, 10_000);
    assert_eq!(sequential, oversplit);
}

#[test]
fn empty_traces_checkpoint_without_panicking() {
    let t = Trace::new();
    let result = engine(0, 0).replay_checkpointed("empty", &t, 8);
    assert_eq!(result.references, 0);
    assert_eq!(result.hits, 0);
    assert_eq!(result.misses, 0);
}

#[test]
fn checkpoint_metadata_reports_the_split() {
    let t = trace(3, 100);
    let mut e = engine(0, 0);
    let checkpoints = e.checkpoint(&t, 4);
    assert_eq!(checkpoints.segments(), 4);
    assert_eq!(checkpoints.trace_len(), t.len());
}
