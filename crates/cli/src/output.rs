//! Shared output handling: `--format json|csv|markdown`, `--out FILE`, `--quick` and
//! the legacy `--json FILE`, parsed once through [`ReportArgs`].
//!
//! Every subcommand that produces a machine-readable artefact renders it through
//! [`Render`]: JSON comes from the deterministic `ccache-json` document model (so two
//! equal reports serialize byte-identically), CSV is a flat long-format table, and
//! markdown is a pipe table for pasting into notes. [`emit`] routes the rendered text to
//! stdout or to the `--out` file. The flag boilerplate that used to be repeated across
//! every command — scale, format, output path, uniform exit-2 usage errors — lives in
//! [`ReportArgs`] exactly once.

use crate::args::ArgParser;
use crate::error::CliError;
use crate::scale::{scale_from_parser, Scale};
use ccache_json::ToJson;
use std::fmt::Write as _;

/// The machine-readable output formats of `ccache`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Pretty JSON from the deterministic document model (the default).
    #[default]
    Json,
    /// A flat comma-separated table (long format: one row per data point).
    Csv,
    /// A GitHub-flavoured markdown pipe table.
    Markdown,
}

impl OutputFormat {
    /// Parses `--format` values.
    ///
    /// # Errors
    ///
    /// Fails on anything other than `json`, `csv` or `markdown`.
    pub fn parse(s: &str, parser: &ArgParser) -> Result<Self, CliError> {
        match s {
            "json" => Ok(OutputFormat::Json),
            "csv" => Ok(OutputFormat::Csv),
            "markdown" | "md" => Ok(OutputFormat::Markdown),
            other => Err(parser.usage(format!(
                "invalid value '{other}' for '--format' (expected json, csv or markdown)"
            ))),
        }
    }

    /// Consumes `--format` from a parser, defaulting to JSON.
    ///
    /// # Errors
    ///
    /// Fails if the value is missing or not a known format.
    pub fn from_parser(parser: &mut ArgParser) -> Result<Self, CliError> {
        match parser.value("--format")? {
            Some(raw) => OutputFormat::parse(&raw, parser),
            None => Ok(OutputFormat::Json),
        }
    }
}

/// The shared report arguments of every reporting subcommand: `--quick`/`-q` (the
/// experiment [`Scale`]), `--format FMT`, `--out FILE` and — for the figure commands
/// that keep their original flag — the legacy `--json FILE`.
///
/// All values are consumed from the [`ArgParser`] with the uniform exit-2 usage-error
/// shape, so no command can drift in how it reports a bad `--format` value.
#[derive(Debug, Clone)]
pub struct ReportArgs {
    /// The experiment scale (`--quick` selects [`Scale::Quick`]).
    pub scale: Scale,
    /// The requested output format (default JSON).
    pub format: OutputFormat,
    /// The `--out` path, when given.
    pub out: Option<String>,
    /// Whether `--format` was given explicitly (drives conditional emission).
    format_given: bool,
    /// The legacy `--json FILE` path, when the command accepts it and it was given.
    json_path: Option<String>,
}

impl ReportArgs {
    /// Parses `--quick`, `--format` and `--out` (no legacy `--json` flag).
    ///
    /// # Errors
    ///
    /// Returns exit-2 usage errors for unknown formats or missing values.
    pub fn from_parser(parser: &mut ArgParser) -> Result<Self, CliError> {
        Self::parse(parser, false)
    }

    /// Parses `--quick`, `--json FILE`, `--format` and `--out` (the figure commands).
    ///
    /// # Errors
    ///
    /// Returns exit-2 usage errors for unknown formats or missing values.
    pub fn from_parser_with_legacy_json(parser: &mut ArgParser) -> Result<Self, CliError> {
        Self::parse(parser, true)
    }

    fn parse(parser: &mut ArgParser, legacy_json: bool) -> Result<Self, CliError> {
        let scale = scale_from_parser(parser);
        let json_path = if legacy_json {
            parser.value("--json")?
        } else {
            None
        };
        let format_raw = parser.value("--format")?;
        let out = parser.value("--out")?;
        let format = match &format_raw {
            Some(raw) => OutputFormat::parse(raw, parser)?,
            None => OutputFormat::Json,
        };
        Ok(ReportArgs {
            scale,
            format,
            out,
            format_given: format_raw.is_some(),
            json_path,
        })
    }

    /// Whether the quick scale was selected.
    pub fn quick(&self) -> bool {
        self.scale.is_quick()
    }

    /// Emits the report unconditionally (stdout, or `--out FILE`), in the requested
    /// format — the behaviour of `sweep`, `tune` and `run`.
    ///
    /// # Errors
    ///
    /// Propagates file-write errors.
    pub fn emit(&self, report: &dyn Render) -> Result<(), CliError> {
        emit(report, self.format, self.out.as_deref())
    }

    /// The figure-command behaviour: writes the legacy `--json FILE` artefact when that
    /// flag was given, and renders via `--format`/`--out` only when one of those flags
    /// appeared — so a bare `ccache fig4` still prints tables only.
    ///
    /// # Errors
    ///
    /// Propagates file-write errors.
    pub fn emit_if_requested(&self, report: &dyn Render) -> Result<(), CliError> {
        if let Some(path) = &self.json_path {
            std::fs::write(path, report.to_json_text())?;
            println!("wrote {path}");
        }
        if self.format_given || self.out.is_some() {
            self.emit(report)?;
        }
        Ok(())
    }
}

/// A report that can be rendered in every output format.
pub trait Render {
    /// The JSON rendering (pretty, deterministic).
    fn to_json_text(&self) -> String;
    /// The CSV rendering (header row + one row per data point).
    fn to_csv(&self) -> String;
    /// The markdown rendering (pipe tables).
    fn to_markdown(&self) -> String;

    /// Renders in the requested format.
    fn render(&self, format: OutputFormat) -> String {
        match format {
            OutputFormat::Json => self.to_json_text(),
            OutputFormat::Csv => self.to_csv(),
            OutputFormat::Markdown => self.to_markdown(),
        }
    }
}

/// Blanket rendering for anything with a JSON document model: CSV and markdown are
/// derived from the JSON structure only when a report does not provide richer tables.
impl Render for ccache_json::Json {
    fn to_json_text(&self) -> String {
        self.pretty()
    }

    fn to_csv(&self) -> String {
        self.compact()
    }

    fn to_markdown(&self) -> String {
        format!("```json\n{}\n```\n", self.pretty())
    }
}

/// Writes rendered output to `--out FILE` (announcing the path) or to stdout.
///
/// # Errors
///
/// Propagates file-write errors.
pub fn emit(report: &dyn Render, format: OutputFormat, out: Option<&str>) -> Result<(), CliError> {
    let text = report.render(format);
    match out {
        Some(path) => {
            std::fs::write(path, &text)?;
            println!("wrote {path}");
        }
        None => {
            // Write directly so a closed pipe (e.g. `ccache sweep ... | head`) ends the
            // output quietly instead of panicking in `print!`.
            use std::io::Write as _;
            let mut stdout = std::io::stdout().lock();
            let result = stdout.write_all(text.as_bytes()).and_then(|()| {
                if text.ends_with('\n') {
                    Ok(())
                } else {
                    stdout.write_all(b"\n")
                }
            });
            match result {
                Err(e) if e.kind() != std::io::ErrorKind::BrokenPipe => return Err(e.into()),
                _ => {}
            }
        }
    }
    Ok(())
}

/// Escapes one CSV field (quotes fields containing commas, quotes or newlines).
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Builds a markdown pipe table from a header and rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        header.iter().map(|_| " --- ").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// The report of a generic `ccache sweep` run: one replay per backend kind.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendSweepReport {
    /// The trace the sweep replayed.
    pub trace: String,
    /// Events replayed per backend.
    pub events: u64,
    /// One result per backend, in run order.
    pub runs: Vec<ccache_core::RunResult>,
}

impl ToJson for BackendSweepReport {
    fn to_json(&self) -> ccache_json::Json {
        ccache_json::Json::obj([
            ("trace", self.trace.to_json()),
            ("events", self.events.to_json()),
            (
                "runs",
                ccache_json::Json::arr(self.runs.iter().map(|r| {
                    ccache_json::Json::obj([
                        ("backend", r.name.to_json()),
                        ("total_cycles", r.total_cycles().to_json()),
                        ("cpi", r.cpi().to_json()),
                        ("references", r.references.to_json()),
                        ("hits", r.hits.to_json()),
                        ("misses", r.misses.to_json()),
                        ("miss_rate", r.miss_rate().to_json()),
                        ("writebacks", r.writebacks.to_json()),
                        ("uncached", r.uncached.to_json()),
                        ("control_cycles", r.control_cycles.to_json()),
                    ])
                })),
            ),
        ])
    }
}

impl BackendSweepReport {
    fn rows(&self) -> Vec<Vec<String>> {
        self.runs
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.total_cycles().to_string(),
                    format!("{:.3}", r.cpi()),
                    r.references.to_string(),
                    r.misses.to_string(),
                    format!("{:.1}%", r.miss_rate() * 100.0),
                ]
            })
            .collect()
    }
}

impl Render for BackendSweepReport {
    fn to_json_text(&self) -> String {
        self.to_json().pretty()
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("backend,total_cycles,cpi,references,misses,miss_rate\n");
        for r in &self.runs {
            let _ = writeln!(
                out,
                "{},{},{:.6},{},{},{:.6}",
                csv_field(&r.name),
                r.total_cycles(),
                r.cpi(),
                r.references,
                r.misses,
                r.miss_rate()
            );
        }
        out
    }

    fn to_markdown(&self) -> String {
        let mut out = format!(
            "### Backend sweep — `{}` ({} events)\n\n",
            self.trace, self.events
        );
        out.push_str(&markdown_table(
            &[
                "backend",
                "cycles",
                "CPI",
                "references",
                "misses",
                "miss rate",
            ],
            &self.rows(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parsing_accepts_known_names_only() {
        let p = ArgParser::new("sweep", Vec::new());
        assert_eq!(OutputFormat::parse("json", &p).unwrap(), OutputFormat::Json);
        assert_eq!(OutputFormat::parse("csv", &p).unwrap(), OutputFormat::Csv);
        assert_eq!(
            OutputFormat::parse("md", &p).unwrap(),
            OutputFormat::Markdown
        );
        let err = OutputFormat::parse("yaml", &p).unwrap_err();
        assert!(err.to_string().contains("invalid value 'yaml'"));
    }

    #[test]
    fn csv_fields_are_escaped() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn report_args_parse_the_shared_flags() {
        let mut p = ArgParser::new(
            "fig4",
            [
                "--quick", "--json", "a.json", "--format", "csv", "--out", "b.csv",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        );
        let args = ReportArgs::from_parser_with_legacy_json(&mut p).unwrap();
        p.finish().unwrap();
        assert!(args.quick());
        assert_eq!(args.format, OutputFormat::Csv);
        assert_eq!(args.out.as_deref(), Some("b.csv"));
        assert_eq!(args.json_path.as_deref(), Some("a.json"));

        // Without the legacy flag, --json stays unconsumed and is an unknown flag.
        let mut p = ArgParser::new(
            "sweep",
            ["--json", "a.json"].iter().map(|s| s.to_string()).collect(),
        );
        let args = ReportArgs::from_parser(&mut p).unwrap();
        assert!(args.json_path.is_none());
        assert!(p.finish().is_err());
    }

    #[test]
    fn report_args_reject_bad_formats_with_exit_2() {
        let mut p = ArgParser::new(
            "run",
            ["--format", "yaml"].iter().map(|s| s.to_string()).collect(),
        );
        let err = ReportArgs::from_parser(&mut p).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("invalid value 'yaml'"));
        assert!(err.to_string().contains("try 'ccache run --help'"));
    }

    #[test]
    fn markdown_tables_have_separator_rows() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "| --- | --- |");
        assert_eq!(lines[2], "| 1 | 2 |");
    }
}
