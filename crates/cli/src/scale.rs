//! Experiment scales and the fixed figure configurations — re-exported from the
//! experiment layer.
//!
//! The definitions moved from `ccache-bench` to this crate (PR 2) and on into
//! `ccache-exp` (this PR), so the spec layer, the CLI, the thin figure binaries and the
//! Criterion benches all resolve `--quick` and the paper's configurations through one
//! definition. This module keeps the CLI-facing import path (and the benches' re-export
//! path) stable, and adds the one CLI-specific piece: consuming `--quick` from an
//! [`ArgParser`].

pub use ccache_exp::scale::{figure4_config, figure5_configs, figure5_jobs, Scale};

use crate::args::ArgParser;

/// Consumes the `--quick`/`-q` flag from an [`ArgParser`]. The scale is `Quick` exactly
/// when the flag appears as its own whole argument — substrings do not count, so a path
/// like `out/quick.json` must not flip the scale.
pub fn scale_from_parser(parser: &mut ArgParser) -> Scale {
    Scale::from_quick(parser.flag(&["--quick", "-q"]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_parser_consumes_the_flag() {
        for quick in ["--quick", "-q"] {
            let mut p = ArgParser::new("fig4", vec![quick.to_owned()]);
            assert_eq!(scale_from_parser(&mut p), Scale::Quick);
            p.finish().unwrap();
        }
        let mut p = ArgParser::new("fig4", Vec::new());
        assert_eq!(scale_from_parser(&mut p), Scale::Paper);
        // a flag is a whole-argument match, not a substring match — near-misses stay
        // Paper scale and are reported as unknown arguments instead
        for not_a_flag in ["out/quick.json", "--quicker", "quick", "notquick"] {
            let mut p = ArgParser::new("fig4", vec![not_a_flag.to_owned()]);
            assert_eq!(
                scale_from_parser(&mut p),
                Scale::Paper,
                "{not_a_flag:?} must not select the quick scale"
            );
            assert!(p.finish().is_err());
        }
    }
}
