//! `ccache sweep` — replay a trace file across memory backends under one configuration.
//!
//! This is the generic, scriptable counterpart of the figure commands: point it at any
//! trace file (binary or text) and it replays the reference stream on the column cache,
//! the set-associative baseline and the ideal scratchpad, reporting cycles, CPI and miss
//! rates side by side. The command is a preset over the experiment layer
//! ([`ccache_exp::presets::sweep_spec`]); binary traces are still replayed
//! **streaming**, so the file may be larger than memory.

use crate::args::ArgParser;
use crate::backend::backends_from_parser;
use crate::error::CliError;
use crate::output::{BackendSweepReport, ReportArgs};
use ccache_core::RunResult;
use ccache_exp::exec::JobOutcome;
use ccache_exp::presets::sweep_spec;
use ccache_exp::spec::{GeometrySpec, LatencyPreset};
use ccache_sim::ReplacementPolicy;

/// Help text for `ccache sweep`.
pub const USAGE: &str = "\
usage: ccache sweep --trace FILE [options]

Replays a trace file on every requested memory backend under one cache configuration
and reports cycles, CPI and miss rates side by side. Binary traces stream from disk in
bounded memory; text traces are loaded first.

options:
  --trace FILE      the trace to replay (binary .cct or text; detected by magic)
  --backend KIND    column | set-assoc | ideal | all (default: all)
  --capacity BYTES  total cache capacity (default: 2048)
  --columns N       number of columns/ways (default: 4)
  --line BYTES      cache-line size (default: 32)
  --page BYTES      page size (default: 128)
  --tlb N           TLB entries (default: 64)
  --format FMT      json | csv | markdown (default: json)
  --out FILE        write the report in FMT to FILE instead of stdout
  --help, -h        show this help
";

/// Runs the subcommand.
///
/// # Errors
///
/// Fails on usage errors, invalid configurations, or unreadable/malformed trace files.
pub fn run(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("sweep", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let trace_path = match p.value("--trace")? {
        Some(path) => path,
        None => return Err(p.usage("missing required flag '--trace FILE'")),
    };
    let backends = backends_from_parser(&mut p, "--backend")?;
    let geometry = GeometrySpec {
        capacity: p.parsed::<u64>("--capacity")?.unwrap_or(2048),
        columns: p.parsed::<usize>("--columns")?.unwrap_or(4),
        line: p.parsed::<u64>("--line")?.unwrap_or(32),
        page: p.parsed::<u64>("--page")?.unwrap_or(128),
        tlb: p.parsed::<usize>("--tlb")?.unwrap_or(64),
        replacement: ReplacementPolicy::Lru,
        latency: LatencyPreset::Default,
    };
    let report_args = ReportArgs::from_parser(&mut p)?;
    p.finish()?;

    // Building the session validates the geometry before touching the trace file, as
    // the command always did.
    let session = column_caching::Session::builder()
        .geometry(geometry)
        .quick(report_args.quick())
        .build()?;
    let spec = sweep_spec(&trace_path, backends, geometry);
    let artefact = session.run_spec(&spec)?;

    let runs: Vec<RunResult> = artefact
        .outcomes
        .iter()
        .map(|outcome| {
            let JobOutcome::Replay { result, .. } = outcome else {
                unreachable!("sweep plans plain replays only");
            };
            result.clone()
        })
        .collect();
    let events = runs.last().map(|r| r.references).unwrap_or(0);
    let report = BackendSweepReport {
        trace: trace_path,
        events,
        runs,
    };
    report_args.emit(&report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_trace_flag_is_a_usage_error() {
        let err = run(Vec::new()).unwrap_err();
        assert!(err.to_string().contains("--trace"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn bad_backend_names_are_usage_errors() {
        let err = run(vec![
            "--trace".to_owned(),
            "x.cct".to_owned(),
            "--backend".to_owned(),
            "victim-cache".to_owned(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("invalid value 'victim-cache'"));
    }
}
