//! `ccache sweep` — replay a trace file across memory backends under one configuration.
//!
//! This is the generic, scriptable counterpart of the figure commands: point it at any
//! trace file (binary or text) and it replays the reference stream on the column cache,
//! the set-associative baseline and the ideal scratchpad, reporting cycles, CPI and miss
//! rates side by side. Binary traces are replayed **streaming** through
//! [`ReplayEngine::replay_reader`], so the file may be larger than memory.

use crate::args::ArgParser;
use crate::backend::backends_from_parser;
use crate::error::CliError;
use crate::output::{emit, BackendSweepReport, OutputFormat};
use ccache_core::engine::ReplayEngine;
use ccache_core::RunResult;
use ccache_sim::{CacheConfig, LatencyConfig, SystemConfig};
use ccache_trace::binfmt::TraceReader;

/// Help text for `ccache sweep`.
pub const USAGE: &str = "\
usage: ccache sweep --trace FILE [options]

Replays a trace file on every requested memory backend under one cache configuration
and reports cycles, CPI and miss rates side by side. Binary traces stream from disk in
bounded memory; text traces are loaded first.

options:
  --trace FILE      the trace to replay (binary .cct or text; detected by magic)
  --backend KIND    column | set-assoc | ideal | all (default: all)
  --capacity BYTES  total cache capacity (default: 2048)
  --columns N       number of columns/ways (default: 4)
  --line BYTES      cache-line size (default: 32)
  --page BYTES      page size (default: 128)
  --tlb N           TLB entries (default: 64)
  --format FMT      json | csv | markdown (default: json)
  --out FILE        write the report in FMT to FILE instead of stdout
  --help, -h        show this help
";

/// Runs the subcommand.
///
/// # Errors
///
/// Fails on usage errors, invalid configurations, or unreadable/malformed trace files.
pub fn run(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("sweep", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let trace_path = match p.value("--trace")? {
        Some(path) => path,
        None => return Err(p.usage("missing required flag '--trace FILE'")),
    };
    let backends = backends_from_parser(&mut p, "--backend")?;
    let capacity = p.parsed::<u64>("--capacity")?.unwrap_or(2048);
    let columns = p.parsed::<usize>("--columns")?.unwrap_or(4);
    let line = p.parsed::<u64>("--line")?.unwrap_or(32);
    let page = p.parsed::<u64>("--page")?.unwrap_or(128);
    let tlb = p.parsed::<usize>("--tlb")?.unwrap_or(64);
    let format = OutputFormat::from_parser(&mut p)?;
    let out = p.value("--out")?;
    p.finish()?;

    let cache = CacheConfig::builder()
        .capacity_bytes(capacity)
        .columns(columns)
        .line_size(line)
        .build()?;
    let config = SystemConfig {
        cache,
        latency: LatencyConfig::default(),
        page_size: page,
        tlb_entries: tlb,
    };

    let binary = ccache_trace::binfmt::is_binary_trace_file(&trace_path)?;
    // Text traces are small and hand-written; binary traces stream per backend so the
    // file never has to fit in memory.
    let in_memory = if binary {
        None
    } else {
        Some(ccache_trace::textfmt::read_trace(std::io::BufReader::new(
            std::fs::File::open(&trace_path)?,
        ))?)
    };

    let mut runs: Vec<RunResult> = Vec::new();
    let mut events = 0u64;
    for kind in &backends {
        let mut engine = ReplayEngine::new(*kind, config)?;
        let result = match &in_memory {
            Some(trace) => engine.replay(&kind.to_string(), trace),
            None => {
                let mut reader = TraceReader::open(&trace_path)?;
                engine.replay_reader(&kind.to_string(), &mut reader)?
            }
        };
        events = result.references;
        runs.push(result);
    }

    let report = BackendSweepReport {
        trace: trace_path,
        events,
        runs,
    };
    emit(&report, format, out.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_trace_flag_is_a_usage_error() {
        let err = run(Vec::new()).unwrap_err();
        assert!(err.to_string().contains("--trace"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn bad_backend_names_are_usage_errors() {
        let err = run(vec![
            "--trace".to_owned(),
            "x.cct".to_owned(),
            "--backend".to_owned(),
            "victim-cache".to_owned(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("invalid value 'victim-cache'"));
    }
}
