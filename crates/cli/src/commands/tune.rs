//! `ccache tune` — autotune cache geometry and column assignments for a workload.
//!
//! The search subsystem (`ccache-opt`) proposes candidate configurations — a cache
//! geometry plus one column per assignable unit — and scores each by replaying the
//! workload. This command selects the workload (a built-in corpus entry or a trace
//! file with inferred variables), runs the requested strategy under a replay budget,
//! and reports the winner, its improvement over the paper's heuristic layout and the
//! baseline, and the per-generation convergence table.

use crate::args::ArgParser;
use crate::backend::backend_from_parser;
use crate::error::CliError;
use crate::output::{csv_field, markdown_table, Render, ReportArgs};
use ccache_json::{Json, ToJson};
use ccache_opt::{GeometrySearch, StrategyKind, TuneOutcome, TuneRequest};
use ccache_sim::backend::BackendKind;
use ccache_sim::{CacheConfig, LatencyConfig, SystemConfig};
use std::fmt::Write as _;

/// Help text for `ccache tune`.
pub const USAGE: &str = "\
usage: ccache tune [options]

Jointly searches cache geometry (columns, line size, TLB entries) and per-variable
column assignments, scoring every candidate by replaying the workload; reports the
best configuration found, the miss-rate improvement over the paper's heuristic layout
and over the baseline cache, and a per-generation convergence table. Fully
deterministic for a fixed --seed.

options:
  --workload NAME   built-in workload (default: mpeg-combined; see ccache-workloads)
  --trace FILE      tune a trace file instead (variables inferred by address clustering)
  --strategy NAME   exhaustive | hill-climb | evolutionary (default: evolutionary)
  --budget N        maximum candidate replays (default: 192; 48 with --quick)
  --seed N          search RNG seed (default: 42)
  --fixed-geometry  search column assignments only, keeping the template geometry
  --baseline KIND   comparison backend: column, set-assoc or ideal (default: set-assoc)
  --capacity BYTES  total cache capacity (default: 2048)
  --columns N       template columns/ways (default: 4)
  --line BYTES      template line size (default: 32)
  --page BYTES      page size (default: 128)
  --tlb N           template TLB entries (default: 64)
  --quick, -q       reduced working sets (and budget) for smoke tests
  --metrics FILE    write the session's deterministic telemetry snapshot (JSON,
                    counters only — includes the fitness datapath's
                    opt.engine_pool.* and opt.warmup.* counters) to FILE
  --format FMT      json | csv | markdown (default: json)
  --out FILE        write the report in FMT to FILE instead of stdout
  --help, -h        show this help
";

/// Default replay budget at full scale.
const DEFAULT_BUDGET: usize = 192;
/// Default replay budget with `--quick`.
const QUICK_BUDGET: usize = 48;

/// Runs the subcommand.
///
/// # Errors
///
/// Fails on usage errors, invalid configurations, unreadable traces or search failures.
pub fn run(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("tune", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let report_args = ReportArgs::from_parser(&mut p)?;
    let quick = report_args.quick();
    let workload = p.value("--workload")?;
    let trace_path = p.value("--trace")?;
    if workload.is_some() && trace_path.is_some() {
        return Err(p.usage("'--workload' and '--trace' are mutually exclusive"));
    }
    let strategy = match p.value("--strategy")?.as_deref() {
        None => StrategyKind::default(),
        Some(raw) => StrategyKind::parse(raw).ok_or_else(|| {
            p.usage(format!(
                "invalid value '{raw}' for '--strategy' (expected exhaustive, hill-climb or evolutionary)"
            ))
        })?,
    };
    let budget =
        p.parsed::<usize>("--budget")?
            .unwrap_or(if quick { QUICK_BUDGET } else { DEFAULT_BUDGET });
    let seed = p.parsed::<u64>("--seed")?.unwrap_or(42);
    let fixed_geometry = p.flag(&["--fixed-geometry"]);
    let baseline = backend_from_parser(&mut p, "--baseline", BackendKind::SetAssociative)?;
    let capacity = p.parsed::<u64>("--capacity")?.unwrap_or(2048);
    let columns = p.parsed::<usize>("--columns")?.unwrap_or(4);
    let line = p.parsed::<u64>("--line")?.unwrap_or(32);
    let page = p.parsed::<u64>("--page")?.unwrap_or(128);
    let tlb = p.parsed::<usize>("--tlb")?.unwrap_or(64);
    let metrics_path = p.value("--metrics")?;

    let cache = CacheConfig::builder()
        .capacity_bytes(capacity)
        .columns(columns)
        .line_size(line)
        .build()?;
    let template = SystemConfig {
        cache,
        latency: LatencyConfig::default(),
        page_size: page,
        tlb_entries: tlb,
    };

    // Validate the workload name while the parser is still alive, so usage errors
    // (unknown names, leftover flags) surface before any workload build or file I/O.
    let workload = match (&trace_path, workload) {
        (Some(_), _) => None,
        (None, name) => {
            let name = name.unwrap_or_else(|| "mpeg-combined".to_owned());
            if !ccache_workloads::CORPUS_NAMES.contains(&name.as_str()) {
                return Err(p.usage(format!(
                    "invalid value '{name}' for '--workload' (expected one of: {})",
                    ccache_workloads::CORPUS_NAMES.join(", ")
                )));
            }
            Some(name)
        }
    };
    p.finish()?;

    // Select the workload: a named corpus entry or a trace file with inferred regions.
    let (name, trace, symbols) = match trace_path {
        Some(path) => {
            let trace = if ccache_trace::binfmt::is_binary_trace_file(&path)? {
                let mut reader = ccache_trace::binfmt::TraceReader::open(&path)?;
                reader.read_to_trace()?
            } else {
                ccache_trace::textfmt::read_trace(std::io::BufReader::new(std::fs::File::open(
                    &path,
                )?))?
            };
            let symbols =
                ccache_trace::infer::infer_symbols(&trace, template.page_size.max(4096), line);
            (path, trace, symbols)
        }
        None => {
            let name = workload.expect("validated above");
            let run = ccache_workloads::corpus(&name, quick).expect("name validated above");
            (name, run.trace, run.symbols)
        }
    };

    let request = TuneRequest {
        template,
        geometry: if fixed_geometry {
            GeometrySearch::fixed()
        } else {
            GeometrySearch::standard()
        },
        strategy,
        budget,
        seed,
        serial: false,
        forced: Vec::new(),
        baseline,
    };
    let session = column_caching::Session::builder().quick(quick).build()?;
    let outcome = session.tune(&trace, &symbols, &request)?;

    // Deterministic (counter-only) telemetry snapshot: identical runs produce
    // byte-identical files, which is what the CI determinism smoke diffs.
    if let Some(path) = metrics_path {
        std::fs::write(&path, session.telemetry().snapshot_deterministic().pretty())?;
        eprintln!("tune: wrote telemetry snapshot to '{path}'");
    }

    let report = TuneReport {
        workload: name,
        outcome,
    };
    report_args.emit(&report)
}

/// The report of a `ccache tune` run.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// The workload or trace file tuned.
    pub workload: String,
    /// The search outcome.
    pub outcome: TuneOutcome,
}

impl Render for TuneReport {
    fn to_json_text(&self) -> String {
        // The outcome document with the workload name spliced in front.
        let Json::Obj(pairs) = self.outcome.to_json() else {
            unreachable!("TuneOutcome serializes to an object");
        };
        let mut doc = vec![("workload".to_owned(), self.workload.to_json())];
        doc.extend(pairs);
        Json::Obj(doc).pretty()
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("series,generation,replays,misses,cycles,miss_rate\n");
        let o = &self.outcome;
        for (series, fitness) in [
            ("best", &o.best.fitness),
            ("heuristic", &o.heuristic.fitness),
            ("baseline", &o.baseline.fitness),
        ] {
            let _ = writeln!(
                out,
                "{series},,,{},{},{:.6}",
                fitness.misses, fitness.cycles, fitness.miss_rate
            );
        }
        for point in &o.convergence {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:.6}",
                csv_field("convergence"),
                point.generation,
                point.replays,
                point.best.misses,
                point.best.cycles,
                point.best.miss_rate
            );
        }
        out
    }

    fn to_markdown(&self) -> String {
        let o = &self.outcome;
        let mut out = format!(
            "## Tuning `{}` — {} strategy, seed {}, {} of {} replays\n\n",
            self.workload, o.strategy, o.seed, o.replays, o.budget
        );
        let _ = writeln!(
            out,
            "Best geometry: **{} columns, {}-byte lines, {} TLB entries** \
             ({} B capacity, {} B pages)\n",
            o.best_config.columns,
            o.best_config.line_size,
            o.best_config.tlb_entries,
            o.best_config.capacity_bytes,
            o.best_config.page_size
        );

        out.push_str("### Comparison\n\n");
        let rows: Vec<Vec<String>> = [
            ("tuned (best found)", &o.best.fitness),
            ("heuristic layout (paper §3)", &o.heuristic.fitness),
            ("baseline", &o.baseline.fitness),
        ]
        .into_iter()
        .map(|(label, fitness)| {
            vec![
                label.to_owned(),
                fitness.misses.to_string(),
                fitness.cycles.to_string(),
                format!("{:.3}%", fitness.miss_rate * 100.0),
            ]
        })
        .collect();
        out.push_str(&markdown_table(
            &["configuration", "misses", "cycles", "miss rate"],
            &rows,
        ));
        let _ = writeln!(
            out,
            "\nMiss-rate improvement: **{:+.3} pp** vs. heuristic, **{:+.3} pp** vs. baseline\n",
            o.improvement_vs_heuristic() * 100.0,
            o.improvement_vs_baseline() * 100.0
        );

        out.push_str("### Best assignment\n\n");
        let rows: Vec<Vec<String>> = o
            .best_assignment
            .iter()
            .map(|(name, cols)| {
                vec![
                    format!("`{name}`"),
                    cols.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", "),
                ]
            })
            .collect();
        out.push_str(&markdown_table(&["variable", "columns"], &rows));

        out.push_str("\n### Convergence\n\n");
        let rows: Vec<Vec<String>> = o
            .convergence
            .iter()
            .map(|point| {
                vec![
                    point.generation.to_string(),
                    point.replays.to_string(),
                    point.best.misses.to_string(),
                    point.best.cycles.to_string(),
                    format!("{:.3}%", point.best.miss_rate * 100.0),
                ]
            })
            .collect();
        out.push_str(&markdown_table(
            &[
                "generation",
                "replays",
                "best misses",
                "best cycles",
                "best miss rate",
            ],
            &rows,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflicting_workload_sources_are_usage_errors() {
        let err = run(vec![
            "--workload".to_owned(),
            "fir".to_owned(),
            "--trace".to_owned(),
            "x.cct".to_owned(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn unknown_strategies_and_workloads_are_usage_errors() {
        let err = run(vec!["--strategy".to_owned(), "annealing".to_owned()]).unwrap_err();
        assert!(err.to_string().contains("invalid value 'annealing'"));
        assert_eq!(err.exit_code(), 2);

        let err = run(vec![
            "--quick".to_owned(),
            "--workload".to_owned(),
            "mp3".to_owned(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("invalid value 'mp3'"));
        assert!(err.to_string().contains("mpeg-combined"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn bad_baseline_names_are_usage_errors() {
        let err = run(vec!["--baseline".to_owned(), "victim".to_owned()]).unwrap_err();
        assert!(err
            .to_string()
            .contains("invalid value 'victim' for '--baseline'"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn quick_fir_tune_renders_every_format() {
        let dir = std::env::temp_dir().join("ccache-tune-test");
        std::fs::create_dir_all(&dir).unwrap();
        for format in ["json", "csv", "markdown"] {
            let out = dir.join(format!("tune.{format}"));
            run(vec![
                "--quick".to_owned(),
                "--workload".to_owned(),
                "fir".to_owned(),
                "--fixed-geometry".to_owned(),
                "--budget".to_owned(),
                "8".to_owned(),
                "--strategy".to_owned(),
                "hill-climb".to_owned(),
                "--format".to_owned(),
                format.to_owned(),
                "--out".to_owned(),
                out.to_string_lossy().into_owned(),
            ])
            .unwrap();
            let text = std::fs::read_to_string(&out).unwrap();
            assert!(!text.is_empty());
            match format {
                "json" => {
                    assert!(text.contains("\"workload\": \"fir\""));
                    assert!(text.contains("\"convergence\""));
                }
                "csv" => assert!(text.starts_with("series,generation")),
                _ => assert!(text.contains("### Convergence")),
            }
        }
    }
}
