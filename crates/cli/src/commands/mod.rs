//! The `ccache` subcommands.
//!
//! Each submodule exposes `run(args)` taking the arguments that follow the subcommand
//! name, plus a `USAGE` string printed by `--help`. The figure commands reproduce the
//! paper's evaluation figures as presets over the experiment layer (`ccache-exp`);
//! [`run`] executes arbitrary declarative spec files through the same pipeline;
//! [`sweep`] replays an arbitrary trace file across backends; [`trace`] records,
//! inspects and converts trace files; [`tune`] searches cache geometries and column
//! assignments with replay-driven fitness; [`mod@bench`] measures replay throughput and
//! gates it against a committed baseline; [`serve`] runs the concurrent cache-advisory
//! service (or drives one as a scriptable client).

pub mod ablation;
pub mod bench;
pub mod fig4;
pub mod fig5;
pub mod run;
pub mod serve;
pub mod sweep;
pub mod trace;
pub mod tune;
