//! `ccache serve` — run the cache-advisory service, or drive one as a client.
//!
//! Server mode binds the NDJSON-over-TCP service from `ccache-serve` and blocks until
//! a client sends `shutdown` (or the process is killed). Client mode (`--connect`)
//! sends one request document and prints every reply frame — including streamed
//! `subscribe` events — one per line, exiting non-zero if the final reply is a
//! refusal. Together they make the protocol scriptable from CI and shell pipelines
//! without any external tooling.

use crate::args::ArgParser;
use crate::error::CliError;
use ccache_json::Json;
use ccache_serve::{serve, Client, ServeConfig};
use std::io::Write as _;
use std::time::Duration;

/// Help text for `ccache serve`.
pub const USAGE: &str = "\
usage: ccache serve [options]
       ccache serve --connect ADDR --request JSON

Runs the concurrent cache-advisory service: newline-delimited JSON over TCP, a pool
of session workers behind a bounded queue, and a content-addressed result store that
computes each canonical experiment key exactly once. Prints one line —
'ccache-serve listening on HOST:PORT' — once the socket is bound, then blocks until
a client sends {\"cmd\": \"shutdown\"}. In-flight jobs drain before exit.

server options:
  --host HOST            bind address (default: 127.0.0.1)
  --port N               TCP port; 0 picks an ephemeral port (default: 7341)
  --workers N            session worker threads (default: 4)
  --queue N              bounded job-queue depth; beyond it requests are shed
                         with a structured 'overloaded' reply (default: 64)
  --read-timeout-ms N    per-connection idle read timeout; idle connections are
                         closed cleanly (default: none)
  --max-frame-bytes N    largest accepted request line (default: 1048576)
  --quick, -q            reduced working sets for every job (smoke/CI scale)
  --log FORMAT           structured request log on stderr; the only FORMAT is
                         'ndjson' — one JSON record per request with tenant,
                         verb, outcome and duration bucket

client options:
  --connect ADDR         act as a client of the server at ADDR (host:port)
  --request JSON         the request document to send (one JSON object)

  --help, -h             show this help
";

/// Default TCP port when `--port` is not given.
const DEFAULT_PORT: u16 = 7341;

/// Runs the subcommand.
///
/// # Errors
///
/// Fails on usage errors, bind/connect failures, and — in client mode — if the final
/// reply is a refusal (`ok: false`).
pub fn run(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("serve", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let connect = p.value("--connect")?;
    match connect {
        Some(addr) => run_client(p, &addr),
        None => run_server(p),
    }
}

/// Server mode: bind, announce, block until shutdown.
fn run_server(mut p: ArgParser) -> Result<(), CliError> {
    let mut config = ServeConfig::default();
    if let Some(host) = p.value("--host")? {
        config.host = host;
    }
    config.port = p.parsed::<u16>("--port")?.unwrap_or(DEFAULT_PORT);
    if let Some(workers) = p.parsed::<usize>("--workers")? {
        if workers == 0 {
            return Err(p.usage("'--workers' must be at least 1"));
        }
        config.workers = workers;
    }
    if let Some(depth) = p.parsed::<usize>("--queue")? {
        if depth == 0 {
            return Err(p.usage("'--queue' must be at least 1"));
        }
        config.queue_depth = depth;
    }
    if let Some(ms) = p.parsed::<u64>("--read-timeout-ms")? {
        config.read_timeout = Some(Duration::from_millis(ms));
    }
    if let Some(bytes) = p.parsed::<usize>("--max-frame-bytes")? {
        config.max_frame_bytes = bytes;
    }
    config.quick = p.flag(&["--quick", "-q"]);
    if let Some(format) = p.value("--log")? {
        if format != "ndjson" {
            return Err(p.usage(format!(
                "unknown '--log' format '{format}' (the only format is 'ndjson')"
            )));
        }
        config.log_ndjson = true;
    }
    p.finish()?;

    let handle = serve(config)?;
    // The announcement line is the machine-readable contract scripts parse for the
    // ephemeral port, so it must be flushed before blocking.
    println!("ccache-serve listening on {}", handle.addr());
    std::io::stdout().flush()?;
    handle.wait();
    Ok(())
}

/// Client mode: send one request, print every reply frame, exit by the final `ok`.
fn run_client(mut p: ArgParser, addr: &str) -> Result<(), CliError> {
    let request = p
        .value("--request")?
        .ok_or_else(|| p.usage("'--connect' requires '--request JSON'"))?;
    p.finish()?;
    let doc = Json::parse(&request)
        .map_err(|e| CliError::usage(format!("invalid '--request' document: {e}")))?;

    let mut client = Client::connect(addr)?;
    client.send(&doc)?;
    // Print frames as they arrive; the first non-event frame is the final reply.
    loop {
        let Some(line) = client.recv_line()? else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "the server closed before replying",
            )
            .into());
        };
        println!("{line}");
        let frame = Json::parse(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        if frame.get("event").is_some() {
            continue;
        }
        return match frame.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(()),
            _ => {
                let message = frame
                    .get("error")
                    .and_then(|e| e.get("message"))
                    .and_then(Json::as_str)
                    .unwrap_or("the server refused the request");
                Err(CliError::Io(std::io::Error::other(format!(
                    "request refused: {message}"
                ))))
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccache_json::ToJson;
    use ccache_serve::spawn_test_server;

    #[test]
    fn bad_flags_are_usage_errors() {
        let err = run(vec!["--workers".to_owned(), "0".to_owned()]).unwrap_err();
        assert!(err.to_string().contains("'--workers' must be at least 1"));
        assert_eq!(err.exit_code(), 2);

        let err = run(vec!["--connect".to_owned(), "127.0.0.1:1".to_owned()]).unwrap_err();
        assert!(err.to_string().contains("requires '--request JSON'"));
        assert_eq!(err.exit_code(), 2);

        let err = run(vec![
            "--connect".to_owned(),
            "127.0.0.1:1".to_owned(),
            "--request".to_owned(),
            "{not json".to_owned(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("invalid '--request' document"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn client_mode_round_trips_against_a_live_server() {
        let mut server = spawn_test_server(|_| {}).expect("bind test server");
        let addr = server.addr().to_string();
        run(vec![
            "--connect".to_owned(),
            addr.clone(),
            "--request".to_owned(),
            Json::obj([("cmd", "status".to_json())]).compact(),
        ])
        .expect("status round trip");

        // A refusal maps to a non-zero (non-usage) exit.
        let err = run(vec![
            "--connect".to_owned(),
            addr,
            "--request".to_owned(),
            Json::obj([("cmd", "frobnicate".to_json())]).compact(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("request refused"));
        assert_eq!(err.exit_code(), 1);
        server.shutdown();
    }
}
