//! `ccache fig4` — the Figure 4 partition sweep (and Figure 4(d) dynamic comparison).
//!
//! The command is a preset over the experiment layer: it compiles to the
//! [`ccache_exp::presets::fig4_spec`] spec, runs through the shared plan → execute
//! pipeline, and reassembles the outcomes into the legacy [`SweepReport`] — whose JSON
//! artefact is byte-identical to the pre-refactor command (golden-tested).

use crate::args::ArgParser;
use crate::error::CliError;
use crate::output::{csv_field, markdown_table, Render, ReportArgs};
use crate::scale::figure4_config;
use ccache_core::dynamic::Figure4dResult;
use ccache_core::partition::PartitionSweep;
use ccache_core::report::{figure4d_table, partition_table, SweepReport};
use ccache_exp::exec::JobOutcome;
use ccache_exp::presets::fig4_spec;
use std::fmt::Write as _;

/// Help text for `ccache fig4`.
pub const USAGE: &str = "\
usage: ccache fig4 [options]

Reproduces Figure 4: cycle count of the MPEG routines versus the scratchpad/cache
partition of a 2 KB, 4-column on-chip memory, plus the combined-application comparison
against a dynamically remapped column cache.

options:
  --routine NAME    dequant | plus | idct | combined | all (default: all)
  --quick, -q       reduced working sets for smoke tests
  --json FILE       write the JSON artefact (same as --format json --out FILE)
  --format FMT      json | csv | markdown (default: json)
  --out FILE        write the report in FMT to FILE instead of stdout
  --help, -h        show this help
";

const ROUTINES: [&str; 5] = ["dequant", "plus", "idct", "combined", "all"];

/// The partition sweeps and dynamic comparison of one Figure 4 run, reassembled from
/// the pipeline's outcomes in presentation order.
pub struct Fig4Results {
    /// One sweep per routine, combined last.
    pub sweeps: Vec<PartitionSweep>,
    /// The dynamic run's comparison, when the combined application ran.
    pub figure4d: Option<Figure4dResult>,
}

/// Runs the fig4 preset through the experiment pipeline and reassembles the sweeps.
///
/// # Errors
///
/// Fails on invalid configurations or execution failures.
pub fn compute(routine: &str, quick: bool) -> Result<Fig4Results, CliError> {
    let spec = fig4_spec(routine);
    let session = column_caching::Session::builder().quick(quick).build()?;
    let artefact = session.run_spec(&spec)?;
    let by_key = artefact.by_key();

    let mut sweeps: Vec<PartitionSweep> = Vec::new();
    let mut dynamic: Option<&ccache_core::dynamic::DynamicRunResult> = None;
    for job in ccache_exp::plan::expand(&spec) {
        match by_key.get(&job.key()) {
            Some(JobOutcome::Partition {
                workload, point, ..
            }) => {
                if sweeps.last().map(|s| s.name.as_str()) != Some(workload.as_str()) {
                    sweeps.push(PartitionSweep {
                        name: workload.clone(),
                        points: Vec::new(),
                    });
                }
                sweeps
                    .last_mut()
                    .expect("sweep pushed above")
                    .points
                    .push(point.clone());
            }
            Some(JobOutcome::Dynamic { run, .. }) => dynamic = Some(run),
            _ => unreachable!("fig4 plans partition and dynamic jobs only"),
        }
    }

    let figure4d = dynamic.map(|run| {
        let static_sweep = sweeps.last().expect("combined sweep precedes dynamic");
        Figure4dResult {
            static_cycles: static_sweep
                .points
                .iter()
                .map(|p| (p.cache_columns, p.cycles))
                .collect(),
            column_cache_cycles: run.cycles,
            column_cache_control_cycles: run.control_cycles,
        }
    });
    Ok(Fig4Results { sweeps, figure4d })
}

/// Runs the subcommand.
///
/// # Errors
///
/// Fails on usage errors, invalid configurations or file-write failures.
pub fn run(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("fig4", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let report_args = ReportArgs::from_parser_with_legacy_json(&mut p)?;
    let routine = p.value("--routine")?.unwrap_or_else(|| "all".to_owned());
    if !ROUTINES.contains(&routine.as_str()) {
        return Err(p.usage(format!(
            "invalid value '{routine}' for '--routine' (expected dequant, plus, idct, combined or all)"
        )));
    }
    p.finish()?;

    let config = figure4_config();
    println!(
        "Figure 4 — on-chip memory: {} bytes, {} columns, {}-byte lines, {:?} scale\n",
        config.capacity_bytes, config.columns, config.line_size, report_args.scale
    );

    let results = compute(&routine, report_args.quick())?;

    // Presentation: per-routine tables with their optimum first, then the combined
    // application's table and the static-vs-dynamic comparison.
    let combined = routine == "all" || routine == "combined";
    let routine_sweeps = results.sweeps.len() - usize::from(combined);
    for sweep in &results.sweeps[..routine_sweeps] {
        println!("{}", partition_table(sweep));
        println!(
            "-> optimum for {}: {} cache columns / {} scratchpad columns\n",
            sweep.name,
            sweep.best().cache_columns,
            sweep.best().scratchpad_columns
        );
    }
    if combined {
        let static_sweep = results.sweeps.last().expect("combined sweep planned");
        println!("{}", partition_table(static_sweep));
        println!(
            "{}",
            figure4d_table(results.figure4d.as_ref().expect("dynamic job planned"))
        );
    }

    let payload = SweepReport {
        figure: "4".to_owned(),
        config,
        sweeps: results.sweeps,
        figure4d: results.figure4d,
    };
    report_args.emit_if_requested(&payload)
}

impl Render for SweepReport {
    fn to_json_text(&self) -> String {
        self.to_json_string()
    }

    fn to_csv(&self) -> String {
        let mut out =
            String::from("series,cache_columns,scratchpad_columns,cycles,misses,hit_rate\n");
        for sweep in &self.sweeps {
            for p in &sweep.points {
                let hit_rate = if p.result.references == 0 {
                    0.0
                } else {
                    p.result.hits as f64 / p.result.references as f64
                };
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{:.6}",
                    csv_field(&sweep.name),
                    p.cache_columns,
                    p.scratchpad_columns,
                    p.cycles,
                    p.result.misses,
                    hit_rate
                );
            }
        }
        if let Some(d) = &self.figure4d {
            let _ = writeln!(out, "column-cache-dynamic,,,{},,", d.column_cache_cycles);
            let _ = writeln!(
                out,
                "column-cache-dynamic+control,,,{},,",
                d.column_cache_cycles + d.column_cache_control_cycles
            );
        }
        out
    }

    fn to_markdown(&self) -> String {
        let mut out = format!(
            "## Figure {} — {} B, {} columns, {} B lines\n\n",
            self.figure, self.config.capacity_bytes, self.config.columns, self.config.line_size
        );
        for sweep in &self.sweeps {
            let _ = writeln!(out, "### {}\n", sweep.name);
            let rows: Vec<Vec<String>> = sweep
                .points
                .iter()
                .map(|p| {
                    let hit_rate = if p.result.references == 0 {
                        0.0
                    } else {
                        p.result.hits as f64 / p.result.references as f64
                    };
                    vec![
                        p.cache_columns.to_string(),
                        p.scratchpad_columns.to_string(),
                        p.cycles.to_string(),
                        p.result.misses.to_string(),
                        format!("{:.1}%", hit_rate * 100.0),
                    ]
                })
                .collect();
            out.push_str(&markdown_table(
                &[
                    "cache columns",
                    "scratchpad columns",
                    "cycles",
                    "misses",
                    "hit rate",
                ],
                &rows,
            ));
            out.push('\n');
        }
        if let Some(d) = &self.figure4d {
            out.push_str("### Static partitions vs. dynamically remapped column cache\n\n");
            let mut rows: Vec<Vec<String>> = d
                .static_cycles
                .iter()
                .map(|(cols, cycles)| vec![format!("static cache={cols}"), cycles.to_string()])
                .collect();
            rows.push(vec![
                "column cache (dynamic)".to_owned(),
                d.column_cache_cycles.to_string(),
            ]);
            rows.push(vec![
                "column cache + remap overhead".to_owned(),
                (d.column_cache_cycles + d.column_cache_control_cycles).to_string(),
            ]);
            out.push_str(&markdown_table(&["configuration", "cycles"], &rows));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccache_core::partition::PartitionConfig;

    fn sample_report() -> SweepReport {
        SweepReport {
            figure: "4".to_owned(),
            config: PartitionConfig::default(),
            sweeps: Vec::new(),
            figure4d: Some(Figure4dResult {
                static_cycles: vec![(0, 1000), (4, 800)],
                column_cache_cycles: 700,
                column_cache_control_cycles: 50,
            }),
        }
    }

    #[test]
    fn csv_and_markdown_cover_the_dynamic_comparison() {
        let r = sample_report();
        let csv = r.to_csv();
        assert!(csv.starts_with("series,cache_columns"));
        assert!(csv.contains("column-cache-dynamic,,,700"));
        let md = r.to_markdown();
        assert!(md.contains("| configuration | cycles |"));
        assert!(md.contains("column cache (dynamic)"));
    }

    #[test]
    fn json_text_matches_the_legacy_artefact() {
        let r = sample_report();
        assert_eq!(r.to_json_text(), r.to_json_string());
    }

    #[test]
    fn unknown_routines_are_usage_errors() {
        let err = run(vec!["--routine".to_owned(), "mp3".to_owned()]).unwrap_err();
        assert!(err.to_string().contains("invalid value 'mp3'"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn compute_assembles_sweeps_in_presentation_order() {
        let results = compute("idct", true).unwrap();
        assert_eq!(results.sweeps.len(), 1);
        assert_eq!(results.sweeps[0].name, "idct");
        assert_eq!(results.sweeps[0].points.len(), 5);
        assert!(results.figure4d.is_none());
    }
}
