//! `ccache fig4` — the Figure 4 partition sweep (and Figure 4(d) dynamic comparison).

use crate::args::ArgParser;
use crate::error::CliError;
use crate::output::{csv_field, emit, markdown_table, OutputFormat, Render};
use crate::scale::{figure4_config, Scale};
use ccache_core::dynamic::{run_dynamic, Figure4dResult};
use ccache_core::partition::{partition_sweep, PartitionSweep};
use ccache_core::report::{figure4d_table, partition_table, SweepReport};
use ccache_workloads::mpeg::{run_combined, run_dequant, run_idct, run_phases, run_plus};
use std::fmt::Write as _;

/// Help text for `ccache fig4`.
pub const USAGE: &str = "\
usage: ccache fig4 [options]

Reproduces Figure 4: cycle count of the MPEG routines versus the scratchpad/cache
partition of a 2 KB, 4-column on-chip memory, plus the combined-application comparison
against a dynamically remapped column cache.

options:
  --routine NAME    dequant | plus | idct | combined | all (default: all)
  --quick, -q       reduced working sets for smoke tests
  --json FILE       write the JSON artefact (same as --format json --out FILE)
  --format FMT      json | csv | markdown (default: json)
  --out FILE        write the report in FMT to FILE instead of stdout
  --help, -h        show this help
";

const ROUTINES: [&str; 5] = ["dequant", "plus", "idct", "combined", "all"];

/// Runs the subcommand.
///
/// # Errors
///
/// Fails on usage errors, invalid configurations or file-write failures.
pub fn run(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("fig4", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let scale = Scale::from_parser(&mut p);
    let routine = p.value("--routine")?.unwrap_or_else(|| "all".to_owned());
    if !ROUTINES.contains(&routine.as_str()) {
        return Err(p.usage(format!(
            "invalid value '{routine}' for '--routine' (expected dequant, plus, idct, combined or all)"
        )));
    }
    let json_path = p.value("--json")?;
    let format_raw = p.value("--format")?;
    let out = p.value("--out")?;
    let format = match &format_raw {
        Some(raw) => OutputFormat::parse(raw, &p)?,
        None => OutputFormat::Json,
    };
    p.finish()?;

    let mpeg = scale.mpeg();
    let config = figure4_config();
    println!(
        "Figure 4 — on-chip memory: {} bytes, {} columns, {}-byte lines, {:?} scale\n",
        config.capacity_bytes, config.columns, config.line_size, scale
    );

    let mut sweeps: Vec<PartitionSweep> = Vec::new();
    let mut fig4d: Option<Figure4dResult> = None;

    let want = |name: &str| routine == "all" || routine == name;

    if want("dequant") {
        sweeps.push(partition_sweep(&run_dequant(&mpeg), &config)?);
    }
    if want("plus") {
        sweeps.push(partition_sweep(&run_plus(&mpeg), &config)?);
    }
    if want("idct") {
        sweeps.push(partition_sweep(&run_idct(&mpeg), &config)?);
    }
    for sweep in &sweeps {
        println!("{}", partition_table(sweep));
        println!(
            "-> optimum for {}: {} cache columns / {} scratchpad columns\n",
            sweep.name,
            sweep.best().cache_columns,
            sweep.best().scratchpad_columns
        );
    }

    if want("combined") {
        let combined = run_combined(&mpeg);
        let static_sweep = partition_sweep(&combined, &config)?;
        println!("{}", partition_table(&static_sweep));
        let (phases, symbols) = run_phases(&mpeg);
        let dynamic = run_dynamic(&phases, &symbols, &config)?;
        let result = Figure4dResult {
            static_cycles: static_sweep
                .points
                .iter()
                .map(|p| (p.cache_columns, p.cycles))
                .collect(),
            column_cache_cycles: dynamic.cycles,
            column_cache_control_cycles: dynamic.control_cycles,
        };
        println!("{}", figure4d_table(&result));
        sweeps.push(static_sweep);
        fig4d = Some(result);
    }

    let payload = SweepReport {
        figure: "4".to_owned(),
        config,
        sweeps,
        figure4d: fig4d,
    };
    if let Some(path) = json_path {
        std::fs::write(&path, payload.to_json_string())?;
        println!("wrote {path}");
    }
    if out.is_some() || format_raw.is_some() {
        emit(&payload, format, out.as_deref())?;
    }
    Ok(())
}

impl Render for SweepReport {
    fn to_json_text(&self) -> String {
        self.to_json_string()
    }

    fn to_csv(&self) -> String {
        let mut out =
            String::from("series,cache_columns,scratchpad_columns,cycles,misses,hit_rate\n");
        for sweep in &self.sweeps {
            for p in &sweep.points {
                let hit_rate = if p.result.references == 0 {
                    0.0
                } else {
                    p.result.hits as f64 / p.result.references as f64
                };
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{:.6}",
                    csv_field(&sweep.name),
                    p.cache_columns,
                    p.scratchpad_columns,
                    p.cycles,
                    p.result.misses,
                    hit_rate
                );
            }
        }
        if let Some(d) = &self.figure4d {
            let _ = writeln!(out, "column-cache-dynamic,,,{},,", d.column_cache_cycles);
            let _ = writeln!(
                out,
                "column-cache-dynamic+control,,,{},,",
                d.column_cache_cycles + d.column_cache_control_cycles
            );
        }
        out
    }

    fn to_markdown(&self) -> String {
        let mut out = format!(
            "## Figure {} — {} B, {} columns, {} B lines\n\n",
            self.figure, self.config.capacity_bytes, self.config.columns, self.config.line_size
        );
        for sweep in &self.sweeps {
            let _ = writeln!(out, "### {}\n", sweep.name);
            let rows: Vec<Vec<String>> = sweep
                .points
                .iter()
                .map(|p| {
                    let hit_rate = if p.result.references == 0 {
                        0.0
                    } else {
                        p.result.hits as f64 / p.result.references as f64
                    };
                    vec![
                        p.cache_columns.to_string(),
                        p.scratchpad_columns.to_string(),
                        p.cycles.to_string(),
                        p.result.misses.to_string(),
                        format!("{:.1}%", hit_rate * 100.0),
                    ]
                })
                .collect();
            out.push_str(&markdown_table(
                &[
                    "cache columns",
                    "scratchpad columns",
                    "cycles",
                    "misses",
                    "hit rate",
                ],
                &rows,
            ));
            out.push('\n');
        }
        if let Some(d) = &self.figure4d {
            out.push_str("### Static partitions vs. dynamically remapped column cache\n\n");
            let mut rows: Vec<Vec<String>> = d
                .static_cycles
                .iter()
                .map(|(cols, cycles)| vec![format!("static cache={cols}"), cycles.to_string()])
                .collect();
            rows.push(vec![
                "column cache (dynamic)".to_owned(),
                d.column_cache_cycles.to_string(),
            ]);
            rows.push(vec![
                "column cache + remap overhead".to_owned(),
                (d.column_cache_cycles + d.column_cache_control_cycles).to_string(),
            ]);
            out.push_str(&markdown_table(&["configuration", "cycles"], &rows));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccache_core::partition::PartitionConfig;

    fn sample_report() -> SweepReport {
        SweepReport {
            figure: "4".to_owned(),
            config: PartitionConfig::default(),
            sweeps: Vec::new(),
            figure4d: Some(Figure4dResult {
                static_cycles: vec![(0, 1000), (4, 800)],
                column_cache_cycles: 700,
                column_cache_control_cycles: 50,
            }),
        }
    }

    #[test]
    fn csv_and_markdown_cover_the_dynamic_comparison() {
        let r = sample_report();
        let csv = r.to_csv();
        assert!(csv.starts_with("series,cache_columns"));
        assert!(csv.contains("column-cache-dynamic,,,700"));
        let md = r.to_markdown();
        assert!(md.contains("| configuration | cycles |"));
        assert!(md.contains("column cache (dynamic)"));
    }

    #[test]
    fn json_text_matches_the_legacy_artefact() {
        let r = sample_report();
        assert_eq!(r.to_json_text(), r.to_json_string());
    }

    #[test]
    fn unknown_routines_are_usage_errors() {
        let err = run(vec!["--routine".to_owned(), "mp3".to_owned()]).unwrap_err();
        assert!(err.to_string().contains("invalid value 'mp3'"));
        assert_eq!(err.exit_code(), 2);
    }
}
