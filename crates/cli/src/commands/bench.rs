//! `ccache bench` — measure replay throughput and gate against a committed baseline.
//!
//! The command is a thin client of [`Session::bench`]: it replays one calibrated
//! corpus workload through every engine datapath (per-reference, batched, streamed,
//! checkpoint-parallel), renders the versioned `ccache-bench` artefact, and — with
//! `--baseline` — compares the machine-independent mode *ratios* against a committed
//! artefact with a tolerance band. CI runs the gate on every push, so a change that
//! slows the batched or streamed datapath relative to per-reference replay fails the
//! build rather than landing silently.
//!
//! With `--tune` the artefact also carries a `tune` section: candidate evaluations
//! per second for the tuner's fitness datapath (fresh engines vs pooled vs pooled
//! with warm-up checkpoint reuse, serial and parallel), whose work-reduction ratios
//! are gated the same way when the baseline has them.
//!
//! # Artefact schema (version 2)
//!
//! All host-dependent numbers live under `timing` keys, in `ratios`, in `environment`
//! and in the `tune` section's `elapsed_s`/`evals_per_sec`/`ratios` — strip those
//! (`jq 'del(.modes[].timing, .batch_sweep[].timing, .segment_sweep[].timing,
//! .ratios, .environment, .tune.modes[].elapsed_s, .tune.modes[].evals_per_sec,
//! .tune.ratios)'`) and the rest of the artefact is byte-deterministic for a given
//! workload and scale. The gate also accepts version-1 baselines (which predate the
//! `tune` section): it gates only the ratios a baseline actually has, so older
//! artefacts keep working. See DESIGN.md ("Bench artefact & datapath") for the full
//! schema.

use crate::args::ArgParser;
use crate::error::CliError;
use crate::output::{markdown_table, Render, ReportArgs};
use ccache_json::{Json, ToJson};
use column_caching::bench::{BenchReport, BenchRequest};
use column_caching::Session;
use std::fmt::Write as _;

/// Artefact type tag, checked by the comparator before diffing anything.
const ARTEFACT: &str = "ccache-bench";
/// Artefact schema version, bumped on any breaking schema change. Version 2 added the
/// optional `tune` section.
const VERSION: u64 = 2;
/// Baseline schema versions the gate still reads. Version-1 artefacts simply lack the
/// `tune` section; the gate only checks the ratios a baseline actually carries.
const COMPATIBLE_BASELINE_VERSIONS: [u64; 2] = [1, 2];
/// Default allowed fractional regression of a gated ratio.
const DEFAULT_TOLERANCE: f64 = 0.4;
/// The ratios the gate checks: machine-independent mode-vs-mode speedups.
/// `checkpoint_parallel_vs_batched` is deliberately absent — it scales with the host's
/// thread count, so gating it would make CI pass/fail depend on runner hardware.
const GATED_RATIOS: [&str; 2] = ["batched_vs_per_reference", "streamed_vs_per_reference"];
/// The `tune`-section ratios the gate checks. Both measure *work reduction* (pooling,
/// warm-up reuse), not thread scaling, so they are machine-independent;
/// `parallel_vs_serial` is deliberately absent for the same reason as above.
const TUNE_GATED_RATIOS: [&str; 2] = ["pooled_vs_fresh", "pooled_checkpoint_vs_fresh"];

/// Help text for `ccache bench`.
pub const USAGE: &str = "\
usage: ccache bench [options]

Measures replay throughput (references/second) for every engine datapath --
per-reference, batched, streamed from the binary trace format, and
checkpoint-parallel -- on one calibrated corpus workload, plus batch-size and
segment-count scaling curves. Every mode is asserted to produce identical
replay statistics, so the datapaths can only differ in speed, never results.

Absolute refs/sec are host-dependent; the mode-vs-mode ratios are not, and
--baseline gates on those: the build fails if a gated ratio drops more than
--tolerance below the committed artefact's value.

With --tune the run also benchmarks the tuner's fitness datapath: candidate
evaluations/second for fresh-engine evaluation vs pooled engines vs pooled
engines with warm-up checkpoint reuse, serial and parallel, self-checked to
produce identical results. The pooled-vs-fresh work-reduction ratios are gated
when the baseline carries them.

options:
  --quick, -q       reduced working sets for smoke tests
  --workload NAME   corpus workload to replay (default: mpeg-combined)
  --iterations N    timed repetitions per mode, best wins (default: 3)
  --segments N      segment count for checkpoint-parallel replay (default: 4)
  --tune            also benchmark the tuner fitness datapath (tune section)
  --baseline FILE   gate mode: compare ratios against a committed artefact
  --tolerance T     allowed fractional ratio regression (default: 0.4)
  --format FMT      json | csv | markdown (default: json)
  --out FILE        write the artefact in FMT to FILE instead of stdout
  --help, -h        show this help
";

/// The rendered artefact: the facade's report plus the schema tag and version.
struct BenchArtefact {
    report: BenchReport,
}

fn timing_json(timing: &column_caching::bench::BenchTiming) -> Json {
    Json::obj([
        ("elapsed_s", timing.elapsed_s.to_json()),
        ("refs_per_sec", timing.refs_per_sec.to_json()),
    ])
}

fn tune_json(t: &column_caching::bench::TuneBenchReport) -> Json {
    Json::obj([
        ("candidates", (t.candidates as u64).to_json()),
        (
            "distinct_candidates",
            (t.distinct_candidates as u64).to_json(),
        ),
        ("geometries", (t.geometries as u64).to_json()),
        (
            "modes",
            Json::arr(t.modes.iter().map(|m| {
                Json::obj([
                    ("mode", m.mode.to_json()),
                    ("schedule", m.schedule.to_json()),
                    ("iterations", (m.iterations as u64).to_json()),
                    ("elapsed_s", m.elapsed_s.to_json()),
                    ("evals_per_sec", m.evals_per_sec.to_json()),
                ])
            })),
        ),
        (
            "ratios",
            Json::obj([
                ("pooled_vs_fresh", t.ratios.pooled_vs_fresh.to_json()),
                (
                    "pooled_checkpoint_vs_fresh",
                    t.ratios.pooled_checkpoint_vs_fresh.to_json(),
                ),
                ("parallel_vs_serial", t.ratios.parallel_vs_serial.to_json()),
            ]),
        ),
    ])
}

impl ToJson for BenchArtefact {
    fn to_json(&self) -> Json {
        let r = &self.report;
        let mut fields = vec![
            ("artefact", ARTEFACT.to_json()),
            ("version", VERSION.to_json()),
            ("workload", r.workload.to_json()),
            ("quick", r.quick.to_json()),
            ("backend", r.backend.to_json()),
            ("references", r.references.to_json()),
            (
                "environment",
                Json::obj([
                    ("os", r.environment.os.to_json()),
                    ("arch", r.environment.arch.to_json()),
                    ("threads", (r.environment.threads as u64).to_json()),
                    ("debug_assertions", r.environment.debug_assertions.to_json()),
                    ("parallel", r.environment.parallel.to_json()),
                ]),
            ),
            (
                "result",
                Json::obj([
                    ("references", r.result.references.to_json()),
                    ("total_cycles", r.result.total_cycles().to_json()),
                    ("hits", r.result.hits.to_json()),
                    ("misses", r.result.misses.to_json()),
                    ("writebacks", r.result.writebacks.to_json()),
                    ("miss_rate", r.result.miss_rate().to_json()),
                ]),
            ),
            (
                "modes",
                Json::arr(r.modes.iter().map(|m| {
                    Json::obj([
                        ("mode", m.mode.to_json()),
                        ("iterations", (m.iterations as u64).to_json()),
                        ("timing", timing_json(&m.timing)),
                    ])
                })),
            ),
            (
                "batch_sweep",
                Json::arr(r.batch_sweep.iter().map(|p| {
                    Json::obj([
                        ("batch", p.value.to_json()),
                        ("timing", timing_json(&p.timing)),
                    ])
                })),
            ),
            (
                "segment_sweep",
                Json::arr(r.segment_sweep.iter().map(|p| {
                    Json::obj([
                        ("segments", p.value.to_json()),
                        ("timing", timing_json(&p.timing)),
                    ])
                })),
            ),
            (
                "ratios",
                Json::obj([
                    (
                        "batched_vs_per_reference",
                        r.ratios.batched_vs_per_reference.to_json(),
                    ),
                    (
                        "streamed_vs_per_reference",
                        r.ratios.streamed_vs_per_reference.to_json(),
                    ),
                    (
                        "checkpoint_parallel_vs_batched",
                        r.ratios.checkpoint_parallel_vs_batched.to_json(),
                    ),
                ]),
            ),
        ];
        if let Some(t) = &r.tune {
            fields.push(("tune", tune_json(t)));
        }
        Json::obj(fields)
    }
}

impl BenchArtefact {
    fn rows(&self) -> Vec<Vec<String>> {
        self.report
            .modes
            .iter()
            .map(|m| {
                vec![
                    m.mode.to_owned(),
                    self.report.references.to_string(),
                    format!("{:.6}", m.timing.elapsed_s),
                    format!("{:.0}", m.timing.refs_per_sec),
                ]
            })
            .collect()
    }
}

impl Render for BenchArtefact {
    fn to_json_text(&self) -> String {
        self.to_json().pretty()
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("mode,references,elapsed_s,refs_per_sec\n");
        for row in self.rows() {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    fn to_markdown(&self) -> String {
        let r = &self.report;
        let mut out = format!(
            "### Replay bench — `{}` ({} references, {})\n\n",
            r.workload,
            r.references,
            if r.quick { "quick scale" } else { "full scale" },
        );
        out.push_str(&markdown_table(
            &["mode", "references", "elapsed (s)", "refs/sec"],
            &self.rows(),
        ));
        let _ = write!(
            out,
            "\nbatched vs per-reference: {:.2}x · streamed vs per-reference: {:.2}x · \
             checkpoint-parallel vs batched: {:.2}x\n",
            r.ratios.batched_vs_per_reference,
            r.ratios.streamed_vs_per_reference,
            r.ratios.checkpoint_parallel_vs_batched,
        );
        if let Some(t) = &r.tune {
            let _ = write!(
                out,
                "\n### Tuner fitness datapath ({} candidates, {} distinct)\n\n",
                t.candidates, t.distinct_candidates,
            );
            out.push_str(&markdown_table(
                &["mode", "schedule", "elapsed (s)", "evals/sec"],
                &t.modes
                    .iter()
                    .map(|m| {
                        vec![
                            m.mode.to_owned(),
                            m.schedule.to_owned(),
                            format!("{:.6}", m.elapsed_s),
                            format!("{:.0}", m.evals_per_sec),
                        ]
                    })
                    .collect::<Vec<_>>(),
            ));
            let _ = write!(
                out,
                "\npooled vs fresh: {:.2}x · pooled+checkpoint vs fresh: {:.2}x · \
                 parallel vs serial: {:.2}x\n",
                t.ratios.pooled_vs_fresh,
                t.ratios.pooled_checkpoint_vs_fresh,
                t.ratios.parallel_vs_serial,
            );
        }
        out
    }
}

/// A ratio read out of a baseline artefact, by the names in [`GATED_RATIOS`].
fn current_ratio(report: &BenchReport, name: &str) -> f64 {
    match name {
        "batched_vs_per_reference" => report.ratios.batched_vs_per_reference,
        "streamed_vs_per_reference" => report.ratios.streamed_vs_per_reference,
        _ => unreachable!("unknown gated ratio {name}"),
    }
}

/// Compares the run's gated ratios against a committed baseline artefact.
///
/// The gate passes when every gated ratio is at least `baseline * (1 - tolerance)`;
/// improvements always pass. Identity fields (artefact tag, version, workload, scale)
/// must match, otherwise the comparison would be between different measurements.
fn gate(report: &BenchReport, baseline: &Json, tolerance: f64) -> Result<(), CliError> {
    let field = |name: &str| {
        baseline
            .get(name)
            .cloned()
            .ok_or_else(|| io_error(format!("baseline artefact is missing '{name}'")))
    };
    let tag = field("artefact")?;
    if tag.as_str() != Some(ARTEFACT) {
        return Err(io_error(format!(
            "baseline is not a {ARTEFACT} artefact (artefact = {})",
            tag.compact()
        )));
    }
    let version = field("version")?;
    if !version
        .as_u64()
        .is_some_and(|v| COMPATIBLE_BASELINE_VERSIONS.contains(&v))
    {
        return Err(io_error(format!(
            "baseline schema version {} is not readable by this binary (version {VERSION}; \
             accepts baselines {COMPATIBLE_BASELINE_VERSIONS:?})",
            version.compact()
        )));
    }
    let workload = field("workload")?;
    if workload.as_str() != Some(&report.workload) {
        return Err(io_error(format!(
            "baseline was recorded for workload {}, this run replayed '{}'",
            workload.compact(),
            report.workload
        )));
    }
    let quick = field("quick")?;
    if quick.as_bool() != Some(report.quick) {
        return Err(io_error(
            "baseline and this run were recorded at different scales (quick flag differs)",
        ));
    }

    let mut regressions = Vec::new();
    let mut check = |label: &str, name: &str, recorded: f64, current: f64| {
        let floor = recorded * (1.0 - tolerance);
        if current < floor {
            regressions.push(format!(
                "{label}{name}: {current:.3} < {floor:.3} (baseline {recorded:.3}, \
                 tolerance {tolerance})"
            ));
        } else {
            eprintln!("bench gate: {label}{name} {current:.3} vs baseline {recorded:.3} — ok");
        }
    };

    let ratios = field("ratios")?;
    for name in GATED_RATIOS {
        let recorded = ratios
            .get(name)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| io_error(format!("baseline artefact is missing ratios.{name}")))?;
        check("", name, recorded, current_ratio(report, name));
    }

    // The tune section is gated only when the baseline carries one (version-1
    // baselines predate it); a baseline that has it requires a --tune run to compare.
    if let Some(tune_baseline) = baseline.get("tune") {
        let Some(tune) = report.tune.as_ref() else {
            return Err(io_error(
                "baseline has a tune section but this run did not measure one; \
                 re-run with --tune",
            ));
        };
        let tune_ratios = tune_baseline
            .get("ratios")
            .ok_or_else(|| io_error("baseline artefact is missing tune.ratios"))?;
        for name in TUNE_GATED_RATIOS {
            let recorded = tune_ratios
                .get(name)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| {
                    io_error(format!("baseline artefact is missing tune.ratios.{name}"))
                })?;
            let current = match name {
                "pooled_vs_fresh" => tune.ratios.pooled_vs_fresh,
                "pooled_checkpoint_vs_fresh" => tune.ratios.pooled_checkpoint_vs_fresh,
                _ => unreachable!("unknown gated tune ratio {name}"),
            };
            check("tune.", name, recorded, current);
        }
    }

    if regressions.is_empty() {
        Ok(())
    } else {
        Err(io_error(format!(
            "bench regression beyond tolerance:\n  {}",
            regressions.join("\n  ")
        )))
    }
}

fn io_error(msg: impl Into<String>) -> CliError {
    CliError::Io(std::io::Error::other(msg.into()))
}

fn parse_usize(p: &ArgParser, name: &str, raw: &str, min: usize) -> Result<usize, CliError> {
    match raw.parse::<usize>() {
        Ok(v) if v >= min => Ok(v),
        _ => Err(p.usage(format!(
            "invalid value '{raw}' for '{name}' (expected an integer >= {min})"
        ))),
    }
}

/// Runs the subcommand.
///
/// # Errors
///
/// Fails on usage errors, unknown workloads, unreadable baselines, and — in gate
/// mode — on a ratio regression beyond the tolerance band.
pub fn run(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("bench", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let report_args = ReportArgs::from_parser(&mut p)?;
    let mut request = BenchRequest::default();
    if let Some(workload) = p.value("--workload")? {
        request.workload = workload;
    }
    if let Some(raw) = p.value("--iterations")? {
        request.iterations = parse_usize(&p, "--iterations", &raw, 1)?;
    }
    if let Some(raw) = p.value("--segments")? {
        request.segments = parse_usize(&p, "--segments", &raw, 1)?;
    }
    request.tune = p.flag(&["--tune"]);
    let baseline_path = p.value("--baseline")?;
    let tolerance = match p.value("--tolerance")? {
        None => DEFAULT_TOLERANCE,
        Some(raw) => match raw.parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                return Err(p.usage(format!(
                    "invalid value '{raw}' for '--tolerance' (expected a fraction in [0, 1))"
                )))
            }
        },
    };
    p.finish()?;

    let session = Session::builder().quick(report_args.quick()).build()?;
    eprintln!(
        "bench: replaying '{}' at {:?} scale, {} iteration(s) per mode, {} segment(s)",
        request.workload, report_args.scale, request.iterations, request.segments
    );
    let report = session.bench(&request)?;
    let artefact = BenchArtefact { report };
    report_args.emit(&artefact)?;

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)?;
        let baseline = Json::parse(&text)
            .map_err(|e| io_error(format!("baseline '{path}' is not valid JSON: {e}")))?;
        gate(&artefact.report, &baseline, tolerance)?;
        eprintln!("bench gate: all gated ratios within tolerance of '{path}'");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One real quick bench run (with the tune section), reused by every gate test.
    fn measured_report() -> BenchReport {
        let session = Session::builder().quick(true).build().unwrap();
        session
            .bench(&BenchRequest {
                workload: "fir".to_owned(),
                iterations: 1,
                segments: 2,
                batch_sweep: vec![],
                segment_sweep: vec![],
                tune: true,
            })
            .unwrap()
    }

    /// A baseline carrying only the fields the gate reads, at a chosen schema version,
    /// with ratios equal to the report's own (so the gate passes unless perturbed).
    fn baseline(version: u64, with_tune: bool, r: &BenchReport, tune_scale: f64) -> Json {
        let mut fields = vec![
            ("artefact", ARTEFACT.to_json()),
            ("version", version.to_json()),
            ("workload", r.workload.to_json()),
            ("quick", r.quick.to_json()),
            (
                "ratios",
                Json::obj([
                    (
                        "batched_vs_per_reference",
                        r.ratios.batched_vs_per_reference.to_json(),
                    ),
                    (
                        "streamed_vs_per_reference",
                        r.ratios.streamed_vs_per_reference.to_json(),
                    ),
                ]),
            ),
        ];
        if with_tune {
            let t = r.tune.as_ref().expect("report has a tune section");
            fields.push((
                "tune",
                Json::obj([(
                    "ratios",
                    Json::obj([
                        (
                            "pooled_vs_fresh",
                            (t.ratios.pooled_vs_fresh * tune_scale).to_json(),
                        ),
                        (
                            "pooled_checkpoint_vs_fresh",
                            (t.ratios.pooled_checkpoint_vs_fresh * tune_scale).to_json(),
                        ),
                    ]),
                )]),
            ));
        }
        Json::obj(fields)
    }

    #[test]
    fn gate_reads_baselines_of_both_schema_versions() {
        let report = measured_report();
        // v1 baselines predate the tune section: gated on the replay ratios only
        gate(&report, &baseline(1, false, &report, 1.0), 0.4).unwrap();
        // v2 baselines gate the tune ratios too
        gate(&report, &baseline(2, true, &report, 1.0), 0.4).unwrap();
        // a v2 baseline without a tune section is still fine (sections are optional)
        gate(&report, &baseline(2, false, &report, 1.0), 0.4).unwrap();
    }

    #[test]
    fn gate_rejects_unknown_schema_versions() {
        let report = measured_report();
        let err = gate(&report, &baseline(3, false, &report, 1.0), 0.4).unwrap_err();
        assert!(err.to_string().contains("schema version 3"));
    }

    #[test]
    fn gate_flags_tune_ratio_regressions() {
        let report = measured_report();
        // the baseline claims 10x better tune ratios than this run measured
        let err = gate(&report, &baseline(2, true, &report, 10.0), 0.4).unwrap_err();
        assert!(err.to_string().contains("tune.pooled"), "{err}");
    }

    #[test]
    fn gate_requires_a_tune_run_when_the_baseline_has_one() {
        let mut report = measured_report();
        let with_tune = baseline(2, true, &report, 1.0);
        report.tune = None;
        let err = gate(&report, &with_tune, 0.4).unwrap_err();
        assert!(err.to_string().contains("--tune"), "{err}");
    }
}
