//! `ccache bench` — measure replay throughput and gate against a committed baseline.
//!
//! The command is a thin client of [`Session::bench`]: it replays one calibrated
//! corpus workload through every engine datapath (per-reference, batched, streamed,
//! checkpoint-parallel), renders the versioned `ccache-bench` artefact, and — with
//! `--baseline` — compares the machine-independent mode *ratios* against a committed
//! artefact with a tolerance band. CI runs the gate on every push, so a change that
//! slows the batched or streamed datapath relative to per-reference replay fails the
//! build rather than landing silently.
//!
//! # Artefact schema (version 1)
//!
//! All host-dependent numbers live under `timing` keys, in `ratios` and in
//! `environment` — strip those (`jq 'del(.modes[].timing, .batch_sweep[].timing,
//! .segment_sweep[].timing, .ratios, .environment)'`) and the rest of the artefact is
//! byte-deterministic for a given workload and scale. See DESIGN.md ("Bench artefact &
//! datapath") for the full schema.

use crate::args::ArgParser;
use crate::error::CliError;
use crate::output::{markdown_table, Render, ReportArgs};
use ccache_json::{Json, ToJson};
use column_caching::bench::{BenchReport, BenchRequest};
use column_caching::Session;
use std::fmt::Write as _;

/// Artefact type tag, checked by the comparator before diffing anything.
const ARTEFACT: &str = "ccache-bench";
/// Artefact schema version, bumped on any breaking schema change.
const VERSION: u64 = 1;
/// Default allowed fractional regression of a gated ratio.
const DEFAULT_TOLERANCE: f64 = 0.4;
/// The ratios the gate checks: machine-independent mode-vs-mode speedups.
/// `checkpoint_parallel_vs_batched` is deliberately absent — it scales with the host's
/// thread count, so gating it would make CI pass/fail depend on runner hardware.
const GATED_RATIOS: [&str; 2] = ["batched_vs_per_reference", "streamed_vs_per_reference"];

/// Help text for `ccache bench`.
pub const USAGE: &str = "\
usage: ccache bench [options]

Measures replay throughput (references/second) for every engine datapath --
per-reference, batched, streamed from the binary trace format, and
checkpoint-parallel -- on one calibrated corpus workload, plus batch-size and
segment-count scaling curves. Every mode is asserted to produce identical
replay statistics, so the datapaths can only differ in speed, never results.

Absolute refs/sec are host-dependent; the mode-vs-mode ratios are not, and
--baseline gates on those: the build fails if a gated ratio drops more than
--tolerance below the committed artefact's value.

options:
  --quick, -q       reduced working sets for smoke tests
  --workload NAME   corpus workload to replay (default: mpeg-combined)
  --iterations N    timed repetitions per mode, best wins (default: 3)
  --segments N      segment count for checkpoint-parallel replay (default: 4)
  --baseline FILE   gate mode: compare ratios against a committed artefact
  --tolerance T     allowed fractional ratio regression (default: 0.4)
  --format FMT      json | csv | markdown (default: json)
  --out FILE        write the artefact in FMT to FILE instead of stdout
  --help, -h        show this help
";

/// The rendered artefact: the facade's report plus the schema tag and version.
struct BenchArtefact {
    report: BenchReport,
}

fn timing_json(timing: &column_caching::bench::BenchTiming) -> Json {
    Json::obj([
        ("elapsed_s", timing.elapsed_s.to_json()),
        ("refs_per_sec", timing.refs_per_sec.to_json()),
    ])
}

impl ToJson for BenchArtefact {
    fn to_json(&self) -> Json {
        let r = &self.report;
        Json::obj([
            ("artefact", ARTEFACT.to_json()),
            ("version", VERSION.to_json()),
            ("workload", r.workload.to_json()),
            ("quick", r.quick.to_json()),
            ("backend", r.backend.to_json()),
            ("references", r.references.to_json()),
            (
                "environment",
                Json::obj([
                    ("os", r.environment.os.to_json()),
                    ("arch", r.environment.arch.to_json()),
                    ("threads", (r.environment.threads as u64).to_json()),
                    ("debug_assertions", r.environment.debug_assertions.to_json()),
                    ("parallel", r.environment.parallel.to_json()),
                ]),
            ),
            (
                "result",
                Json::obj([
                    ("references", r.result.references.to_json()),
                    ("total_cycles", r.result.total_cycles().to_json()),
                    ("hits", r.result.hits.to_json()),
                    ("misses", r.result.misses.to_json()),
                    ("writebacks", r.result.writebacks.to_json()),
                    ("miss_rate", r.result.miss_rate().to_json()),
                ]),
            ),
            (
                "modes",
                Json::arr(r.modes.iter().map(|m| {
                    Json::obj([
                        ("mode", m.mode.to_json()),
                        ("iterations", (m.iterations as u64).to_json()),
                        ("timing", timing_json(&m.timing)),
                    ])
                })),
            ),
            (
                "batch_sweep",
                Json::arr(r.batch_sweep.iter().map(|p| {
                    Json::obj([
                        ("batch", p.value.to_json()),
                        ("timing", timing_json(&p.timing)),
                    ])
                })),
            ),
            (
                "segment_sweep",
                Json::arr(r.segment_sweep.iter().map(|p| {
                    Json::obj([
                        ("segments", p.value.to_json()),
                        ("timing", timing_json(&p.timing)),
                    ])
                })),
            ),
            (
                "ratios",
                Json::obj([
                    (
                        "batched_vs_per_reference",
                        r.ratios.batched_vs_per_reference.to_json(),
                    ),
                    (
                        "streamed_vs_per_reference",
                        r.ratios.streamed_vs_per_reference.to_json(),
                    ),
                    (
                        "checkpoint_parallel_vs_batched",
                        r.ratios.checkpoint_parallel_vs_batched.to_json(),
                    ),
                ]),
            ),
        ])
    }
}

impl BenchArtefact {
    fn rows(&self) -> Vec<Vec<String>> {
        self.report
            .modes
            .iter()
            .map(|m| {
                vec![
                    m.mode.to_owned(),
                    self.report.references.to_string(),
                    format!("{:.6}", m.timing.elapsed_s),
                    format!("{:.0}", m.timing.refs_per_sec),
                ]
            })
            .collect()
    }
}

impl Render for BenchArtefact {
    fn to_json_text(&self) -> String {
        self.to_json().pretty()
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("mode,references,elapsed_s,refs_per_sec\n");
        for row in self.rows() {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    fn to_markdown(&self) -> String {
        let r = &self.report;
        let mut out = format!(
            "### Replay bench — `{}` ({} references, {})\n\n",
            r.workload,
            r.references,
            if r.quick { "quick scale" } else { "full scale" },
        );
        out.push_str(&markdown_table(
            &["mode", "references", "elapsed (s)", "refs/sec"],
            &self.rows(),
        ));
        let _ = write!(
            out,
            "\nbatched vs per-reference: {:.2}x · streamed vs per-reference: {:.2}x · \
             checkpoint-parallel vs batched: {:.2}x\n",
            r.ratios.batched_vs_per_reference,
            r.ratios.streamed_vs_per_reference,
            r.ratios.checkpoint_parallel_vs_batched,
        );
        out
    }
}

/// A ratio read out of a baseline artefact, by the names in [`GATED_RATIOS`].
fn current_ratio(report: &BenchReport, name: &str) -> f64 {
    match name {
        "batched_vs_per_reference" => report.ratios.batched_vs_per_reference,
        "streamed_vs_per_reference" => report.ratios.streamed_vs_per_reference,
        _ => unreachable!("unknown gated ratio {name}"),
    }
}

/// Compares the run's gated ratios against a committed baseline artefact.
///
/// The gate passes when every gated ratio is at least `baseline * (1 - tolerance)`;
/// improvements always pass. Identity fields (artefact tag, version, workload, scale)
/// must match, otherwise the comparison would be between different measurements.
fn gate(report: &BenchReport, baseline: &Json, tolerance: f64) -> Result<(), CliError> {
    let field = |name: &str| {
        baseline
            .get(name)
            .cloned()
            .ok_or_else(|| io_error(format!("baseline artefact is missing '{name}'")))
    };
    let tag = field("artefact")?;
    if tag.as_str() != Some(ARTEFACT) {
        return Err(io_error(format!(
            "baseline is not a {ARTEFACT} artefact (artefact = {})",
            tag.compact()
        )));
    }
    let version = field("version")?;
    if version.as_u64() != Some(VERSION) {
        return Err(io_error(format!(
            "baseline schema version {} does not match this binary's version {VERSION}",
            version.compact()
        )));
    }
    let workload = field("workload")?;
    if workload.as_str() != Some(&report.workload) {
        return Err(io_error(format!(
            "baseline was recorded for workload {}, this run replayed '{}'",
            workload.compact(),
            report.workload
        )));
    }
    let quick = field("quick")?;
    if quick.as_bool() != Some(report.quick) {
        return Err(io_error(
            "baseline and this run were recorded at different scales (quick flag differs)",
        ));
    }

    let ratios = field("ratios")?;
    let mut regressions = Vec::new();
    for name in GATED_RATIOS {
        let recorded = ratios
            .get(name)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| io_error(format!("baseline artefact is missing ratios.{name}")))?;
        let current = current_ratio(report, name);
        let floor = recorded * (1.0 - tolerance);
        if current < floor {
            regressions.push(format!(
                "{name}: {current:.3} < {floor:.3} (baseline {recorded:.3}, tolerance {tolerance})"
            ));
        } else {
            eprintln!("bench gate: {name} {current:.3} vs baseline {recorded:.3} — ok");
        }
    }
    if regressions.is_empty() {
        Ok(())
    } else {
        Err(io_error(format!(
            "bench regression beyond tolerance:\n  {}",
            regressions.join("\n  ")
        )))
    }
}

fn io_error(msg: impl Into<String>) -> CliError {
    CliError::Io(std::io::Error::other(msg.into()))
}

fn parse_usize(p: &ArgParser, name: &str, raw: &str, min: usize) -> Result<usize, CliError> {
    match raw.parse::<usize>() {
        Ok(v) if v >= min => Ok(v),
        _ => Err(p.usage(format!(
            "invalid value '{raw}' for '{name}' (expected an integer >= {min})"
        ))),
    }
}

/// Runs the subcommand.
///
/// # Errors
///
/// Fails on usage errors, unknown workloads, unreadable baselines, and — in gate
/// mode — on a ratio regression beyond the tolerance band.
pub fn run(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("bench", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let report_args = ReportArgs::from_parser(&mut p)?;
    let mut request = BenchRequest::default();
    if let Some(workload) = p.value("--workload")? {
        request.workload = workload;
    }
    if let Some(raw) = p.value("--iterations")? {
        request.iterations = parse_usize(&p, "--iterations", &raw, 1)?;
    }
    if let Some(raw) = p.value("--segments")? {
        request.segments = parse_usize(&p, "--segments", &raw, 1)?;
    }
    let baseline_path = p.value("--baseline")?;
    let tolerance = match p.value("--tolerance")? {
        None => DEFAULT_TOLERANCE,
        Some(raw) => match raw.parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                return Err(p.usage(format!(
                    "invalid value '{raw}' for '--tolerance' (expected a fraction in [0, 1))"
                )))
            }
        },
    };
    p.finish()?;

    let session = Session::builder().quick(report_args.quick()).build()?;
    eprintln!(
        "bench: replaying '{}' at {:?} scale, {} iteration(s) per mode, {} segment(s)",
        request.workload, report_args.scale, request.iterations, request.segments
    );
    let report = session.bench(&request)?;
    let artefact = BenchArtefact { report };
    report_args.emit(&artefact)?;

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)?;
        let baseline = Json::parse(&text)
            .map_err(|e| io_error(format!("baseline '{path}' is not valid JSON: {e}")))?;
        gate(&artefact.report, &baseline, tolerance)?;
        eprintln!("bench gate: all gated ratios within tolerance of '{path}'");
    }
    Ok(())
}
