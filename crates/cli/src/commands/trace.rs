//! `ccache trace` — record, inspect and convert trace files.
//!
//! Three sub-subcommands:
//!
//! * `record`  — generate a synthetic reference stream and write it as a trace file;
//! * `info`    — print the header and summary statistics of a trace file (streaming, so
//!   it works on files larger than memory);
//! * `convert` — translate between the text and compact binary formats.

use crate::args::ArgParser;
use crate::error::CliError;
use crate::output::{emit, markdown_table, OutputFormat, Render};
use ccache_json::{Json, ToJson};
use ccache_trace::binfmt::{self, TraceReader, TraceWriter};
use ccache_trace::synth;
use ccache_trace::textfmt;
use ccache_trace::Trace;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, BufWriter};

/// Help text for `ccache trace`.
pub const USAGE: &str = "\
usage: ccache trace <record|info|convert> [options]

subcommands:
  record   generate a synthetic trace file
             --gen KIND      scan | rmw | random | chase (default: scan)
             --base ADDR     start address (default: 0)
             --len BYTES     region length (default: 65536)
             --stride BYTES  scan/rmw stride (default: 32)
             --size BYTES    access size (default: 4)
             --passes N      scan/rmw passes over the region (default: 1)
             --count N       random/chase access count (default: 65536)
             --seed N        random seed (default: 42)
             --out FILE      output path (required)
             --format FMT    binary | text (default: binary)
  info     print header and summary statistics of a trace file
             FILE            the trace to inspect (positional)
             --format FMT    json | csv | markdown (default: markdown)
             --out FILE      write the report to FILE instead of stdout
  convert  translate a trace between the text and binary formats
             IN OUT          input and output paths (positional); the input format is
                             detected by magic and the output gets the other format
             --to FMT        force the output format: binary | text
";

/// Dispatches the `trace` sub-subcommands.
///
/// # Errors
///
/// Fails on usage errors or I/O failures.
pub fn run(mut args: Vec<String>) -> Result<(), CliError> {
    if args.first().map(String::as_str) == Some("--help")
        || args.first().map(String::as_str) == Some("-h")
        || args.is_empty()
    {
        print!("{USAGE}");
        return Ok(());
    }
    let sub = args.remove(0);
    match sub.as_str() {
        "record" => record(args),
        "info" => info(args),
        "convert" => convert(args),
        other => Err(CliError::usage(format!(
            "unknown subcommand 'trace {other}' (expected record, info or convert; try 'ccache trace --help')"
        ))),
    }
}

fn record(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("trace record", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let gen = p.value("--gen")?.unwrap_or_else(|| "scan".to_owned());
    let base = p.parsed::<u64>("--base")?.unwrap_or(0);
    let len = p.parsed::<u64>("--len")?.unwrap_or(64 * 1024);
    let stride = p.parsed::<u64>("--stride")?.unwrap_or(32);
    let size = p.parsed::<u32>("--size")?.unwrap_or(4);
    let passes = p.parsed::<usize>("--passes")?.unwrap_or(1);
    let count = p.parsed::<usize>("--count")?.unwrap_or(64 * 1024);
    let seed = p.parsed::<u64>("--seed")?.unwrap_or(42);
    let out = match p.value("--out")? {
        Some(path) => path,
        None => return Err(p.usage("missing required flag '--out FILE'")),
    };
    let binary = match p.value("--format")?.as_deref() {
        None | Some("binary") => true,
        Some("text") => false,
        Some(other) => {
            return Err(p.usage(format!(
                "invalid value '{other}' for '--format' (expected binary or text)"
            )))
        }
    };
    if !["scan", "rmw", "random", "chase"].contains(&gen.as_str()) {
        return Err(p.usage(format!(
            "invalid value '{gen}' for '--gen' (expected scan, rmw, random or chase)"
        )));
    }
    // The generators assert on degenerate geometry; turn those into usage errors.
    if len == 0 {
        return Err(p.usage("invalid value '0' for '--len' (must be positive)"));
    }
    if stride == 0 && matches!(gen.as_str(), "scan" | "rmw") {
        return Err(p.usage("invalid value '0' for '--stride' (must be positive)"));
    }
    if gen == "chase" && len < u64::from(size.max(1)) {
        return Err(p.usage(format!(
            "'--len' ({len}) must be at least '--size' ({size}) for the chase generator"
        )));
    }
    p.finish()?;

    let trace = match gen.as_str() {
        "scan" => synth::sequential_scan(base, len, stride, size, passes, None),
        "rmw" => synth::read_modify_write(base, len, stride, size, passes, None),
        "random" => synth::pseudo_random(base, len, size, count, seed, None),
        _ => synth::pointer_chase(base, len, size, count, None),
    };

    let file = BufWriter::new(std::fs::File::create(&out)?);
    if binary {
        binfmt::write_trace(&trace, file)?;
    } else {
        textfmt::write_trace(&trace, file)?;
    }
    println!(
        "recorded {} events ({} reads, {} writes) to {out}",
        trace.len(),
        trace.read_count(),
        trace.write_count()
    );
    Ok(())
}

/// Summary of one trace file, as printed by `ccache trace info`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceInfoReport {
    /// Path of the inspected file.
    pub path: String,
    /// `"binary"` or `"text"`.
    pub encoding: &'static str,
    /// Format version (binary traces only).
    pub version: Option<u32>,
    /// Size of the file in bytes.
    pub file_bytes: u64,
    /// Total events.
    pub events: u64,
    /// Read events.
    pub reads: u64,
    /// Write events.
    pub writes: u64,
    /// Lowest address referenced.
    pub min_addr: u64,
    /// Highest (inclusive) address referenced.
    pub max_addr: u64,
}

impl ToJson for TraceInfoReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("path", self.path.to_json()),
            ("encoding", self.encoding.to_json()),
            ("version", self.version.to_json()),
            ("file_bytes", self.file_bytes.to_json()),
            ("events", self.events.to_json()),
            ("reads", self.reads.to_json()),
            ("writes", self.writes.to_json()),
            ("min_addr", self.min_addr.to_json()),
            ("max_addr", self.max_addr.to_json()),
        ])
    }
}

impl Render for TraceInfoReport {
    fn to_json_text(&self) -> String {
        self.to_json().pretty()
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("field,value\n");
        for (k, v) in self.fields() {
            let _ = writeln!(out, "{k},{v}");
        }
        out
    }

    fn to_markdown(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .fields()
            .into_iter()
            .map(|(k, v)| vec![k.to_owned(), v])
            .collect();
        format!(
            "### Trace `{}`\n\n{}",
            self.path,
            markdown_table(&["field", "value"], &rows)
        )
    }
}

impl TraceInfoReport {
    fn fields(&self) -> Vec<(&'static str, String)> {
        let mut fields = vec![("encoding", self.encoding.to_owned())];
        if let Some(v) = self.version {
            fields.push(("version", v.to_string()));
        }
        fields.push(("file_bytes", self.file_bytes.to_string()));
        fields.push(("events", self.events.to_string()));
        fields.push(("reads", self.reads.to_string()));
        fields.push(("writes", self.writes.to_string()));
        fields.push(("min_addr", format!("{:#x}", self.min_addr)));
        fields.push(("max_addr", format!("{:#x}", self.max_addr)));
        fields
    }
}

fn info(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("trace info", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let path = p.positional("trace file")?;
    let format = match p.value("--format")? {
        Some(raw) => OutputFormat::parse(&raw, &p)?,
        None => OutputFormat::Markdown,
    };
    let out = p.value("--out")?;
    p.finish()?;

    let file_bytes = std::fs::metadata(&path)?.len();
    let mut events = 0u64;
    let mut writes = 0u64;
    let mut min_addr = u64::MAX;
    let mut max_addr = 0u64;
    let mut tally = |addr: u64, last: u64, is_write: bool| {
        events += 1;
        writes += u64::from(is_write);
        min_addr = min_addr.min(addr);
        max_addr = max_addr.max(last);
    };

    let (encoding, version) = if binfmt::is_binary_trace_file(&path)? {
        let mut reader = TraceReader::open(&path)?;
        let version = reader.header().version;
        while let Some(ev) = reader.next_event()? {
            tally(ev.addr, ev.last_byte(), ev.is_write());
        }
        ("binary", Some(version))
    } else {
        let source = BufReader::new(std::fs::File::open(&path)?);
        for (i, line) in source.lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let ev = textfmt::parse_line(i + 1, trimmed)?;
            tally(ev.addr, ev.last_byte(), ev.is_write());
        }
        ("text", None)
    };

    let report = TraceInfoReport {
        path,
        encoding,
        version,
        file_bytes,
        events,
        reads: events - writes,
        writes,
        min_addr: if events == 0 { 0 } else { min_addr },
        max_addr,
    };
    emit(&report, format, out.as_deref())
}

fn convert(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("trace convert", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let input = p.positional("input trace file")?;
    let output = p.positional("output trace file")?;
    let to = p.value("--to")?;
    if !matches!(to.as_deref(), None | Some("binary") | Some("text")) {
        return Err(p.usage(format!(
            "invalid value '{}' for '--to' (expected binary or text)",
            to.unwrap_or_default()
        )));
    }
    // Creating the sink truncates it, so converting a file onto itself would destroy
    // the input before it is ever read.
    let same_file = input == output
        || match (
            std::fs::canonicalize(&input),
            std::fs::canonicalize(&output),
        ) {
            (Ok(a), Ok(b)) => a == b,
            _ => false,
        };
    if same_file {
        return Err(p.usage(format!(
            "input and output are the same file ('{input}'); convert to a different path"
        )));
    }
    p.finish()?;

    let input_binary = binfmt::is_binary_trace_file(&input)?;
    let to_binary = match to.as_deref() {
        None => !input_binary,
        Some("binary") => true,
        _ => false,
    };

    let sink = BufWriter::new(std::fs::File::create(&output)?);
    let events = if input_binary && !to_binary {
        // binary -> text streams event by event; the file never has to fit in memory.
        let mut reader = TraceReader::open(&input)?;
        let mut sink = sink;
        let mut n = 0u64;
        while let Some(ev) = reader.next_event()? {
            textfmt::write_event(&mut sink, &ev)?;
            n += 1;
        }
        n
    } else if input_binary && to_binary {
        // Re-encode (normalises run boundaries): stream through the writer using the
        // declared event count.
        let mut reader = TraceReader::open(&input)?;
        let mut writer = TraceWriter::new(sink, reader.header().events)?;
        let mut n = 0u64;
        while let Some(ev) = reader.next_event()? {
            writer.write_event(&ev)?;
            n += 1;
        }
        writer.finish()?;
        n
    } else {
        // Text input: the binary header needs the event count up front, so load it.
        let trace: Trace = textfmt::read_trace(BufReader::new(std::fs::File::open(&input)?))?;
        if to_binary {
            binfmt::write_trace(&trace, sink)?;
        } else {
            textfmt::write_trace(&trace, sink)?;
        }
        trace.len() as u64
    };
    println!(
        "converted {input} -> {output} ({} events, {} format)",
        events,
        if to_binary { "binary" } else { "text" }
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("ccache-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn record_convert_info_round_trip() {
        let txt = tmp("t1.trace");
        let bin = tmp("t1.cct");
        record(vec![
            "--gen".into(),
            "random".into(),
            "--count".into(),
            "500".into(),
            "--out".into(),
            txt.clone(),
            "--format".into(),
            "text".into(),
        ])
        .unwrap();
        convert(vec![txt.clone(), bin.clone()]).unwrap();
        assert!(binfmt::is_binary_trace_file(&bin).unwrap());
        assert!(!binfmt::is_binary_trace_file(&txt).unwrap());

        let a = textfmt::read_trace(BufReader::new(std::fs::File::open(&txt).unwrap())).unwrap();
        let b = binfmt::read_trace(std::fs::File::open(&bin).unwrap()).unwrap();
        assert_eq!(a, b);

        // binary -> text round-trips too
        let txt2 = tmp("t1-back.trace");
        convert(vec![bin.clone(), txt2.clone()]).unwrap();
        assert_eq!(
            std::fs::read_to_string(&txt).unwrap(),
            std::fs::read_to_string(&txt2).unwrap()
        );

        info(vec![bin, "--format".into(), "json".into()]).unwrap();
    }

    #[test]
    fn convert_refuses_to_clobber_its_own_input() {
        let bin = tmp("t3.cct");
        record(vec![
            "--gen".into(),
            "scan".into(),
            "--len".into(),
            "1024".into(),
            "--out".into(),
            bin.clone(),
        ])
        .unwrap();
        let before = std::fs::read(&bin).unwrap();
        let err = convert(vec![bin.clone(), bin.clone()]).unwrap_err();
        assert!(err.to_string().contains("same file"), "{err}");
        assert_eq!(err.exit_code(), 2);
        assert_eq!(std::fs::read(&bin).unwrap(), before, "input must survive");
    }

    #[test]
    fn degenerate_generator_geometry_is_a_usage_error_not_a_panic() {
        for args in [
            vec!["--stride", "0"],
            vec!["--len", "0"],
            vec!["--gen", "random", "--len", "0"],
            vec!["--gen", "chase", "--len", "2", "--size", "8"],
        ] {
            let mut argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            argv.extend(["--out".to_owned(), tmp("never2.cct")]);
            let err = record(argv).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{err}");
        }
    }

    #[test]
    fn unknown_generators_and_subcommands_are_usage_errors() {
        let err = record(vec![
            "--gen".into(),
            "zipf".into(),
            "--out".into(),
            tmp("never.cct"),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("invalid value 'zipf'"));
        let err = run(vec!["compress".into()]).unwrap_err();
        assert!(err
            .to_string()
            .contains("unknown subcommand 'trace compress'"));
    }

    #[test]
    fn info_reports_counts_and_addresses() {
        let txt = tmp("t2.trace");
        std::fs::write(&txt, "# demo\nR 0x100 4\nW 0x200 8\n").unwrap();
        let report_path = tmp("t2.json");
        info(vec![
            txt,
            "--format".into(),
            "json".into(),
            "--out".into(),
            report_path.clone(),
        ])
        .unwrap();
        let json = std::fs::read_to_string(&report_path).unwrap();
        assert!(json.contains("\"events\": 2"));
        assert!(json.contains("\"writes\": 1"));
        assert!(json.contains("\"min_addr\": 256"));
        assert!(json.contains("\"max_addr\": 519"));
    }
}
