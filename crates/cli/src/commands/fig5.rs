//! `ccache fig5` — the Figure 5 multitasking CPI-versus-quantum sweep.
//!
//! A preset over the experiment layer: the command compiles to
//! [`ccache_exp::presets::fig5_spec`] (the default multitask grid with this scale's
//! quanta), runs through the shared pipeline and reassembles the outcomes into the
//! legacy [`Fig5Report`] — byte-identical JSON to the pre-refactor command
//! (golden-tested).

use crate::args::ArgParser;
use crate::error::CliError;
use crate::output::{csv_field, markdown_table, Render, ReportArgs};
use crate::scale::Scale;
use ccache_core::multitask::QuantumSeries;
use ccache_core::report::quantum_table;
use ccache_exp::exec::JobOutcome;
use ccache_exp::presets::fig5_spec;
use ccache_json::{Json, ToJson};
use std::fmt::Write as _;

/// Help text for `ccache fig5`.
pub const USAGE: &str = "\
usage: ccache fig5 [options]

Reproduces Figure 5: CPI of gzip job A versus the context-switch quantum under
round-robin multitasking with three gzip jobs, for a standard cache and a mapped column
cache, at 16 KiB and 128 KiB.

options:
  --quick, -q       reduced working sets for smoke tests
  --json FILE       write the JSON artefact (same as --format json --out FILE)
  --format FMT      json | csv | markdown (default: json)
  --out FILE        write the report in FMT to FILE instead of stdout
  --help, -h        show this help
";

/// The Figure 5 report: every (configuration × sharing policy) series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Report {
    /// The CPI-versus-quantum series, in run order.
    pub series: Vec<QuantumSeries>,
}

impl Fig5Report {
    /// The JSON document (layout identical to the legacy `fig5 --json` artefact).
    pub fn to_json(&self) -> Json {
        Json::obj([("figure", "5".to_json()), ("series", self.series.to_json())])
    }
}

impl Render for Fig5Report {
    fn to_json_text(&self) -> String {
        self.to_json().pretty()
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("series,quantum,cpi\n");
        for s in &self.series {
            for &(q, cpi) in &s.points {
                let _ = writeln!(out, "{},{},{:.6}", csv_field(&s.label), q, cpi);
            }
        }
        out
    }

    fn to_markdown(&self) -> String {
        let mut out = String::from("## Figure 5 — CPI of job A vs. context-switch quantum\n\n");
        let quanta: Vec<usize> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|&(q, _)| q).collect())
            .unwrap_or_default();
        let mut header: Vec<&str> = vec!["quantum"];
        header.extend(self.series.iter().map(|s| s.label.as_str()));
        let rows: Vec<Vec<String>> = quanta
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let mut row = vec![q.to_string()];
                for s in &self.series {
                    row.push(match s.points.get(i) {
                        Some(&(_, cpi)) => format!("{cpi:.3}"),
                        None => "-".to_owned(),
                    });
                }
                row
            })
            .collect();
        out.push_str(&markdown_table(&header, &rows));
        out
    }
}

/// Runs the fig5 preset through the experiment pipeline and reassembles the series,
/// plus the `(name, references)` of each scheduled job (for the header, so the job
/// traces are only ever generated once, inside the executor).
///
/// # Errors
///
/// Fails on invalid configurations or execution failures.
pub fn compute(scale: Scale) -> Result<(Fig5Report, Vec<(String, u64)>), CliError> {
    let spec = fig5_spec(scale.quanta());
    let session = column_caching::Session::builder()
        .quick(scale.is_quick())
        .build()?;
    let artefact = session.run_spec(&spec)?;
    // Every run attributes each job's full reference stream to it, so any outcome
    // reports the per-job trace lengths.
    let jobs: Vec<(String, u64)> = match artefact.outcomes.first() {
        Some(JobOutcome::Multitask { run, .. }) => run
            .jobs
            .iter()
            .map(|j| (j.name.clone(), j.references))
            .collect(),
        _ => Vec::new(),
    };
    let mut series: Vec<QuantumSeries> = Vec::new();
    for outcome in &artefact.outcomes {
        let JobOutcome::Multitask {
            series: label,
            quantum,
            run,
        } = outcome
        else {
            unreachable!("fig5 plans multitask jobs only");
        };
        if series.last().map(|s| s.label.as_str()) != Some(label.as_str()) {
            series.push(QuantumSeries {
                label: label.clone(),
                points: Vec::new(),
            });
        }
        series
            .last_mut()
            .expect("series pushed above")
            .points
            .push((*quantum, run.critical_job().cpi));
    }
    Ok((Fig5Report { series }, jobs))
}

/// Runs the subcommand.
///
/// # Errors
///
/// Fails on usage errors, invalid configurations or file-write failures.
pub fn run(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("fig5", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let report_args = ReportArgs::from_parser_with_legacy_json(&mut p)?;
    p.finish()?;
    let scale = report_args.scale;

    let (report, jobs) = compute(scale)?;
    println!("Figure 5 — three gzip jobs, round-robin, {:?} scale", scale);
    for (name, references) in &jobs {
        println!("  {name}: {references} references");
    }
    println!();
    println!("{}", quantum_table(&report.series));
    report_args.emit_if_requested(&report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Fig5Report {
        Fig5Report {
            series: vec![
                QuantumSeries {
                    label: "gzip.16k".into(),
                    points: vec![(1, 2.8), (4, 2.5)],
                },
                QuantumSeries {
                    label: "gzip.16k mapped".into(),
                    points: vec![(1, 1.9), (4, 1.9)],
                },
            ],
        }
    }

    #[test]
    fn json_layout_matches_the_legacy_artefact() {
        let r = sample();
        let legacy = Json::obj([("figure", "5".to_json()), ("series", r.series.to_json())]);
        assert_eq!(r.to_json_text(), legacy.pretty());
    }

    #[test]
    fn csv_is_long_format_and_markdown_is_wide() {
        let r = sample();
        let csv = r.to_csv();
        assert!(csv.contains("gzip.16k,1,2.800000"));
        assert!(csv.contains("gzip.16k mapped,4,1.900000"));
        let md = r.to_markdown();
        assert!(md.contains("| quantum | gzip.16k | gzip.16k mapped |"));
        assert!(md.contains("| 1 | 2.800 | 1.900 |"));
    }
}
