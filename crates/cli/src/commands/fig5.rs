//! `ccache fig5` — the Figure 5 multitasking CPI-versus-quantum sweep.

use crate::args::ArgParser;
use crate::error::CliError;
use crate::output::{csv_field, emit, markdown_table, OutputFormat, Render};
use crate::scale::{figure5_configs, figure5_jobs, Scale};
use ccache_core::multitask::{quantum_sweep, QuantumSeries, SharingPolicy};
use ccache_core::report::quantum_table;
use ccache_json::{Json, ToJson};
use std::fmt::Write as _;

/// Help text for `ccache fig5`.
pub const USAGE: &str = "\
usage: ccache fig5 [options]

Reproduces Figure 5: CPI of gzip job A versus the context-switch quantum under
round-robin multitasking with three gzip jobs, for a standard cache and a mapped column
cache, at 16 KiB and 128 KiB.

options:
  --quick, -q       reduced working sets for smoke tests
  --json FILE       write the JSON artefact (same as --format json --out FILE)
  --format FMT      json | csv | markdown (default: json)
  --out FILE        write the report in FMT to FILE instead of stdout
  --help, -h        show this help
";

/// The Figure 5 report: every (configuration × sharing policy) series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Report {
    /// The CPI-versus-quantum series, in run order.
    pub series: Vec<QuantumSeries>,
}

impl Fig5Report {
    /// The JSON document (layout identical to the legacy `fig5 --json` artefact).
    pub fn to_json(&self) -> Json {
        Json::obj([("figure", "5".to_json()), ("series", self.series.to_json())])
    }
}

impl Render for Fig5Report {
    fn to_json_text(&self) -> String {
        self.to_json().pretty()
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("series,quantum,cpi\n");
        for s in &self.series {
            for &(q, cpi) in &s.points {
                let _ = writeln!(out, "{},{},{:.6}", csv_field(&s.label), q, cpi);
            }
        }
        out
    }

    fn to_markdown(&self) -> String {
        let mut out = String::from("## Figure 5 — CPI of job A vs. context-switch quantum\n\n");
        let quanta: Vec<usize> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|&(q, _)| q).collect())
            .unwrap_or_default();
        let mut header: Vec<&str> = vec!["quantum"];
        header.extend(self.series.iter().map(|s| s.label.as_str()));
        let rows: Vec<Vec<String>> = quanta
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let mut row = vec![q.to_string()];
                for s in &self.series {
                    row.push(match s.points.get(i) {
                        Some(&(_, cpi)) => format!("{cpi:.3}"),
                        None => "-".to_owned(),
                    });
                }
                row
            })
            .collect();
        out.push_str(&markdown_table(&header, &rows));
        out
    }
}

/// Runs the subcommand.
///
/// # Errors
///
/// Fails on usage errors, invalid configurations or file-write failures.
pub fn run(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("fig5", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let scale = Scale::from_parser(&mut p);
    let json_path = p.value("--json")?;
    let format_raw = p.value("--format")?;
    let out = p.value("--out")?;
    let format = match &format_raw {
        Some(raw) => OutputFormat::parse(raw, &p)?,
        None => OutputFormat::Json,
    };
    p.finish()?;

    let jobs = figure5_jobs(scale);
    println!("Figure 5 — three gzip jobs, round-robin, {:?} scale", scale);
    for j in &jobs {
        println!("  {}: {} references", j.name, j.trace.len());
    }
    println!();

    let quanta = scale.quanta();
    let mut series = Vec::new();
    for (label, config) in figure5_configs() {
        series.push(quantum_sweep(
            &jobs,
            &quanta,
            &config,
            SharingPolicy::Shared,
            label,
        )?);
        series.push(quantum_sweep(
            &jobs,
            &quanta,
            &config,
            SharingPolicy::Mapped,
            &format!("{label} mapped"),
        )?);
    }
    println!("{}", quantum_table(&series));

    let report = Fig5Report { series };
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json_text())?;
        println!("wrote {path}");
    }
    if out.is_some() || format_raw.is_some() {
        emit(&report, format, out.as_deref())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Fig5Report {
        Fig5Report {
            series: vec![
                QuantumSeries {
                    label: "gzip.16k".into(),
                    points: vec![(1, 2.8), (4, 2.5)],
                },
                QuantumSeries {
                    label: "gzip.16k mapped".into(),
                    points: vec![(1, 1.9), (4, 1.9)],
                },
            ],
        }
    }

    #[test]
    fn json_layout_matches_the_legacy_artefact() {
        let r = sample();
        let legacy = Json::obj([("figure", "5".to_json()), ("series", r.series.to_json())]);
        assert_eq!(r.to_json_text(), legacy.pretty());
    }

    #[test]
    fn csv_is_long_format_and_markdown_is_wide() {
        let r = sample();
        let csv = r.to_csv();
        assert!(csv.contains("gzip.16k,1,2.800000"));
        assert!(csv.contains("gzip.16k mapped,4,1.900000"));
        let md = r.to_markdown();
        assert!(md.contains("| quantum | gzip.16k | gzip.16k mapped |"));
        assert!(md.contains("| 1 | 2.800 | 1.900 |"));
    }
}
