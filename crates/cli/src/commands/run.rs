//! `ccache run` — execute a declarative experiment spec file.
//!
//! The scenario-growth endgame of the experiment layer: instead of a new subcommand,
//! a new experiment is a new JSON file (see `examples/specs/`). The spec describes a
//! union of cross-product grids (workloads × backends × geometries × mapping policies,
//! plus multitask grids); the planner deduplicates the expansion, the executor replays
//! everything through the batched engine, and the unified artefact is emitted in any
//! `--format`. Runs are fully deterministic: the same spec and flags produce a
//! byte-identical artefact (CI diffs repeated runs).

use crate::args::ArgParser;
use crate::error::CliError;
use crate::output::{csv_field, markdown_table, Render, ReportArgs};
use ccache_exp::spec::ExperimentSpec;
use ccache_exp::Artefact;
use ccache_json::ToJson;
use column_caching::Session;
use std::fmt::Write as _;

/// Help text for `ccache run`.
pub const USAGE: &str = "\
usage: ccache run SPEC.json [options]

Runs a declarative experiment spec: a JSON file describing grids of
(workload x backend x geometry x mapping policy) replays and multitask sweeps.
The grids are expanded, deduplicated (the same configuration is never replayed
twice), executed through the batched replay engine and reported as one artefact.
Plan statistics go to stderr so a piped stdout stays machine-readable.

options:
  --quick, -q       reduced working sets for smoke tests
  --observe window=N
                    attach a streaming observer: every replay and dynamic job
                    gains a windowed miss-rate/CPI 'time_series' block (one
                    sample per N references, plus phase/remap events); replays
                    whose final window is partial (trace length not divisible
                    by N) are counted and reported on stderr
  --format FMT      json | csv | markdown (default: json)
  --out FILE        write the artefact in FMT to FILE instead of stdout
  --help, -h        show this help

See examples/specs/ for ready-made scenarios and DESIGN.md for the spec schema.
";

/// Parses the `--observe` value: `window=N` (or bare `N`), with N >= 1.
fn parse_observe(raw: &str, parser: &ArgParser) -> Result<u64, CliError> {
    let digits = raw.strip_prefix("window=").unwrap_or(raw);
    match digits.parse::<u64>() {
        Ok(window) if window >= 1 => Ok(window),
        _ => Err(parser.usage(format!(
            "invalid value '{raw}' for '--observe' (expected window=N with N >= 1)"
        ))),
    }
}

impl Render for Artefact {
    fn to_json_text(&self) -> String {
        self.to_json().pretty()
    }

    fn to_csv(&self) -> String {
        let (header, rows) = self.summary_rows();
        let mut out = header.join(",");
        out.push('\n');
        for row in rows {
            let fields: Vec<String> = row.iter().map(|f| csv_field(f)).collect();
            let _ = writeln!(out, "{}", fields.join(","));
        }
        out
    }

    fn to_markdown(&self) -> String {
        let mut out = format!(
            "## Experiment `{}` — {} jobs ({} expanded)\n\n",
            self.spec.name,
            self.jobs.len(),
            self.expanded
        );
        let (header, rows) = self.summary_rows();
        out.push_str(&markdown_table(&header, &rows));
        out
    }
}

/// Runs the subcommand.
///
/// # Errors
///
/// Fails on usage errors, unreadable or invalid spec files, and execution failures.
pub fn run(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("run", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let report_args = ReportArgs::from_parser(&mut p)?;
    let observe = match p.value("--observe")? {
        None => None,
        Some(raw) => Some(parse_observe(&raw, &p)?),
    };
    let spec_path = p.positional("spec file (e.g. examples/specs/backend-shootout.json)")?;
    p.finish()?;

    let text = std::fs::read_to_string(&spec_path)?;
    let spec = ExperimentSpec::parse_str(&text)?;
    let plan = ccache_exp::plan(&spec);
    eprintln!(
        "experiment '{}': {} jobs planned ({} expanded, {} deduplicated), {:?} scale",
        spec.name,
        plan.len(),
        plan.expanded,
        plan.expanded - plan.len(),
        report_args.scale
    );
    let mut builder = Session::builder().quick(report_args.quick());
    // A private registry so the coalesced-window report below reflects this run only.
    let telemetry = column_caching::telemetry::Registry::new();
    if let Some(window) = observe {
        builder = builder.observe(window).telemetry(telemetry.clone());
    }
    // run_plan reuses the plan computed for the narration above — no second expansion.
    let artefact = builder.build()?.run_plan(&spec, plan)?;
    if observe.is_some() {
        let coalesced = telemetry.counter_value("engine.observe.coalesced_windows");
        if coalesced > 0 {
            eprintln!(
                "observer: {coalesced} replay(s) coalesced a final partial window \
                 (trace length not divisible by the window)"
            );
        }
    }
    report_args.emit(&artefact)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_spec_files_are_io_errors() {
        let err = run(vec!["definitely-missing.json".to_owned()]).unwrap_err();
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn missing_positional_is_a_usage_error() {
        let err = run(Vec::new()).unwrap_err();
        assert!(err.to_string().contains("spec file"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn invalid_specs_fail_with_the_spec_reason() {
        let dir = std::env::temp_dir().join("ccache-run-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{\"name\": \"x\"}").unwrap();
        let err = run(vec![path.to_string_lossy().into_owned()]).unwrap_err();
        assert!(err.to_string().contains("at least one"));
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn artefact_renders_every_format_deterministically() {
        let dir = std::env::temp_dir().join("ccache-run-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.json");
        std::fs::write(
            &path,
            r#"{"name": "tiny", "replay": [{"workloads": ["fir"],
                "policies": ["shared", "heuristic"], "label": "policy"}]}"#,
        )
        .unwrap();
        for format in ["json", "csv", "markdown"] {
            let out_a = dir.join(format!("a.{format}"));
            let out_b = dir.join(format!("b.{format}"));
            for out in [&out_a, &out_b] {
                run(vec![
                    path.to_string_lossy().into_owned(),
                    "--quick".to_owned(),
                    "--format".to_owned(),
                    format.to_owned(),
                    "--out".to_owned(),
                    out.to_string_lossy().into_owned(),
                ])
                .unwrap();
            }
            let a = std::fs::read_to_string(&out_a).unwrap();
            let b = std::fs::read_to_string(&out_b).unwrap();
            assert_eq!(a, b, "{format} artefact must be deterministic");
            match format {
                "json" => {
                    assert!(a.contains("\"artefact\": \"ccache-exp\""));
                    assert!(a.contains("\"label\": \"heuristic\""));
                }
                "csv" => assert!(a.starts_with("type,label,quantum")),
                _ => assert!(a.contains("## Experiment `tiny`")),
            }
        }
    }
}
