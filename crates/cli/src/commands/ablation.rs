//! `ccache ablation` — sensitivity studies beyond the paper's figures.
//!
//! Studies 1–3 (replacement policy, column count, layout vs. naive) are presets over
//! the experiment layer ([`ccache_exp::presets::ablation_spec`]); the printed tables
//! are reassembled from the pipeline's outcomes and are byte-identical to the
//! pre-refactor output (golden-tested). Study 4 — remapping a tint versus re-tinting
//! pages — is a control-plane micro-benchmark with no reference stream, so it runs
//! directly against a [`MemorySystem`]. With `--format`/`--out` the command also emits
//! the unified experiment artefact for studies 1–3.

use crate::args::ArgParser;
use crate::error::CliError;
use crate::output::{Render, ReportArgs};
use crate::scale::Scale;
use ccache_exp::exec::JobOutcome;
use ccache_exp::plan::expand;
use ccache_exp::presets::ablation_spec;
use ccache_exp::Artefact;
use ccache_sim::{ColumnMask, MemorySystem, ReplacementPolicy, Tint};
use std::fmt::Write as _;

/// Help text for `ccache ablation`.
pub const USAGE: &str = "\
usage: ccache ablation [options]

Ablation studies beyond the paper's figures:
  1. replacement-policy sensitivity of the column cache;
  2. column-count sensitivity (2/4/8/16 columns at fixed capacity);
  3. the layout algorithm versus a naive round-robin variable assignment;
  4. the cost of re-tinting pages versus remapping tints (the Figure 3 motivation).

options:
  --quick, -q       reduced working sets for smoke tests
  --format FMT      json | csv | markdown: also emit the experiment artefact of
                    studies 1-3 (study 4 is a control-plane micro-benchmark and
                    appears in the printed tables only)
  --out FILE        write the artefact in FMT to FILE instead of stdout
  --help, -h        show this help
";

/// Runs studies 1–3 through the experiment pipeline and renders all four studies as
/// the legacy report text. Returns the text and the pipeline artefact.
///
/// # Errors
///
/// Fails on invalid configurations or execution failures.
pub fn compute(scale: Scale) -> Result<(String, Artefact), CliError> {
    let spec = ablation_spec();
    let session = column_caching::Session::builder()
        .quick(scale.is_quick())
        .build()?;
    let artefact = session.run_spec(&spec)?;
    let by_key = artefact.by_key();
    let expanded = expand(&spec);
    let mut jobs = expanded.iter();
    let mut next = || {
        let job = jobs.next().expect("ablation plan covers every study");
        *by_key.get(&job.key()).expect("every job has an outcome")
    };
    let mut out = String::new();

    // ----------------------------------------------------------------- replacement policy
    let _ = writeln!(
        out,
        "## Ablation 1: replacement-policy sensitivity (idct, 2 KB / 4 columns)\n"
    );
    let _ = writeln!(out, "{:>12} {:>12} {:>10}", "policy", "cycles", "miss rate");
    for policy in ReplacementPolicy::ALL {
        let JobOutcome::Replay { result, .. } = next() else {
            unreachable!("study 1 plans plain replays");
        };
        let _ = writeln!(
            out,
            "{:>12} {:>12} {:>9.1}%",
            policy.to_string(),
            result.total_cycles(),
            result.miss_rate() * 100.0
        );
    }

    // --------------------------------------------------------------------- column count
    let _ = writeln!(
        out,
        "\n## Ablation 2: column-count sensitivity (combined MPEG app, 2 KB total)\n"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>12}",
        "columns", "best partition", "cycles"
    );
    for columns in [2usize, 4, 8, 16] {
        let mut best: Option<(usize, u64)> = None;
        for _ in 0..=columns {
            let JobOutcome::Partition { point, .. } = next() else {
                unreachable!("study 2 plans partition sweeps");
            };
            if best.is_none() || point.cycles < best.expect("checked").1 {
                best = Some((point.cache_columns, point.cycles));
            }
        }
        let (best_cache, best_cycles) = best.expect("sweep has points");
        let _ = writeln!(
            out,
            "{:>8} {:>14} {:>12}",
            columns,
            format!("{best_cache} cache cols"),
            best_cycles
        );
    }

    // ------------------------------------------------------------- layout vs naive layout
    let _ = writeln!(
        out,
        "\n## Ablation 3: conflict-graph layout vs. naive round-robin assignment (idct)\n"
    );
    let _ = writeln!(
        out,
        "{:>22} {:>12} {:>10}",
        "assignment", "cycles", "misses"
    );
    let mut layout_info = None;
    for display in ["shared", "naive", "layout"] {
        let JobOutcome::Replay { result, layout, .. } = next() else {
            unreachable!("study 3 plans plain replays");
        };
        if layout.is_some() {
            layout_info = *layout;
        }
        let _ = writeln!(
            out,
            "{:>22} {:>12} {:>10}",
            display,
            result.total_cycles(),
            result.misses
        );
    }
    let info = layout_info.expect("the heuristic job reports layout statistics");
    let _ = writeln!(
        out,
        "layout cost W = {} ({} merges, optimal = {})",
        info.cost, info.merges, info.optimal
    );

    // --------------------------------------------------- tint remap vs page re-tint cost
    let _ = writeln!(
        out,
        "\n## Ablation 4: remapping a tint vs. re-tinting pages (Figure 3 motivation)\n"
    );
    let mut system = MemorySystem::with_default_cache();
    // 64 pages of 1 KiB mapped to the default tint.
    for p in 0..64u64 {
        system.access(p * 1024, false);
    }
    let before_writes = system.page_table().entry_writes;
    let before_flushes = system.stats().tlb_flushes;
    // (a) remap one tint: a single tint-table write, no page-table or TLB activity.
    system.define_tint(Tint::DEFAULT, ColumnMask::from_columns([0, 1, 2]))?;
    let remap_writes = system.page_table().entry_writes - before_writes;
    let remap_flushes = system.stats().tlb_flushes - before_flushes;
    // (b) re-tint the same 64 pages: one page-table write and one TLB flush per page.
    system.define_tint(Tint(5), ColumnMask::single(3))?;
    let retinted = system.tint_range(0..64 * 1024, Tint(5));
    let retint_writes = system.page_table().entry_writes - before_writes - remap_writes;
    let retint_flushes = system.stats().tlb_flushes - before_flushes - remap_flushes;
    let _ = writeln!(
        out,
        "{:>24} {:>18} {:>12}",
        "operation", "page-table writes", "TLB flushes"
    );
    let _ = writeln!(
        out,
        "{:>24} {:>18} {:>12}",
        "remap tint", remap_writes, remap_flushes
    );
    let _ = writeln!(
        out,
        "{:>24} {:>18} {:>12}",
        format!("re-tint {retinted} pages"),
        retint_writes,
        retint_flushes
    );
    Ok((out, artefact))
}

/// Runs the subcommand.
///
/// # Errors
///
/// Fails on usage errors or invalid configurations.
pub fn run(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("ablation", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let report_args = ReportArgs::from_parser(&mut p)?;
    p.finish()?;
    let (text, artefact) = compute(report_args.scale)?;
    print!("{text}");
    report_args.emit_if_requested(&artefact as &dyn Render)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_flags_are_usage_errors() {
        let err = run(vec!["--policy".to_owned(), "lru".to_owned()]).unwrap_err();
        assert!(err.to_string().contains("unknown flag '--policy'"));
        assert_eq!(err.exit_code(), 2);
    }
}
