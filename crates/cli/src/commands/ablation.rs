//! `ccache ablation` — sensitivity studies beyond the paper's figures.

use crate::args::ArgParser;
use crate::error::CliError;
use crate::scale::Scale;
use ccache_core::partition::{partition_sweep, PartitionConfig};
use ccache_core::runner::{run_trace, CacheMapping, RegionMapping};
use ccache_layout::weights::conflict_graph_from_trace;
use ccache_layout::{assign_columns, LayoutOptions, WeightOptions};
use ccache_sim::{
    CacheConfig, ColumnMask, LatencyConfig, MemorySystem, ReplacementPolicy, SystemConfig, Tint,
};
use ccache_workloads::mpeg::{run_combined, run_idct};

/// Help text for `ccache ablation`.
pub const USAGE: &str = "\
usage: ccache ablation [options]

Ablation studies beyond the paper's figures:
  1. replacement-policy sensitivity of the column cache;
  2. column-count sensitivity (2/4/8/16 columns at fixed capacity);
  3. the layout algorithm versus a naive round-robin variable assignment;
  4. the cost of re-tinting pages versus remapping tints (the Figure 3 motivation).

options:
  --quick, -q       reduced working sets for smoke tests
  --help, -h        show this help
";

/// Runs the subcommand.
///
/// # Errors
///
/// Fails on usage errors or invalid configurations.
pub fn run(args: Vec<String>) -> Result<(), CliError> {
    let mut p = ArgParser::new("ablation", args);
    if p.flag(&["--help", "-h"]) {
        print!("{USAGE}");
        return Ok(());
    }
    let scale = Scale::from_parser(&mut p);
    p.finish()?;
    let mpeg = scale.mpeg();

    // ----------------------------------------------------------------- replacement policy
    println!("## Ablation 1: replacement-policy sensitivity (idct, 2 KB / 4 columns)\n");
    let idct = run_idct(&mpeg);
    println!("{:>12} {:>12} {:>10}", "policy", "cycles", "miss rate");
    for policy in ReplacementPolicy::ALL {
        let cache = CacheConfig::builder()
            .capacity_bytes(2048)
            .columns(4)
            .line_size(32)
            .replacement(policy)
            .build()?;
        let cfg = SystemConfig {
            cache,
            latency: LatencyConfig::default(),
            page_size: 128,
            tlb_entries: 64,
        };
        let result = run_trace(&policy.to_string(), cfg, &CacheMapping::new(), &idct.trace)?;
        println!(
            "{:>12} {:>12} {:>9.1}%",
            policy.to_string(),
            result.total_cycles(),
            result.miss_rate() * 100.0
        );
    }

    // --------------------------------------------------------------------- column count
    println!("\n## Ablation 2: column-count sensitivity (combined MPEG app, 2 KB total)\n");
    let combined = run_combined(&mpeg);
    println!("{:>8} {:>14} {:>12}", "columns", "best partition", "cycles");
    for columns in [2usize, 4, 8, 16] {
        let cfg = PartitionConfig {
            columns,
            ..PartitionConfig::default()
        };
        let sweep = partition_sweep(&combined, &cfg)?;
        let best = sweep.best();
        println!(
            "{:>8} {:>14} {:>12}",
            columns,
            format!("{} cache cols", best.cache_columns),
            best.cycles
        );
    }

    // ------------------------------------------------------------- layout vs naive layout
    println!("\n## Ablation 3: conflict-graph layout vs. naive round-robin assignment (idct)\n");
    let weight_opts = WeightOptions::default();
    let (graph, units) = conflict_graph_from_trace(&idct.trace, &idct.symbols, &weight_opts);
    let layout = assign_columns(&graph, &LayoutOptions::new(4, 512))?;
    let sys_cfg = SystemConfig {
        page_size: 128,
        ..SystemConfig::default()
    };
    let informed = {
        let mapping = CacheMapping::from_assignment(&layout, &units, &idct.symbols, &[]);
        run_trace("layout", sys_cfg, &mapping, &idct.trace)?
    };
    let naive = {
        let mut mapping = CacheMapping::new();
        for (i, unit) in units.iter().enumerate() {
            if let Some(region) = idct.symbols.region(unit.var) {
                mapping.map(
                    region.base + unit.offset,
                    unit.size,
                    RegionMapping::Columns {
                        mask: ColumnMask::single(i % 4),
                    },
                );
            }
        }
        run_trace("naive", sys_cfg, &mapping, &idct.trace)?
    };
    let shared = run_trace("shared", sys_cfg, &CacheMapping::new(), &idct.trace)?;
    println!("{:>22} {:>12} {:>10}", "assignment", "cycles", "misses");
    for r in [&shared, &naive, &informed] {
        println!("{:>22} {:>12} {:>10}", r.name, r.total_cycles(), r.misses);
    }
    println!(
        "layout cost W = {} ({} merges, optimal = {})",
        layout.cost, layout.merges, layout.optimal
    );

    // --------------------------------------------------- tint remap vs page re-tint cost
    println!("\n## Ablation 4: remapping a tint vs. re-tinting pages (Figure 3 motivation)\n");
    let mut system = MemorySystem::with_default_cache();
    // 64 pages of 1 KiB mapped to the default tint.
    for p in 0..64u64 {
        system.access(p * 1024, false);
    }
    let before_writes = system.page_table().entry_writes;
    let before_flushes = system.stats().tlb_flushes;
    // (a) remap one tint: a single tint-table write, no page-table or TLB activity.
    system.define_tint(Tint::DEFAULT, ColumnMask::from_columns([0, 1, 2]))?;
    let remap_writes = system.page_table().entry_writes - before_writes;
    let remap_flushes = system.stats().tlb_flushes - before_flushes;
    // (b) re-tint the same 64 pages: one page-table write and one TLB flush per page.
    system.define_tint(Tint(5), ColumnMask::single(3))?;
    let retinted = system.tint_range(0..64 * 1024, Tint(5));
    let retint_writes = system.page_table().entry_writes - before_writes - remap_writes;
    let retint_flushes = system.stats().tlb_flushes - before_flushes - remap_flushes;
    println!(
        "{:>24} {:>18} {:>12}",
        "operation", "page-table writes", "TLB flushes"
    );
    println!(
        "{:>24} {:>18} {:>12}",
        "remap tint", remap_writes, remap_flushes
    );
    println!(
        "{:>24} {:>18} {:>12}",
        format!("re-tint {retinted} pages"),
        retint_writes,
        retint_flushes
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_flags_are_usage_errors() {
        let err = run(vec!["--policy".to_owned(), "lru".to_owned()]).unwrap_err();
        assert!(err.to_string().contains("unknown flag '--policy'"));
        assert_eq!(err.exit_code(), 2);
    }
}
