//! The CLI error type: usage errors (bad flags, bad values) and wrapped errors from the
//! experiment and I/O layers.

use std::fmt;

/// Errors surfaced by the `ccache` command-line driver.
#[derive(Debug)]
pub enum CliError {
    /// The command line was malformed: unknown flag, missing value, unparsable value.
    /// These exit with status 2 and point at `--help`.
    Usage(String),
    /// An experiment failed (invalid configuration, layout failure, ...).
    Core(ccache_core::CoreError),
    /// A simulator configuration was rejected.
    Sim(ccache_sim::SimError),
    /// The experiment layer rejected a spec or failed a job.
    Exp(ccache_exp::ExpError),
    /// Reading or writing a file failed, including trace-format violations.
    Io(std::io::Error),
}

impl CliError {
    /// Builds a usage error.
    pub fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    /// The process exit code this error maps to (2 for usage errors, 1 otherwise).
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Core(e) => write!(f, "{e}"),
            CliError::Sim(e) => write!(f, "{e}"),
            CliError::Exp(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl From<column_caching::SessionError> for CliError {
    fn from(e: column_caching::SessionError) -> Self {
        use column_caching::SessionError;
        match e {
            SessionError::Sim(e) => CliError::Sim(e),
            SessionError::Core(e) => CliError::Core(e),
            SessionError::Exp(e) => CliError::Exp(e),
            SessionError::Opt(e) => CliError::Core(ccache_core::CoreError::BadExperiment {
                reason: e.to_string(),
            }),
            SessionError::BadRequest(reason) => {
                CliError::Core(ccache_core::CoreError::BadExperiment { reason })
            }
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Usage(_) => None,
            CliError::Core(e) => Some(e),
            CliError::Sim(e) => Some(e),
            CliError::Exp(e) => Some(e),
            CliError::Io(e) => Some(e),
        }
    }
}

impl From<ccache_core::CoreError> for CliError {
    fn from(e: ccache_core::CoreError) -> Self {
        CliError::Core(e)
    }
}

impl From<ccache_sim::SimError> for CliError {
    fn from(e: ccache_sim::SimError) -> Self {
        CliError::Sim(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<ccache_exp::ExpError> for CliError {
    fn from(e: ccache_exp::ExpError) -> Self {
        // Unwrap the layers the CLI already has variants for, so error text and exit
        // codes stay what they were before commands routed through the pipeline.
        match e {
            ccache_exp::ExpError::Core(e) => CliError::Core(e),
            ccache_exp::ExpError::Sim(e) => CliError::Sim(e),
            ccache_exp::ExpError::Io(e) => CliError::Io(e),
            other => CliError::Exp(other),
        }
    }
}

impl From<ccache_layout::LayoutError> for CliError {
    fn from(e: ccache_layout::LayoutError) -> Self {
        CliError::Core(e.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_errors_exit_2_everything_else_1() {
        assert_eq!(CliError::usage("bad").exit_code(), 2);
        let io = CliError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "x"));
        assert_eq!(io.exit_code(), 1);
        assert_eq!(CliError::usage("bad flag").to_string(), "bad flag");
    }
}
