//! Shared parsing of memory-backend names.
//!
//! `ccache sweep` and `ccache tune` both take backend selections on the command line;
//! this module is the single place their strings are interpreted, so the accepted names
//! and the unknown-value error shape (a usage error, exit code 2) cannot drift apart.

use crate::args::ArgParser;
use crate::error::CliError;
use ccache_sim::backend::BackendKind;

/// The names shown in `expected ...` lists of backend usage errors.
const EXPECTED_SINGLE: &str = "column, set-assoc or ideal";
/// As [`EXPECTED_SINGLE`], for flags that also accept `all`.
const EXPECTED_LIST: &str = "column, set-assoc, ideal or all";

/// Parses one backend name, failing with the uniform usage error naming `flag`.
///
/// # Errors
///
/// Returns a usage error (exit code 2) for unknown names.
pub fn parse_backend(raw: &str, flag: &str, parser: &ArgParser) -> Result<BackendKind, CliError> {
    BackendKind::parse(raw).ok_or_else(|| {
        parser.usage(format!(
            "invalid value '{raw}' for '{flag}' (expected {EXPECTED_SINGLE})"
        ))
    })
}

/// Consumes `flag` from the parser as a backend list: absent or `all` selects every
/// backend, any other value must name exactly one.
///
/// # Errors
///
/// Returns a usage error (exit code 2) for unknown names or a missing value.
pub fn backends_from_parser(
    parser: &mut ArgParser,
    flag: &str,
) -> Result<Vec<BackendKind>, CliError> {
    match parser.value(flag)?.as_deref() {
        None | Some("all") => Ok(BackendKind::ALL.to_vec()),
        Some(raw) => match BackendKind::parse(raw) {
            Some(kind) => Ok(vec![kind]),
            None => Err(parser.usage(format!(
                "invalid value '{raw}' for '{flag}' (expected {EXPECTED_LIST})"
            ))),
        },
    }
}

/// Consumes `flag` from the parser as a single backend, with a default when absent.
///
/// # Errors
///
/// Returns a usage error (exit code 2) for unknown names or a missing value.
pub fn backend_from_parser(
    parser: &mut ArgParser,
    flag: &str,
    default: BackendKind,
) -> Result<BackendKind, CliError> {
    match parser.value(flag)? {
        None => Ok(default),
        Some(raw) => parse_backend(&raw, flag, parser),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser(args: &[&str]) -> ArgParser {
        ArgParser::new("sweep", args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn absent_and_all_select_every_backend() {
        let mut p = parser(&[]);
        assert_eq!(
            backends_from_parser(&mut p, "--backend").unwrap(),
            BackendKind::ALL.to_vec()
        );
        let mut p = parser(&["--backend", "all"]);
        assert_eq!(
            backends_from_parser(&mut p, "--backend").unwrap(),
            BackendKind::ALL.to_vec()
        );
        p.finish().unwrap();
    }

    #[test]
    fn single_names_parse_to_one_backend() {
        for (name, kind) in [
            ("column", BackendKind::ColumnCache),
            ("set-assoc", BackendKind::SetAssociative),
            ("ideal", BackendKind::IdealScratchpad),
        ] {
            let mut p = parser(&["--backend", name]);
            assert_eq!(
                backends_from_parser(&mut p, "--backend").unwrap(),
                vec![kind]
            );
        }
    }

    #[test]
    fn unknown_names_are_uniform_usage_errors_with_exit_2() {
        let mut p = parser(&["--backend", "victim-cache"]);
        let err = backends_from_parser(&mut p, "--backend").unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert_eq!(
            err.to_string(),
            "invalid value 'victim-cache' for '--backend' (expected column, set-assoc, \
             ideal or all) for 'ccache sweep' (try 'ccache sweep --help')"
        );

        let mut p = parser(&["--baseline", "victim-cache"]);
        let err =
            backend_from_parser(&mut p, "--baseline", BackendKind::SetAssociative).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err
            .to_string()
            .contains("invalid value 'victim-cache' for '--baseline'"));
    }

    #[test]
    fn single_backend_falls_back_to_the_default() {
        let mut p = parser(&[]);
        assert_eq!(
            backend_from_parser(&mut p, "--baseline", BackendKind::SetAssociative).unwrap(),
            BackendKind::SetAssociative
        );
        let mut p = parser(&["--baseline", "ideal"]);
        assert_eq!(
            backend_from_parser(&mut p, "--baseline", BackendKind::SetAssociative).unwrap(),
            BackendKind::IdealScratchpad
        );
    }
}
