//! Shared parsing of memory-backend names.
//!
//! `ccache sweep` and `ccache tune` both take backend selections on the command line;
//! this module interprets those strings through the shared [`BackendRegistry`] — the
//! same table the experiment-spec grammar and [`BackendKind::parse`] resolve against —
//! so the accepted names and the
//! `expected ...` lists in usage errors (exit code 2) are **derived** from one place and
//! can never drift apart.

use crate::args::ArgParser;
use crate::error::CliError;
use ccache_sim::backend::BackendKind;
use ccache_sim::BackendRegistry;

/// Parses one backend name, failing with the uniform usage error naming `flag`.
///
/// # Errors
///
/// Returns a usage error (exit code 2) for unknown names.
pub fn parse_backend(raw: &str, flag: &str, parser: &ArgParser) -> Result<BackendKind, CliError> {
    let registry = BackendRegistry::global();
    registry.kind_of(raw).ok_or_else(|| {
        parser.usage(format!(
            "invalid value '{raw}' for '{flag}' (expected {})",
            registry.expected_single()
        ))
    })
}

/// Consumes `flag` from the parser as a backend list: absent or `all` selects every
/// backend, any other value must name exactly one.
///
/// # Errors
///
/// Returns a usage error (exit code 2) for unknown names or a missing value.
pub fn backends_from_parser(
    parser: &mut ArgParser,
    flag: &str,
) -> Result<Vec<BackendKind>, CliError> {
    let registry = BackendRegistry::global();
    match parser.value(flag)?.as_deref() {
        None | Some("all") => Ok(BackendKind::ALL.to_vec()),
        Some(raw) => match registry.kind_of(raw) {
            Some(kind) => Ok(vec![kind]),
            None => Err(parser.usage(format!(
                "invalid value '{raw}' for '{flag}' (expected {})",
                registry.expected_list()
            ))),
        },
    }
}

/// Consumes `flag` from the parser as a single backend, with a default when absent.
///
/// # Errors
///
/// Returns a usage error (exit code 2) for unknown names or a missing value.
pub fn backend_from_parser(
    parser: &mut ArgParser,
    flag: &str,
    default: BackendKind,
) -> Result<BackendKind, CliError> {
    match parser.value(flag)? {
        None => Ok(default),
        Some(raw) => parse_backend(&raw, flag, parser),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser(args: &[&str]) -> ArgParser {
        ArgParser::new("sweep", args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn absent_and_all_select_every_backend() {
        let mut p = parser(&[]);
        assert_eq!(
            backends_from_parser(&mut p, "--backend").unwrap(),
            BackendKind::ALL.to_vec()
        );
        let mut p = parser(&["--backend", "all"]);
        assert_eq!(
            backends_from_parser(&mut p, "--backend").unwrap(),
            BackendKind::ALL.to_vec()
        );
        p.finish().unwrap();
    }

    #[test]
    fn single_names_parse_to_one_backend() {
        for (name, kind) in [
            ("column", BackendKind::ColumnCache),
            ("set-assoc", BackendKind::SetAssociative),
            ("ideal", BackendKind::IdealScratchpad),
        ] {
            let mut p = parser(&["--backend", name]);
            assert_eq!(
                backends_from_parser(&mut p, "--backend").unwrap(),
                vec![kind]
            );
        }
    }

    #[test]
    fn unknown_names_are_uniform_usage_errors_with_exit_2() {
        let mut p = parser(&["--backend", "victim-cache"]);
        let err = backends_from_parser(&mut p, "--backend").unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert_eq!(
            err.to_string(),
            "invalid value 'victim-cache' for '--backend' (expected column, set-assoc, \
             ideal or all) for 'ccache sweep' (try 'ccache sweep --help')"
        );

        let mut p = parser(&["--baseline", "victim-cache"]);
        let err =
            backend_from_parser(&mut p, "--baseline", BackendKind::SetAssociative).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err
            .to_string()
            .contains("invalid value 'victim-cache' for '--baseline'"));
    }

    #[test]
    fn single_backend_falls_back_to_the_default() {
        let mut p = parser(&[]);
        assert_eq!(
            backend_from_parser(&mut p, "--baseline", BackendKind::SetAssociative).unwrap(),
            BackendKind::SetAssociative
        );
        let mut p = parser(&["--baseline", "ideal"]);
        assert_eq!(
            backend_from_parser(&mut p, "--baseline", BackendKind::SetAssociative).unwrap(),
            BackendKind::IdealScratchpad
        );
    }

    /// The satellite guarantee of the registry redesign: registry names, CLI names and
    /// experiment-spec names agree because they are all the same table.
    #[test]
    fn registry_cli_and_spec_names_agree() {
        let registry = BackendRegistry::global();
        assert_eq!(registry.entries().len(), BackendKind::ALL.len());
        for entry in registry.entries() {
            let kind = entry.kind().expect("built-ins carry a kind");
            let spellings: Vec<&str> = std::iter::once(entry.name())
                .chain(std::iter::once(entry.short()))
                .chain(entry.aliases().iter().map(String::as_str))
                .collect();
            for spelling in spellings {
                // CLI flag parsing
                let mut p = parser(&["--backend", spelling]);
                assert_eq!(
                    backends_from_parser(&mut p, "--backend").unwrap(),
                    vec![kind],
                    "CLI must accept registry spelling '{spelling}'"
                );
                // BackendKind::parse (the sim-level name table)
                assert_eq!(BackendKind::parse(spelling), Some(kind));
                // experiment-spec JSON grammar
                let spec = ccache_exp::ExperimentSpec::parse_str(&format!(
                    r#"{{"name": "t", "replay": [{{"workloads": ["fir"],
                         "backends": ["{spelling}"]}}]}}"#
                ))
                .unwrap_or_else(|e| panic!("spec must accept '{spelling}': {e}"));
                assert_eq!(spec.replay[0].backends, vec![kind]);
            }
            // the canonical name round-trips through Display
            assert_eq!(entry.name(), kind.to_string());
        }
        // spec errors list the same derived names the CLI errors do
        let err = ccache_exp::ExperimentSpec::parse_str(
            r#"{"name": "t", "replay": [{"workloads": ["fir"], "backends": ["victim"]}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains(&registry.expected_single()));
    }
}
