//! The unified `ccache` command-line driver.
//!
//! The paper's pitch is that *software* decides memory policy — which makes the
//! experiment driver part of the artifact. This crate turns the former trio of one-off
//! figure binaries into one scriptable tool:
//!
//! ```text
//! ccache fig4 [--routine R] [--quick] [--json F | --format FMT --out F]
//! ccache fig5 [--quick] [--json F | --format FMT --out F]
//! ccache ablation [--quick] [--format FMT --out F]
//! ccache sweep --trace FILE [--backend KIND] [--capacity N] ...
//! ccache run SPEC.json [--quick] [--format FMT --out F]
//! ccache trace record --gen KIND --out FILE
//! ccache trace info FILE
//! ccache trace convert IN OUT
//! ccache tune [--workload NAME | --trace FILE] [--strategy S] [--budget N] [--seed N]
//! ccache serve [--port N] [--workers N] [--queue N]
//! ccache serve --connect ADDR --request JSON
//! ```
//!
//! The figure binaries in `ccache-bench` are thin shims over [`run`], so
//! `cargo run -p ccache-bench --bin fig4 -- --quick` and
//! `cargo run -p ccache-cli -- fig4 --quick` execute the same code and produce
//! byte-identical artefacts. The experiment commands — `fig4`, `fig5`, `ablation`,
//! `sweep` — are presets over the declarative pipeline in `ccache-exp`: they compile to
//! an `ExperimentSpec`, run through the shared planner/executor and reassemble their
//! legacy reports byte-identically (golden-tested in `tests/golden_parity.rs`);
//! `ccache run` executes any spec file through the same pipeline. Shared behaviour
//! lives here once: `--quick`/`--format`/`--out` handling ([`output::ReportArgs`]) and
//! flag parsing with uniform unknown-flag errors ([`args`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod args;
pub mod backend;
pub mod commands;
pub mod error;
pub mod output;
pub mod scale;

pub use error::CliError;
pub use output::{OutputFormat, ReportArgs};
pub use scale::{figure4_config, figure5_configs, figure5_jobs, Scale};

/// Top-level help text.
pub const USAGE: &str = "\
usage: ccache <command> [options]

commands:
  fig4      Figure 4: cycle count vs. scratchpad/cache partition (MPEG routines)
  fig5      Figure 5: CPI vs. context-switch quantum (gzip multitasking)
  ablation  sensitivity studies beyond the paper's figures
  sweep     replay a trace file across memory backends
  run       execute a declarative experiment spec (examples/specs/*.json)
  trace     record, inspect and convert trace files
  tune      autotune cache geometry and column assignments for a workload
  bench     measure replay throughput; gate against a committed baseline
  serve     run the concurrent cache-advisory service (NDJSON over TCP)
  help      show this help

Run 'ccache <command> --help' for command-specific options.
";

/// Dispatches a full argument vector (not including the program name).
///
/// # Errors
///
/// Returns usage errors for unknown commands/flags and propagates experiment and I/O
/// errors from the subcommands.
pub fn run<I: IntoIterator<Item = String>>(args: I) -> Result<(), CliError> {
    let mut args: Vec<String> = args.into_iter().collect();
    if args.is_empty() {
        print!("{USAGE}");
        return Ok(());
    }
    let command = args.remove(0);
    match command.as_str() {
        "fig4" => commands::fig4::run(args),
        "fig5" => commands::fig5::run(args),
        "ablation" => commands::ablation::run(args),
        "sweep" => commands::sweep::run(args),
        "run" => commands::run::run(args),
        "trace" => commands::trace::run(args),
        "tune" => commands::tune::run(args),
        "bench" => commands::bench::run(args),
        "serve" => commands::serve::run(args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command 'ccache {other}' (try 'ccache --help')"
        ))),
    }
}

/// Entry point shared by the `ccache` binary and the thin figure shims: runs
/// `prepend` + the process arguments, prints errors to stderr and returns the exit code.
pub fn main_with(prepend: Option<&str>) -> std::process::ExitCode {
    let args = prepend
        .map(str::to_owned)
        .into_iter()
        .chain(std::env::args().skip(1));
    match run(args) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_commands_are_usage_errors() {
        let err = run(vec!["fig6".to_owned()]).unwrap_err();
        assert!(err.to_string().contains("unknown command 'ccache fig6'"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn help_succeeds() {
        run(vec!["help".to_owned()]).unwrap();
        run(Vec::new()).unwrap();
    }
}
