//! The unified `ccache` binary: figure reproductions, generic sweeps and trace tooling.
//!
//! Usage: `ccache <fig4|fig5|ablation|sweep|trace> [options]`; see `ccache --help`.

fn main() -> std::process::ExitCode {
    ccache_cli::main_with(None)
}
