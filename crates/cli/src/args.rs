//! A small shared argument parser with uniform error messages.
//!
//! The seed's three figure binaries each hand-rolled `position(..)`/`get(i + 1)` flag
//! scanning with three different behaviours on unknown flags (all of them silent). Every
//! `ccache` subcommand now parses through [`ArgParser`], which:
//!
//! * supports boolean flags (`--quick`/`-q`), valued flags (`--routine dequant`) and
//!   positionals, consumed in any order;
//! * reports *every* unrecognised argument with one message shape:
//!   `unknown flag '--foo' for 'ccache fig4' (try 'ccache fig4 --help')`;
//! * reports missing and unparsable values with the flag name and offending text.

use crate::error::CliError;
use std::str::FromStr;

/// Argument scanner for one subcommand invocation.
#[derive(Debug)]
pub struct ArgParser {
    /// Full command name for error messages, e.g. `"fig4"` or `"trace record"`.
    cmd: String,
    /// Arguments not yet consumed; taken arguments become `None`.
    args: Vec<Option<String>>,
}

impl ArgParser {
    /// Creates a parser over the arguments that follow the subcommand name.
    pub fn new(cmd: impl Into<String>, args: Vec<String>) -> Self {
        ArgParser {
            cmd: cmd.into(),
            args: args.into_iter().map(Some).collect(),
        }
    }

    /// The full command name (used in error and help text).
    pub fn command(&self) -> &str {
        &self.cmd
    }

    /// Consumes a boolean flag; returns `true` if any of `names` appeared.
    pub fn flag(&mut self, names: &[&str]) -> bool {
        let mut found = false;
        for slot in &mut self.args {
            if matches!(slot.as_deref(), Some(a) if names.contains(&a)) {
                *slot = None;
                found = true;
            }
        }
        found
    }

    /// Consumes `name VALUE`; returns the value if the flag appeared.
    ///
    /// # Errors
    ///
    /// Fails if the flag is present without a following value.
    pub fn value(&mut self, name: &str) -> Result<Option<String>, CliError> {
        let Some(at) = self.args.iter().position(|a| a.as_deref() == Some(name)) else {
            return Ok(None);
        };
        self.args[at] = None;
        match self.args.get_mut(at + 1).and_then(Option::take) {
            Some(v) => Ok(Some(v)),
            None => Err(self.usage(format!("flag '{name}' expects a value"))),
        }
    }

    /// Consumes `name VALUE` and parses the value.
    ///
    /// # Errors
    ///
    /// Fails if the value is missing or does not parse as `T`.
    pub fn parsed<T: FromStr>(&mut self, name: &str) -> Result<Option<T>, CliError> {
        match self.value(name)? {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| self.usage(format!("invalid value '{raw}' for '{name}'"))),
        }
    }

    /// Consumes the next positional (non-flag) argument, or errors naming what was
    /// expected.
    ///
    /// # Errors
    ///
    /// Fails if no positional argument remains.
    pub fn positional(&mut self, what: &str) -> Result<String, CliError> {
        match self.next_positional() {
            Some(v) => Ok(v),
            None => Err(self.usage(format!("missing {what}"))),
        }
    }

    /// Consumes the next positional (non-flag) argument if one remains.
    pub fn next_positional(&mut self) -> Option<String> {
        self.args
            .iter_mut()
            .find(|a| matches!(a.as_deref(), Some(s) if !s.starts_with('-')))
            .and_then(Option::take)
    }

    /// Verifies that every argument was consumed.
    ///
    /// # Errors
    ///
    /// Fails with an `unknown flag` / `unexpected argument` usage error naming the first
    /// leftover.
    pub fn finish(self) -> Result<(), CliError> {
        match self.args.iter().flatten().next() {
            None => Ok(()),
            Some(arg) if arg.starts_with('-') => Err(self.usage(format!("unknown flag '{arg}'"))),
            Some(arg) => Err(self.usage(format!("unexpected argument '{arg}'"))),
        }
    }

    /// Builds a usage error for this command: `<msg> for 'ccache <cmd>' (try ... --help)`.
    pub fn usage(&self, msg: impl std::fmt::Display) -> CliError {
        CliError::usage(format!(
            "{msg} for 'ccache {cmd}' (try 'ccache {cmd} --help')",
            cmd = self.cmd
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser(args: &[&str]) -> ArgParser {
        ArgParser::new("fig4", args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn flags_values_and_positionals_parse_in_any_order() {
        let mut p = parser(&["--routine", "idct", "in.cct", "--quick"]);
        assert!(p.flag(&["--quick", "-q"]));
        assert_eq!(p.value("--routine").unwrap().as_deref(), Some("idct"));
        assert_eq!(p.positional("trace file").unwrap(), "in.cct");
        p.finish().unwrap();
    }

    #[test]
    fn unknown_flags_are_rejected_with_uniform_message() {
        let p = parser(&["--bogus"]);
        let err = p.finish().unwrap_err();
        assert_eq!(
            err.to_string(),
            "unknown flag '--bogus' for 'ccache fig4' (try 'ccache fig4 --help')"
        );
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn unexpected_positionals_are_rejected() {
        let p = parser(&["stray"]);
        let err = p.finish().unwrap_err();
        assert!(err.to_string().contains("unexpected argument 'stray'"));
    }

    #[test]
    fn missing_and_invalid_values_are_reported() {
        let mut p = parser(&["--routine"]);
        let err = p.value("--routine").unwrap_err();
        assert!(err.to_string().contains("expects a value"));

        let mut p = parser(&["--columns", "four"]);
        let err = p.parsed::<usize>("--columns").unwrap_err();
        assert!(err.to_string().contains("invalid value 'four'"));
    }

    #[test]
    fn value_does_not_swallow_flags_as_positionals() {
        let mut p = parser(&["--quick", "file.cct"]);
        assert_eq!(p.next_positional().as_deref(), Some("file.cct"));
        assert!(p.flag(&["--quick"]));
        p.finish().unwrap();
    }
}
