//! Legacy-command parity: golden tests asserting that the refactored commands —
//! now presets over the `ccache-exp` spec → plan → execute pipeline — produce
//! **byte-identical** artefacts to the pre-refactor binary.
//!
//! The goldens under `tests/golden/` were recorded from the pre-refactor `ccache`
//! binary (commit 60edaf9) with exactly the flags named in each test. If a golden ever
//! needs regenerating on purpose, rebuild at that commit and re-run the commands — the
//! artefacts are deterministic, so any machine records the same bytes.

use std::path::{Path, PathBuf};

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden {path:?}: {e}"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ccache-golden-parity");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn run_cli(args: &[&str]) {
    ccache_cli::run(args.iter().map(|s| s.to_string())).expect("command succeeds");
}

#[test]
fn fig4_quick_json_artefact_is_byte_identical() {
    let out = tmp("fig4-quick.json");
    run_cli(&[
        "fig4",
        "--quick",
        "--format",
        "json",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(
        std::fs::read_to_string(&out).unwrap(),
        golden("fig4-quick.json"),
        "fig4 --quick JSON artefact drifted from the pre-refactor output"
    );
}

#[test]
fn fig4_legacy_json_flag_matches_the_same_artefact() {
    let out = tmp("fig4-quick-legacy.json");
    run_cli(&["fig4", "--quick", "--json", out.to_str().unwrap()]);
    assert_eq!(
        std::fs::read_to_string(&out).unwrap(),
        golden("fig4-quick.json"),
        "fig4 --json must write the same artefact as --format json --out"
    );
}

#[test]
fn fig5_quick_json_artefact_is_byte_identical() {
    let out = tmp("fig5-quick.json");
    run_cli(&[
        "fig5",
        "--quick",
        "--format",
        "json",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(
        std::fs::read_to_string(&out).unwrap(),
        golden("fig5-quick.json"),
        "fig5 --quick JSON artefact drifted from the pre-refactor output"
    );
}

#[test]
fn ablation_quick_text_is_byte_identical() {
    // The pre-refactor ablation had no --format flag; its artefact is the printed
    // report, golden-recorded from the binary's stdout.
    let (text, _) = ccache_cli::commands::ablation::compute(ccache_cli::Scale::Quick)
        .expect("ablation computes");
    assert_eq!(
        text,
        golden("ablation-quick.txt"),
        "ablation --quick report drifted from the pre-refactor output"
    );
}

#[test]
fn bench_artefact_is_deterministic_modulo_timing() {
    // The bench artefact mixes deterministic simulation results with host-dependent
    // timing. Everything outside the timing-derived keys (`timing`, `ratios`,
    // `environment`) must be byte-identical across runs — the same projection the CI
    // bench job checks with jq.
    let out_a = tmp("bench-quick-a.json");
    let out_b = tmp("bench-quick-b.json");
    for out in [&out_a, &out_b] {
        run_cli(&["bench", "--quick", "--tune", "--out", out.to_str().unwrap()]);
    }
    let a = strip_timing(parse(&out_a));
    let b = strip_timing(parse(&out_b));
    assert_eq!(
        a.pretty(),
        b.pretty(),
        "bench artefact's deterministic fields drifted between identical runs"
    );
    // Schema spot checks on the surviving projection.
    assert_eq!(
        a.get("artefact").and_then(|v| v.as_str()),
        Some("ccache-bench")
    );
    assert_eq!(a.get("version").and_then(|v| v.as_u64()), Some(2));
    let modes: Vec<&str> = a
        .get("modes")
        .and_then(|m| m.as_arr())
        .expect("modes array")
        .iter()
        .filter_map(|m| m.get("mode").and_then(|v| v.as_str()))
        .collect();
    assert_eq!(
        modes,
        [
            "per_reference",
            "batched",
            "streamed",
            "checkpoint_parallel"
        ],
        "bench artefact must report every replay mode"
    );
    let tune_modes: Vec<(&str, &str)> = a
        .get("tune")
        .and_then(|t| t.get("modes"))
        .and_then(|m| m.as_arr())
        .expect("tune.modes array")
        .iter()
        .filter_map(|m| {
            Some((
                m.get("mode").and_then(|v| v.as_str())?,
                m.get("schedule").and_then(|v| v.as_str())?,
            ))
        })
        .collect();
    assert_eq!(
        tune_modes,
        [
            ("fresh", "serial"),
            ("fresh", "parallel"),
            ("pooled", "serial"),
            ("pooled", "parallel"),
            ("pooled_checkpoint", "serial"),
            ("pooled_checkpoint", "parallel"),
        ],
        "tune section must report every fitness datapath under both schedules"
    );
}

fn parse(path: &Path) -> ccache_json::Json {
    let text = std::fs::read_to_string(path).expect("bench artefact readable");
    ccache_json::Json::parse(&text).expect("bench artefact is valid JSON")
}

/// Drops every host-dependent key: `timing` objects wherever they appear, plus the
/// top-level `ratios` and `environment`.
fn strip_timing(doc: ccache_json::Json) -> ccache_json::Json {
    match doc {
        ccache_json::Json::Obj(pairs) => ccache_json::Json::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| {
                    k != "timing"
                        && k != "ratios"
                        && k != "environment"
                        && k != "elapsed_s"
                        && k != "evals_per_sec"
                })
                .map(|(k, v)| (k, strip_timing(v)))
                .collect(),
        ),
        ccache_json::Json::Arr(items) => {
            ccache_json::Json::Arr(items.into_iter().map(strip_timing).collect())
        }
        other => other,
    }
}

#[test]
fn sweep_json_artefact_is_byte_identical() {
    // The golden was recorded against a deterministic synthetic trace written to this
    // exact path (the path is embedded in the artefact); regenerate it the same way.
    let trace_path = "/tmp/ccache-golden-sweep.cct";
    run_cli(&[
        "trace", "record", "--gen", "random", "--count", "20000", "--len", "65536", "--seed", "7",
        "--out", trace_path, "--format", "binary",
    ]);
    let out = tmp("sweep-quick.json");
    run_cli(&[
        "sweep",
        "--trace",
        trace_path,
        "--format",
        "json",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(
        std::fs::read_to_string(&out).unwrap(),
        golden("sweep-quick.json"),
        "sweep JSON artefact drifted from the pre-refactor output"
    );
}
