//! Property-based tests of the cache simulator's core invariants.

use ccache_sim::cache::{AccessOutcome, Eviction};
use ccache_sim::prelude::*;
use ccache_sim::replacement::ReplacementState;
use ccache_sim::{CacheConfig, ColumnCache, Tint};
use proptest::prelude::*;

/// A straight transcription of the pre-rewrite array-of-structs cache: one struct per
/// line, linear `position` probe, validity gathered per miss. The struct-of-arrays
/// [`ColumnCache`] must be observationally identical to this model — same outcome for
/// every access, same eviction (address, dirtiness, column), same counters — for every
/// geometry, mask and policy. The model shares only [`ReplacementState`] (seeded
/// identically) with the real cache.
struct ReferenceCache {
    config: CacheConfig,
    lines: Vec<RefLine>,
    repl: Vec<ReplacementState>,
}

#[derive(Clone, Copy, Default)]
struct RefLine {
    tag: u64,
    valid: bool,
    dirty: bool,
}

impl ReferenceCache {
    fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let cols = config.columns();
        ReferenceCache {
            config,
            lines: vec![RefLine::default(); sets * cols],
            repl: (0..sets)
                .map(|i| ReplacementState::new(config.replacement(), cols, i as u64 + 1))
                .collect(),
        }
    }

    fn access(&mut self, addr: u64, is_write: bool, mask: ColumnMask) -> AccessOutcome {
        let cols = self.config.columns();
        let (tag, set, _) = self.config.split_addr(addr);
        let base = set * cols;
        let row = &mut self.lines[base..base + cols];
        if let Some(way) = row.iter().position(|l| l.valid && l.tag == tag) {
            self.repl[set].on_access(way);
            if is_write {
                row[way].dirty = true;
            }
            return AccessOutcome::Hit { column: way };
        }
        let valid_bits = row
            .iter()
            .enumerate()
            .fold(0u64, |acc, (w, l)| acc | (u64::from(l.valid) << w));
        let Some(way) = self.repl[set].victim(mask.truncate(cols), valid_bits) else {
            return AccessOutcome::Bypass;
        };
        let evicted = row[way].valid.then(|| Eviction {
            line_addr: self.config.line_addr(row[way].tag, set),
            dirty: row[way].dirty,
            column: way,
        });
        row[way] = RefLine {
            tag,
            valid: true,
            dirty: is_write,
        };
        self.repl[set].on_fill(way);
        AccessOutcome::Miss {
            column: way,
            evicted,
        }
    }
}

/// Valid geometries to sweep: (capacity, columns, line size). Each yields a
/// power-of-two set count, from 1-way × 64 sets up to 8-way × 8 sets.
const GEOMETRIES: [(u64, usize, u64); 6] = [
    (1024, 1, 16),
    (1024, 2, 32),
    (2048, 4, 32),
    (4096, 8, 64),
    (2048, 8, 16),
    (4096, 4, 16),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the access pattern, a line that was just filled is found by `probe` in a
    /// column permitted by the mask that filled it.
    #[test]
    fn filled_lines_are_probeable_in_an_allowed_column(
        ops in prop::collection::vec((0u64..0x20_000, prop::collection::vec(0usize..4, 1..4)), 1..300)
    ) {
        let mut cache = ColumnCache::new(CacheConfig::default());
        for (addr, cols) in ops {
            let mask = ColumnMask::from_columns(cols.iter().copied());
            cache.access(addr, false, mask);
            let col = cache.probe(addr).expect("just-filled line must be present");
            // The line may have been found (hit) in a column outside today's mask if it
            // was filled earlier under a different mask; re-filling never moves it. So we
            // only require that *some* column holds it and occupancy stays bounded.
            prop_assert!(col < 4);
        }
    }

    /// The replacement unit never selects a victim outside the allowed mask, for every
    /// policy.
    #[test]
    fn victims_always_respect_the_mask(
        policy_idx in 0usize..5,
        accesses in prop::collection::vec(0usize..8, 0..64),
        allowed in prop::collection::vec(0usize..8, 1..8),
        valid_bits in prop::collection::vec(any::<bool>(), 8),
    ) {
        let policy = ReplacementPolicy::ALL[policy_idx];
        let mut st = ReplacementState::new(policy, 8, 1234);
        for way in accesses {
            st.on_access(way);
        }
        let mask = ColumnMask::from_columns(allowed.iter().copied());
        let valid_bits = valid_bits
            .iter()
            .enumerate()
            .fold(0u64, |acc, (w, &v)| acc | (u64::from(v) << w));
        match st.victim(mask, valid_bits) {
            Some(v) => prop_assert!(mask.contains(v), "policy {policy} picked {v} outside {mask}"),
            None => prop_assert!(mask.is_empty()),
        }
    }

    /// Flushing writes back exactly the lines that were written and still resident.
    #[test]
    fn flush_writes_back_only_dirty_lines(
        ops in prop::collection::vec((0u64..0x8000, any::<bool>()), 1..200)
    ) {
        let mut cache = ColumnCache::new(CacheConfig::default());
        let mask = ColumnMask::all(4);
        for (addr, w) in &ops {
            cache.access(*addr, *w, mask);
        }
        let dirty_resident = cache
            .valid_line_addrs()
            .len();
        let written_back = cache.flush();
        prop_assert!(written_back as usize <= dirty_resident);
        prop_assert_eq!(cache.valid_lines(), 0);
    }

    /// The TLB + page-table combination always reports the tint most recently written to
    /// the page table, provided the affected TLB entry was flushed (the hardware contract
    /// the software control layer relies on).
    #[test]
    fn retint_plus_flush_is_always_visible(
        pages in prop::collection::vec((0u64..32, 0u32..8), 1..100)
    ) {
        let mut sys = MemorySystem::with_default_cache();
        let page_size = sys.config().page_size;
        for (page, tint) in pages {
            let base = page * page_size;
            sys.define_tint(Tint(tint + 1), ColumnMask::single((tint % 4) as usize)).unwrap();
            sys.tint_range(base..base + page_size, Tint(tint + 1));
            sys.access(base, false);
            prop_assert_eq!(sys.page_table().entry_for_addr(base).tint, Tint(tint + 1));
        }
    }

    /// The struct-of-arrays cache is observationally identical to the pre-rewrite
    /// array-of-structs model: every access produces the same outcome (hit/miss/bypass,
    /// column, and eviction address/dirtiness), and the aggregate counters agree — for
    /// every geometry, replacement policy, and per-access mask (including empty masks,
    /// which force bypasses).
    #[test]
    fn soa_cache_matches_array_of_structs_reference_model(
        geometry_idx in 0usize..GEOMETRIES.len(),
        policy_idx in 0usize..5,
        ops in prop::collection::vec(
            (0u64..0x40_000, any::<bool>(), prop::collection::vec(0usize..8, 0..4)),
            1..400,
        )
    ) {
        let (capacity, columns, line) = GEOMETRIES[geometry_idx];
        let config = CacheConfig::builder()
            .capacity_bytes(capacity)
            .columns(columns)
            .line_size(line)
            .replacement(ReplacementPolicy::ALL[policy_idx])
            .build()
            .expect("geometry table entries are valid");
        let mut cache = ColumnCache::new(config);
        let mut model = ReferenceCache::new(config);
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut bypasses = 0u64;
        let mut evictions = 0u64;
        let mut writebacks = 0u64;
        for (addr, is_write, cols) in ops {
            // Bits at or above `columns` are deliberately kept: both paths must truncate
            // out-of-range mask bits identically.
            let mask = ColumnMask::from_columns(cols.iter().copied());
            let got = cache.access(addr, is_write, mask);
            let want = model.access(addr, is_write, mask);
            prop_assert_eq!(got, want, "outcome diverged at addr {:#x}", addr);
            match got {
                AccessOutcome::Hit { .. } => hits += 1,
                AccessOutcome::Miss { evicted, .. } => {
                    misses += 1;
                    if let Some(ev) = evicted {
                        evictions += 1;
                        if ev.dirty {
                            writebacks += 1;
                        }
                    }
                }
                AccessOutcome::Bypass => bypasses += 1,
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits, hits);
        prop_assert_eq!(s.misses, misses);
        prop_assert_eq!(s.bypasses, bypasses);
        prop_assert_eq!(s.evictions, evictions);
        prop_assert_eq!(s.writebacks, writebacks);
    }

    /// Statistics identities: hits + misses + bypasses == accesses, and column hit/fill
    /// counters sum to the totals.
    #[test]
    fn statistics_identities_hold(
        ops in prop::collection::vec((0u64..0x40_000, any::<bool>(), 0usize..4), 1..400)
    ) {
        let mut cache = ColumnCache::new(CacheConfig::default());
        for (addr, w, col) in ops {
            cache.access(addr, w, ColumnMask::single(col));
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses + s.bypasses, s.accesses);
        prop_assert_eq!(s.column_hits.iter().sum::<u64>(), s.hits);
        prop_assert_eq!(s.column_fills.iter().sum::<u64>(), s.misses);
        prop_assert!(s.writebacks <= s.evictions + 1);
    }
}
