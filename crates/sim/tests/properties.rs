//! Property-based tests of the cache simulator's core invariants.

use ccache_sim::prelude::*;
use ccache_sim::replacement::ReplacementState;
use ccache_sim::{CacheConfig, ColumnCache, Tint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the access pattern, a line that was just filled is found by `probe` in a
    /// column permitted by the mask that filled it.
    #[test]
    fn filled_lines_are_probeable_in_an_allowed_column(
        ops in prop::collection::vec((0u64..0x20_000, prop::collection::vec(0usize..4, 1..4)), 1..300)
    ) {
        let mut cache = ColumnCache::new(CacheConfig::default());
        for (addr, cols) in ops {
            let mask = ColumnMask::from_columns(cols.iter().copied());
            cache.access(addr, false, mask);
            let col = cache.probe(addr).expect("just-filled line must be present");
            // The line may have been found (hit) in a column outside today's mask if it
            // was filled earlier under a different mask; re-filling never moves it. So we
            // only require that *some* column holds it and occupancy stays bounded.
            prop_assert!(col < 4);
        }
    }

    /// The replacement unit never selects a victim outside the allowed mask, for every
    /// policy.
    #[test]
    fn victims_always_respect_the_mask(
        policy_idx in 0usize..5,
        accesses in prop::collection::vec(0usize..8, 0..64),
        allowed in prop::collection::vec(0usize..8, 1..8),
        valid_bits in prop::collection::vec(any::<bool>(), 8),
    ) {
        let policy = ReplacementPolicy::ALL[policy_idx];
        let mut st = ReplacementState::new(policy, 8, 1234);
        for way in accesses {
            st.on_access(way);
        }
        let mask = ColumnMask::from_columns(allowed.iter().copied());
        match st.victim(mask, &valid_bits) {
            Some(v) => prop_assert!(mask.contains(v), "policy {policy} picked {v} outside {mask}"),
            None => prop_assert!(mask.is_empty()),
        }
    }

    /// Flushing writes back exactly the lines that were written and still resident.
    #[test]
    fn flush_writes_back_only_dirty_lines(
        ops in prop::collection::vec((0u64..0x8000, any::<bool>()), 1..200)
    ) {
        let mut cache = ColumnCache::new(CacheConfig::default());
        let mask = ColumnMask::all(4);
        for (addr, w) in &ops {
            cache.access(*addr, *w, mask);
        }
        let dirty_resident = cache
            .valid_line_addrs()
            .len();
        let written_back = cache.flush();
        prop_assert!(written_back as usize <= dirty_resident);
        prop_assert_eq!(cache.valid_lines(), 0);
    }

    /// The TLB + page-table combination always reports the tint most recently written to
    /// the page table, provided the affected TLB entry was flushed (the hardware contract
    /// the software control layer relies on).
    #[test]
    fn retint_plus_flush_is_always_visible(
        pages in prop::collection::vec((0u64..32, 0u32..8), 1..100)
    ) {
        let mut sys = MemorySystem::with_default_cache();
        let page_size = sys.config().page_size;
        for (page, tint) in pages {
            let base = page * page_size;
            sys.define_tint(Tint(tint + 1), ColumnMask::single((tint % 4) as usize)).unwrap();
            sys.tint_range(base..base + page_size, Tint(tint + 1));
            sys.access(base, false);
            prop_assert_eq!(sys.page_table().entry_for_addr(base).tint, Tint(tint + 1));
        }
    }

    /// Statistics identities: hits + misses + bypasses == accesses, and column hit/fill
    /// counters sum to the totals.
    #[test]
    fn statistics_identities_hold(
        ops in prop::collection::vec((0u64..0x40_000, any::<bool>(), 0usize..4), 1..400)
    ) {
        let mut cache = ColumnCache::new(CacheConfig::default());
        for (addr, w, col) in ops {
            cache.access(addr, w, ColumnMask::single(col));
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses + s.bypasses, s.accesses);
        prop_assert_eq!(s.column_hits.iter().sum::<u64>(), s.hits);
        prop_assert_eq!(s.column_fills.iter().sum::<u64>(), s.misses);
        prop_assert!(s.writebacks <= s.evictions + 1);
    }
}
