//! Error type for the cache simulator.

use std::fmt;

/// Errors produced while configuring or driving the simulated memory system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A size parameter was zero or not a power of two.
    BadSize {
        /// Name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// The cache geometry is inconsistent (e.g. capacity not divisible by line size × ways).
    BadGeometry {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// A column index was out of range for the configured number of columns.
    ColumnOutOfRange {
        /// The rejected column index.
        column: usize,
        /// Number of columns in the cache.
        columns: usize,
    },
    /// A column mask was empty (no replacement candidates) where one is required.
    EmptyMask,
    /// A tint was used without first being defined in the tint table.
    UnknownTint {
        /// The numeric identifier of the tint.
        tint: u32,
    },
    /// An address could not be translated because no page-table entry covers it.
    UnmappedAddress {
        /// The offending address.
        addr: u64,
    },
    /// A scratchpad region was configured with inconsistent bounds.
    BadScratchpadRange {
        /// Start of the region.
        base: u64,
        /// Size of the region in bytes.
        size: u64,
    },
    /// The TLB was configured with no entries; translation needs at least one slot.
    ZeroTlbEntries,
    /// The cache line is larger than the mapping granularity, so one line would span
    /// pages with potentially different tints.
    LineExceedsPage {
        /// Configured cache-line size in bytes.
        line_size: u64,
        /// Configured page size in bytes.
        page_size: u64,
    },
    /// A backend name did not resolve in the [`BackendRegistry`](crate::BackendRegistry).
    UnknownBackend {
        /// The name that failed to resolve.
        name: String,
        /// The accepted names, for the error message (derived from the registry).
        expected: String,
    },
    /// A backend registration collided with a name (or alias) already registered.
    DuplicateBackend {
        /// The colliding name.
        name: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadSize { what, value } => {
                write!(f, "{what} must be a nonzero power of two, got {value}")
            }
            SimError::BadGeometry { reason } => write!(f, "inconsistent cache geometry: {reason}"),
            SimError::ColumnOutOfRange { column, columns } => {
                write!(
                    f,
                    "column {column} out of range for a {columns}-column cache"
                )
            }
            SimError::EmptyMask => write!(f, "column mask selects no columns"),
            SimError::UnknownTint { tint } => write!(f, "tint {tint} is not defined"),
            SimError::UnmappedAddress { addr } => {
                write!(f, "address {addr:#x} has no page-table entry")
            }
            SimError::BadScratchpadRange { base, size } => {
                write!(
                    f,
                    "scratchpad range at {base:#x} of {size} bytes is invalid"
                )
            }
            SimError::ZeroTlbEntries => write!(f, "TLB must have at least one entry"),
            SimError::LineExceedsPage {
                line_size,
                page_size,
            } => write!(
                f,
                "cache line of {line_size} bytes exceeds the {page_size}-byte page, so one \
                 line would span pages with different tints"
            ),
            SimError::UnknownBackend { name, expected } => {
                write!(f, "unknown backend '{name}' (expected {expected})")
            }
            SimError::DuplicateBackend { name } => {
                write!(f, "backend '{name}' is already registered")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_offending_values() {
        assert!(SimError::BadSize {
            what: "line size",
            value: 48
        }
        .to_string()
        .contains("48"));
        assert!(SimError::ColumnOutOfRange {
            column: 9,
            columns: 4
        }
        .to_string()
        .contains('9'));
        assert!(SimError::UnmappedAddress { addr: 0x1234 }
            .to_string()
            .contains("0x1234"));
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync>() {}
        assert_traits::<SimError>();
    }
}
