//! Replacement policies and the mask-aware replacement unit.
//!
//! Column caching's only change to replacement is *which* lines are candidates: the policy
//! still orders the ways of a set, but the victim must come from a column whose bit is set
//! in the access's [`ColumnMask`]. Invalid (empty) ways inside the allowed mask are always
//! preferred over evicting live data.

use crate::mask::ColumnMask;
use std::fmt;

/// The victim-selection policy applied within the allowed columns of a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
#[derive(Default)]
pub enum ReplacementPolicy {
    /// Least recently used (exact, per-set timestamps).
    #[default]
    Lru,
    /// First in, first out (evict the line filled longest ago).
    Fifo,
    /// Bit-PLRU: one "recently used" bit per way, cleared en masse when all are set.
    BitPlru,
    /// Round-robin over the allowed columns.
    RoundRobin,
    /// Pseudo-random selection (deterministic xorshift, seeded per set).
    Random,
}

impl ReplacementPolicy {
    /// All supported policies, for sweeps and ablations.
    pub const ALL: [ReplacementPolicy; 5] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::BitPlru,
        ReplacementPolicy::RoundRobin,
        ReplacementPolicy::Random,
    ];
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::BitPlru => "bit-plru",
            ReplacementPolicy::RoundRobin => "round-robin",
            ReplacementPolicy::Random => "random",
        };
        f.write_str(s)
    }
}

/// Per-set replacement state: recency/fill timestamps, PLRU bits and policy bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplacementState {
    policy: ReplacementPolicy,
    /// Last-use time per way (LRU) — larger is more recent.
    use_stamp: Vec<u64>,
    /// Fill time per way (FIFO) — larger is more recent.
    fill_stamp: Vec<u64>,
    /// "Recently used" bit per way (bit-PLRU).
    mru_bit: Vec<bool>,
    clock: u64,
    next_rr: usize,
    rng: u64,
}

impl ReplacementState {
    /// Creates replacement state for a set with `ways` ways.
    pub fn new(policy: ReplacementPolicy, ways: usize, seed: u64) -> Self {
        ReplacementState {
            policy,
            use_stamp: vec![0; ways],
            fill_stamp: vec![0; ways],
            mru_bit: vec![false; ways],
            clock: 0,
            next_rr: 0,
            rng: seed | 1,
        }
    }

    /// Returns the state to exactly what [`ReplacementState::new`] with the same policy,
    /// way count and `seed` would produce — in place, without reallocating the per-way
    /// vectors. The pooled fitness datapath resets thousands of sets per candidate, so
    /// this path must stay allocation-free.
    pub fn reset(&mut self, seed: u64) {
        self.use_stamp.fill(0);
        self.fill_stamp.fill(0);
        self.mru_bit.fill(false);
        self.clock = 0;
        self.next_rr = 0;
        self.rng = seed | 1;
    }

    /// Number of ways tracked.
    pub fn ways(&self) -> usize {
        self.use_stamp.len()
    }

    /// The policy this state applies.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Records a hit on `way`.
    ///
    /// Only the structures the active policy consults are updated: LRU stamps for
    /// [`ReplacementPolicy::Lru`], MRU bits for [`ReplacementPolicy::BitPlru`]. The other
    /// policies ignore re-hits entirely, so this is a no-op for them — hits dominate any
    /// realistic trace, and this runs once per hit.
    #[inline]
    pub fn on_access(&mut self, way: usize) {
        match self.policy {
            ReplacementPolicy::Lru => {
                self.clock += 1;
                self.use_stamp[way] = self.clock;
            }
            ReplacementPolicy::BitPlru => self.touch_plru(way),
            ReplacementPolicy::Fifo | ReplacementPolicy::RoundRobin | ReplacementPolicy::Random => {
            }
        }
    }

    /// Records a fill (miss that installed a new line) into `way`.
    ///
    /// As with [`ReplacementState::on_access`], only the active policy's structures are
    /// touched; relative stamp order — all any policy compares — is unaffected.
    #[inline]
    pub fn on_fill(&mut self, way: usize) {
        match self.policy {
            ReplacementPolicy::Lru => {
                self.clock += 1;
                self.use_stamp[way] = self.clock;
            }
            ReplacementPolicy::Fifo => {
                self.clock += 1;
                self.fill_stamp[way] = self.clock;
            }
            ReplacementPolicy::BitPlru => self.touch_plru(way),
            ReplacementPolicy::RoundRobin | ReplacementPolicy::Random => {}
        }
    }

    fn touch_plru(&mut self, way: usize) {
        self.mru_bit[way] = true;
        if self.mru_bit.iter().all(|&b| b) {
            for (i, b) in self.mru_bit.iter_mut().enumerate() {
                *b = i == way;
            }
        }
    }

    /// Chooses the victim way for a miss restricted to `allowed` columns.
    ///
    /// `valid` is a bitmask of ways currently holding a valid line (bit `w` set means
    /// way `w` is valid); bits at or above [`ReplacementState::ways`] are ignored.
    /// Invalid ways inside the allowed mask are always used first, in ascending way
    /// order. Otherwise the policy picks among the allowed ways. The whole selection is
    /// bit arithmetic over the candidate mask — no allocation on this path, which a
    /// miss takes on every fill.
    ///
    /// Returns `None` if the mask selects no way of this set (the caller treats the access
    /// as uncacheable, which cannot happen through the public `MemorySystem` API because
    /// masks are validated when tints are defined).
    pub fn victim(&mut self, allowed: ColumnMask, valid: u64) -> Option<usize> {
        let ways = self.ways();
        let ways_mask = if ways >= 64 {
            u64::MAX
        } else {
            (1u64 << ways) - 1
        };
        let candidates = allowed.bits() & ways_mask;
        if candidates == 0 {
            return None;
        }
        let empty = candidates & !valid;
        if empty != 0 {
            return Some(empty.trailing_zeros() as usize);
        }
        let chosen = match self.policy {
            ReplacementPolicy::Lru => min_stamp_way(candidates, &self.use_stamp),
            ReplacementPolicy::Fifo => min_stamp_way(candidates, &self.fill_stamp),
            ReplacementPolicy::BitPlru => {
                let mut rest = candidates;
                loop {
                    if rest == 0 {
                        // every allowed way is recently used: fall back to the lowest
                        break candidates.trailing_zeros() as usize;
                    }
                    let w = rest.trailing_zeros() as usize;
                    if !self.mru_bit[w] {
                        break w;
                    }
                    rest &= rest - 1;
                }
            }
            ReplacementPolicy::RoundRobin => {
                // The first allowed way at or after the round-robin pointer, wrapping
                // to the lowest allowed way. `next_rr < ways <= 64`, so the shift that
                // clears the ways below the pointer is well defined.
                let at_or_after = candidates & (u64::MAX << self.next_rr);
                let w = if at_or_after != 0 {
                    at_or_after.trailing_zeros() as usize
                } else {
                    candidates.trailing_zeros() as usize
                };
                self.next_rr = (w + 1) % ways;
                w
            }
            ReplacementPolicy::Random => {
                // xorshift64*
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                let k = (self.rng % u64::from(candidates.count_ones())) as u32;
                nth_set_bit(candidates, k)
            }
        };
        Some(chosen)
    }
}

/// The lowest-indexed way among `candidates` with the minimal stamp — the bitmask
/// equivalent of `min_by_key` over ascending way order (first minimum wins).
fn min_stamp_way(candidates: u64, stamps: &[u64]) -> usize {
    let mut rest = candidates;
    let mut best = rest.trailing_zeros() as usize;
    rest &= rest - 1;
    while rest != 0 {
        let w = rest.trailing_zeros() as usize;
        if stamps[w] < stamps[best] {
            best = w;
        }
        rest &= rest - 1;
    }
    best
}

/// The `k`-th (0-based) set bit of `mask`, ascending. `k` must be less than
/// `mask.count_ones()`.
fn nth_set_bit(mask: u64, k: u32) -> usize {
    let mut rest = mask;
    for _ in 0..k {
        rest &= rest - 1;
    }
    rest.trailing_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_valid(n: usize) -> u64 {
        if n >= 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    #[test]
    fn invalid_ways_are_preferred() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 4, 1);
        let valid = 0b0101; // ways 0 and 2 valid, 1 and 3 empty
        let v = st.victim(ColumnMask::all(4), valid).unwrap();
        assert_eq!(v, 1);
        // restricted to column 3 which is invalid
        let v = st.victim(ColumnMask::single(3), valid).unwrap();
        assert_eq!(v, 3);
    }

    #[test]
    fn lru_evicts_least_recently_used_within_mask() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 4, 1);
        for w in 0..4 {
            st.on_fill(w);
        }
        st.on_access(0);
        st.on_access(1);
        // way 2 is now the LRU of the full mask
        assert_eq!(st.victim(ColumnMask::all(4), all_valid(4)), Some(2));
        // but restricted to columns {0,1}, way 0 is older than way 1
        assert_eq!(
            st.victim(ColumnMask::from_columns([0, 1]), all_valid(4)),
            Some(0)
        );
    }

    #[test]
    fn fifo_ignores_rehits() {
        let mut st = ReplacementState::new(ReplacementPolicy::Fifo, 2, 1);
        st.on_fill(0);
        st.on_fill(1);
        st.on_access(0); // re-hit must not refresh FIFO order
        assert_eq!(st.victim(ColumnMask::all(2), all_valid(2)), Some(0));
    }

    #[test]
    fn bit_plru_clears_when_saturated() {
        let mut st = ReplacementState::new(ReplacementPolicy::BitPlru, 2, 1);
        st.on_fill(0);
        // way 1 not recently used
        assert_eq!(st.victim(ColumnMask::all(2), all_valid(2)), Some(1));
        st.on_fill(1); // all bits set -> cleared except way 1
        assert_eq!(st.victim(ColumnMask::all(2), all_valid(2)), Some(0));
    }

    #[test]
    fn round_robin_cycles_through_allowed_ways() {
        let mut st = ReplacementState::new(ReplacementPolicy::RoundRobin, 4, 1);
        let mask = ColumnMask::from_columns([1, 3]);
        let v1 = st.victim(mask, all_valid(4)).unwrap();
        let v2 = st.victim(mask, all_valid(4)).unwrap();
        let v3 = st.victim(mask, all_valid(4)).unwrap();
        assert!(mask.contains(v1) && mask.contains(v2) && mask.contains(v3));
        assert_ne!(v1, v2);
        assert_eq!(v1, v3);
    }

    #[test]
    fn random_is_deterministic_for_a_seed_and_respects_mask() {
        let mut a = ReplacementState::new(ReplacementPolicy::Random, 8, 42);
        let mut b = ReplacementState::new(ReplacementPolicy::Random, 8, 42);
        let mask = ColumnMask::from_columns([2, 5, 6]);
        for _ in 0..100 {
            let va = a.victim(mask, all_valid(8)).unwrap();
            let vb = b.victim(mask, all_valid(8)).unwrap();
            assert_eq!(va, vb);
            assert!(mask.contains(va));
        }
    }

    #[test]
    fn empty_mask_yields_no_victim() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 4, 1);
        assert_eq!(st.victim(ColumnMask::EMPTY, all_valid(4)), None);
    }

    #[test]
    fn reset_matches_fresh_construction() {
        for policy in ReplacementPolicy::ALL {
            let mut st = ReplacementState::new(policy, 4, 9);
            for w in 0..4 {
                st.on_fill(w);
                st.on_access(w);
            }
            st.victim(ColumnMask::all(4), all_valid(4));
            st.reset(9);
            assert_eq!(st, ReplacementState::new(policy, 4, 9), "{policy}");
        }
    }

    #[test]
    fn policy_display_and_all() {
        assert_eq!(ReplacementPolicy::Lru.to_string(), "lru");
        assert_eq!(ReplacementPolicy::ALL.len(), 5);
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }
}
