//! Off-chip main memory model.
//!
//! Main memory sits behind the cache: line fills and writebacks are charged its latency and
//! counted here, so experiments can also report memory traffic (a proxy for the energy cost
//! the paper's embedded-systems context cares about).

/// Counters and latency of the off-chip memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MainMemory {
    /// Cycles charged per line read (the miss penalty contribution of the DRAM itself).
    pub read_latency: u64,
    /// Cycles charged per line written back.
    pub write_latency: u64,
    /// Lines read from memory (cache fills and uncached reads).
    pub line_reads: u64,
    /// Lines written to memory (writebacks and uncached writes).
    pub line_writes: u64,
    /// Bytes transferred from memory.
    pub bytes_read: u64,
    /// Bytes transferred to memory.
    pub bytes_written: u64,
}

impl MainMemory {
    /// Creates a memory model with the given per-line latencies.
    pub fn new(read_latency: u64, write_latency: u64) -> Self {
        MainMemory {
            read_latency,
            write_latency,
            line_reads: 0,
            line_writes: 0,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// Records a line fill of `bytes` bytes and returns its cost in cycles.
    #[inline]
    pub fn read_line(&mut self, bytes: u64) -> u64 {
        self.line_reads += 1;
        self.bytes_read += bytes;
        self.read_latency
    }

    /// Records a writeback of `bytes` bytes and returns its cost in cycles.
    #[inline]
    pub fn write_line(&mut self, bytes: u64) -> u64 {
        self.line_writes += 1;
        self.bytes_written += bytes;
        self.write_latency
    }

    /// Total lines transferred in either direction.
    pub fn total_transfers(&self) -> u64 {
        self.line_reads + self.line_writes
    }

    /// Total bytes transferred in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Resets the traffic counters, keeping latencies.
    pub fn reset(&mut self) {
        self.line_reads = 0;
        self.line_writes = 0;
        self.bytes_read = 0;
        self.bytes_written = 0;
    }
}

impl Default for MainMemory {
    fn default() -> Self {
        MainMemory::new(20, 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_and_writes_are_counted_and_charged() {
        let mut m = MainMemory::new(20, 10);
        assert_eq!(m.read_line(32), 20);
        assert_eq!(m.write_line(32), 10);
        assert_eq!(m.read_line(64), 20);
        assert_eq!(m.line_reads, 2);
        assert_eq!(m.line_writes, 1);
        assert_eq!(m.bytes_read, 96);
        assert_eq!(m.bytes_written, 32);
        assert_eq!(m.total_transfers(), 3);
        assert_eq!(m.total_bytes(), 128);
    }

    #[test]
    fn reset_clears_traffic_but_keeps_latency() {
        let mut m = MainMemory::default();
        m.read_line(32);
        m.reset();
        assert_eq!(m.line_reads, 0);
        assert_eq!(m.total_bytes(), 0);
        assert_eq!(m.read_latency, 20);
    }
}
