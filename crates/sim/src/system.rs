//! The complete simulated memory system: column cache + TLB + page table + tint table +
//! optional dedicated scratchpad + main memory, with a cycle-approximate timing model.
//!
//! [`MemorySystem`] exposes the two halves of the paper's mechanism:
//!
//! * the **hardware datapath** — [`MemorySystem::access`] replays one memory reference,
//!   consults the TLB for the page's tint, resolves the tint to a column mask and drives
//!   the column cache, charging cycles for hits, misses, writebacks and TLB walks;
//! * the **software control interface** — defining and remapping tints
//!   ([`MemorySystem::define_tint`], [`MemorySystem::remap_tint`]), re-tinting address
//!   ranges ([`MemorySystem::tint_range`], which updates page-table entries and flushes the
//!   affected TLB entries exactly as Figure 3 describes), dedicating columns as scratchpad
//!   ([`MemorySystem::map_exclusive_region`]) and marking regions uncacheable.

use crate::cache::{AccessOutcome, ColumnCache};
use crate::config::{CacheConfig, LatencyConfig};
use crate::error::SimError;
use crate::mask::ColumnMask;
use crate::memory::MainMemory;
use crate::page_table::PageTable;
use crate::scratchpad::Scratchpad;
use crate::stats::{BatchMemoStats, CacheStats, CycleReport, MemoryStats};
use crate::tint::{Tint, TintTable};
use crate::tlb::Tlb;
use std::ops::Range;

/// Configuration of a [`MemorySystem`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Geometry and replacement policy of the column cache.
    pub cache: CacheConfig,
    /// Latency model.
    pub latency: LatencyConfig,
    /// Page size used by the page table and TLB (power of two).
    pub page_size: u64,
    /// Number of TLB entries.
    pub tlb_entries: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            cache: CacheConfig::default(),
            latency: LatencyConfig::default(),
            page_size: 1024,
            tlb_entries: 64,
        }
    }
}

impl SystemConfig {
    /// Validates the configuration: the page size must be a nonzero power of two, the
    /// TLB needs at least one entry, and a cache line must not span pages (tints are
    /// per-page, so a line crossing pages could carry two different mappings).
    pub fn validate(&self) -> Result<(), SimError> {
        if self.page_size == 0 || !self.page_size.is_power_of_two() {
            return Err(SimError::BadSize {
                what: "page size",
                value: self.page_size,
            });
        }
        if self.tlb_entries == 0 {
            return Err(SimError::ZeroTlbEntries);
        }
        if self.cache.line_size() > self.page_size {
            return Err(SimError::LineExceedsPage {
                line_size: self.cache.line_size(),
                page_size: self.page_size,
            });
        }
        Ok(())
    }
}

/// The simulated memory hierarchy driven by a reference stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySystem {
    config: SystemConfig,
    cache: ColumnCache,
    tlb: Tlb,
    page_table: PageTable,
    tints: TintTable,
    scratchpad: Option<Scratchpad>,
    memory: MainMemory,
    stats: MemoryStats,
    memo: BatchMemoStats,
    /// Cycles spent in software control operations (tint remaps, re-tints, preloads,
    /// explicit copies). Reported separately so experiments can include or exclude them.
    pub control_cycles: u64,
}

impl MemorySystem {
    /// Creates a memory system from a configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the page size or cache geometry is invalid.
    pub fn new(config: SystemConfig) -> Result<Self, SimError> {
        config.validate()?;
        let cache = ColumnCache::new(config.cache);
        let page_table = PageTable::new(config.page_size)?;
        let columns = config.cache.columns();
        Ok(MemorySystem {
            config,
            cache,
            tlb: Tlb::new(config.tlb_entries),
            page_table,
            tints: TintTable::new(columns),
            scratchpad: None,
            memory: MainMemory::new(
                config.latency.miss_penalty,
                config.latency.writeback_penalty,
            ),
            stats: MemoryStats::default(),
            memo: BatchMemoStats::default(),
            control_cycles: 0,
        })
    }

    /// Creates a memory system with the default 2 KiB / 4-column cache.
    pub fn with_default_cache() -> Self {
        MemorySystem::new(SystemConfig::default()).expect("default config is valid")
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Read-only view of the column cache.
    pub fn cache(&self) -> &ColumnCache {
        &self.cache
    }

    /// Read-only view of the TLB.
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// Read-only view of the page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Read-only view of the tint table.
    pub fn tints(&self) -> &TintTable {
        &self.tints
    }

    /// Read-only view of the main-memory traffic counters.
    pub fn memory(&self) -> &MainMemory {
        &self.memory
    }

    /// Read-only view of the dedicated scratchpad, if one is configured.
    pub fn scratchpad(&self) -> Option<&Scratchpad> {
        self.scratchpad.as_ref()
    }

    /// Memory-system statistics (references, cycles, TLB behaviour).
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Batch-replay memo counters ([`MemorySystem::run_batch`] short-circuits). Not part
    /// of [`MemorySystem::stats`]: the memo only exists on the batched path, and the
    /// architectural statistics must stay identical between batched and per-reference
    /// replay.
    pub fn memo_stats(&self) -> BatchMemoStats {
        self.memo
    }

    /// Cache statistics (hits, misses, per-column counters).
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Resets every statistic (but not cache/TLB contents or mappings).
    pub fn reset_stats(&mut self) {
        self.stats = MemoryStats::default();
        self.memo = BatchMemoStats::default();
        self.cache.reset_stats();
        self.tlb.reset_stats();
        self.memory.reset();
        self.control_cycles = 0;
    }

    /// Returns the system to its just-constructed state: cache and TLB contents, page
    /// table, tint table, scratchpad and every statistic are cleared. This discards all
    /// programming; to restore a *programmed* warm state between sweep points, the replay
    /// engine snapshots with [`MemoryBackend::boxed_clone`](crate::backend::MemoryBackend)
    /// instead.
    ///
    /// The reset is performed in place — the cache's tag/validity/replacement vectors are
    /// rewound rather than reallocated — because the pooled fitness datapath calls this
    /// between every pair of candidates. The result is indistinguishable from a fresh
    /// [`MemorySystem::new`] (the structures derive `PartialEq`; a test pins equality).
    pub fn full_reset(&mut self) {
        self.cache.clear();
        self.tlb.clear();
        self.page_table.clear();
        self.tints.reset();
        self.scratchpad = None;
        self.memory.reset();
        self.stats = MemoryStats::default();
        self.memo = BatchMemoStats::default();
        self.control_cycles = 0;
    }

    // ------------------------------------------------------------------
    // Software control interface
    // ------------------------------------------------------------------

    /// Defines (or redefines) the column mask of a tint. This is the cheap operation of the
    /// paper: a single tint-table write.
    pub fn define_tint(&mut self, tint: Tint, mask: ColumnMask) -> Result<(), SimError> {
        self.control_cycles += 1;
        self.tints.define(tint, mask)
    }

    /// Synonym of [`MemorySystem::define_tint`] that reads better at call sites performing
    /// dynamic repartitioning.
    pub fn remap_tint(&mut self, tint: Tint, mask: ColumnMask) -> Result<(), SimError> {
        self.define_tint(tint, mask)
    }

    /// Gives `tint` exclusive use of the columns in `mask`: other tints lose those columns
    /// from their masks (where possible). Returns tints that could not be reduced because
    /// they would have been left with no columns.
    pub fn make_tint_exclusive(
        &mut self,
        tint: Tint,
        mask: ColumnMask,
    ) -> Result<Vec<Tint>, SimError> {
        self.control_cycles += 1;
        self.tints.make_exclusive(tint, mask)
    }

    /// Assigns `tint` to every page overlapping `range` and flushes the affected TLB
    /// entries. This is the expensive re-tinting operation: one page-table write plus one
    /// TLB flush per changed page, charged to [`MemorySystem::control_cycles`].
    pub fn tint_range(&mut self, range: Range<u64>, tint: Tint) -> usize {
        let changed = self.page_table.tint_range(range, tint);
        let flushed = self.tlb.flush_pages(&changed);
        self.stats.tlb_flushes += flushed as u64;
        // One cycle per page-table write plus the TLB-miss penalty each flushed page will
        // pay on its next access is charged when it happens; here we charge the writes.
        self.control_cycles += changed.len() as u64;
        changed.len()
    }

    /// Marks every page overlapping `range` as uncacheable (or cacheable again).
    pub fn set_cacheable(&mut self, range: Range<u64>, cacheable: bool) -> usize {
        let changed = self.page_table.set_cacheable_range(range, cacheable);
        let flushed = self.tlb.flush_pages(&changed);
        self.stats.tlb_flushes += flushed as u64;
        self.control_cycles += changed.len() as u64;
        changed.len()
    }

    /// Maps `[base, base + size)` exclusively to the columns of `mask` using a fresh tint,
    /// and optionally pre-loads every line so subsequent accesses are guaranteed hits —
    /// this is the paper's recipe for emulating scratchpad memory inside the cache
    /// (Section 2.3). Returns the tint used.
    ///
    /// # Errors
    ///
    /// Returns an error if the mask is invalid for this cache.
    pub fn map_exclusive_region(
        &mut self,
        base: u64,
        size: u64,
        mask: ColumnMask,
        tint: Tint,
        preload: bool,
    ) -> Result<Tint, SimError> {
        mask.validate(self.config.cache.columns())?;
        self.make_tint_exclusive(tint, mask)?;
        self.tint_range(base..base + size, tint);
        if preload {
            let fetched = self.cache.preload(base, size, mask);
            // each pre-load line fill costs a miss penalty, charged as control overhead
            self.control_cycles +=
                fetched * (self.config.latency.hit_latency + self.config.latency.miss_penalty);
        }
        Ok(tint)
    }

    /// Attaches a dedicated scratchpad SRAM covering `[base, base + size)`. Accesses to the
    /// region are then served by the scratchpad at scratchpad latency and never touch the
    /// cache. Used for the Panda-style static partition baseline.
    pub fn attach_scratchpad(&mut self, base: u64, size: u64) -> Result<(), SimError> {
        self.scratchpad = Some(Scratchpad::new(base, size)?);
        Ok(())
    }

    /// Models the explicit software copy of `bytes` bytes into the dedicated scratchpad
    /// (charging control cycles). Returns the cycles charged, or 0 if no scratchpad is
    /// attached.
    pub fn scratchpad_copy_in(&mut self, bytes: u64) -> u64 {
        let line = self.config.cache.line_size();
        let per_line = self.config.latency.hit_latency + self.config.latency.miss_penalty;
        match self.scratchpad.as_mut() {
            Some(sp) => {
                let cycles = sp.copy_in(bytes, line, per_line);
                self.control_cycles += cycles;
                cycles
            }
            None => 0,
        }
    }

    // ------------------------------------------------------------------
    // Hardware datapath
    // ------------------------------------------------------------------

    /// Replays one memory reference and returns the cycles it took.
    pub fn access(&mut self, addr: u64, is_write: bool) -> u64 {
        self.stats.references += 1;

        // Dedicated scratchpad is checked first: it is a separate address region.
        if self.scratchpad_access(addr) {
            return self.config.latency.scratchpad_latency;
        }

        // Address translation: the TLB carries the tint to the replacement unit.
        let mut cycles = 0u64;
        let (entry, tlb_hit) = self.tlb.lookup(addr, &self.page_table);
        if tlb_hit {
            self.stats.tlb_hits += 1;
        } else {
            self.stats.tlb_misses += 1;
            cycles += self.config.latency.tlb_miss_penalty;
        }
        self.finish_access(addr, is_write, entry, cycles)
    }

    /// Replays a slice of references through a batched fast path.
    ///
    /// A small direct-mapped translation cache maps recently-seen pages to their TLB slot;
    /// a cached page revalidates its slot in O(1) ([`Tlb::probe_slot`]) instead of
    /// re-scanning the TLB. The probe performs exactly the state transitions of a full
    /// lookup hit (clock, LRU touch, hit counter), and a slot that was reused for another
    /// page falls back to the full lookup, so cycle counts, statistics **and TLB state**
    /// are identical to per-reference replay — batching only changes wall-clock time. The
    /// cached slots cannot go stale semantically because no control operation (re-tint,
    /// cacheability change) can interleave with a batch.
    pub fn run_batch(&mut self, refs: &[(u64, bool)]) -> u64 {
        /// Direct-mapped translation-cache size; covers several interleaved streams.
        const WAYS: usize = 16;
        /// Direct-mapped tint-mask cache size; tints are few and stable within a batch.
        const TINT_WAYS: usize = 8;
        const EMPTY: u64 = u64::MAX;
        // (vpn, TLB slot index) per way; the entry itself always comes from the TLB.
        let mut tcache: [(u64, usize); WAYS] = [(EMPTY, 0); WAYS];
        // (tint, resolved mask) per way. The tint table cannot change inside a batch
        // (no control operation interleaves), so memoising `mask_or_default` here is
        // exact — it lifts a tree lookup off every cacheable reference.
        let mut mcache: [(u64, ColumnMask); TINT_WAYS] = [(EMPTY, ColumnMask::EMPTY); TINT_WAYS];

        // Page size is a validated power of two, so page-number extraction is a shift.
        let page_shift = self.config.page_size.trailing_zeros();
        let tlb_miss_penalty = self.config.latency.tlb_miss_penalty;
        // The full lookup, shared by the two slow paths (translation-cache miss and
        // stale slot), so miss accounting can never diverge between them.
        let full_lookup =
            |sys: &mut Self, tcache: &mut [(u64, usize); WAYS], addr: u64, vpn: u64, way: usize| {
                let (entry, hit, slot) = sys.tlb.lookup_slot(addr, &sys.page_table);
                tcache[way] = (vpn, slot);
                if hit {
                    sys.stats.tlb_hits += 1;
                    (entry, 0)
                } else {
                    sys.stats.tlb_misses += 1;
                    (entry, tlb_miss_penalty)
                }
            };
        let mut total = 0u64;
        // Memo-hit tallies stay in registers inside the loop and flush once at the end,
        // so the instrumentation costs two adds per batch, not per reference.
        let mut translation_hits = 0u64;
        let mut tint_hits = 0u64;
        for &(addr, is_write) in refs {
            self.stats.references += 1;
            if self.scratchpad_access(addr) {
                total += self.config.latency.scratchpad_latency;
                continue;
            }
            let vpn = addr >> page_shift;
            let way = (vpn as usize) % WAYS;
            let cached = tcache[way];
            let (entry, cycles) = if cached.0 == vpn {
                match self.tlb.probe_slot(cached.1, vpn) {
                    Some(entry) => {
                        self.stats.tlb_hits += 1;
                        translation_hits += 1;
                        (entry, 0)
                    }
                    // The TLB slot was reused for another page since we cached it.
                    None => full_lookup(self, &mut tcache, addr, vpn, way),
                }
            } else {
                full_lookup(self, &mut tcache, addr, vpn, way)
            };
            if !entry.cacheable {
                self.stats.uncached_accesses += 1;
                total += self.uncached_access(is_write, cycles);
                continue;
            }
            let tint = u64::from(entry.tint.0);
            let mway = (tint as usize) % TINT_WAYS;
            let mask = if mcache[mway].0 == tint {
                tint_hits += 1;
                mcache[mway].1
            } else {
                let mask = self.tints.mask_or_default(entry.tint);
                mcache[mway] = (tint, mask);
                mask
            };
            total += self.cacheable_access(addr, is_write, mask, cycles);
        }
        self.memo.translation_hits += translation_hits;
        self.memo.tint_hits += tint_hits;
        total
    }

    /// Serves `addr` from the dedicated scratchpad if one covers it, charging cycles and
    /// statistics. Returns whether the access was absorbed.
    #[inline]
    fn scratchpad_access(&mut self, addr: u64) -> bool {
        if let Some(sp) = self.scratchpad.as_mut() {
            if sp.contains(addr) {
                sp.record_access();
                self.stats.scratchpad_accesses += 1;
                self.stats.memory_cycles += self.config.latency.scratchpad_latency;
                return true;
            }
        }
        false
    }

    /// The post-translation half of an access: drives the cache (or bypasses it) and
    /// charges cycles. `cycles` carries whatever the translation step already cost.
    fn finish_access(
        &mut self,
        addr: u64,
        is_write: bool,
        entry: crate::page_table::PageEntry,
        cycles: u64,
    ) -> u64 {
        if !entry.cacheable {
            self.stats.uncached_accesses += 1;
            return self.uncached_access(is_write, cycles);
        }
        let mask = self.tints.mask_or_default(entry.tint);
        self.cacheable_access(addr, is_write, mask, cycles)
    }

    /// Charges an access that goes straight to main memory (uncacheable page or masked-out
    /// bypass). The caller accounts the `uncached_accesses` statistic — the two paths
    /// classify it at different points.
    #[inline]
    fn uncached_access(&mut self, is_write: bool, mut cycles: u64) -> u64 {
        cycles += self.config.latency.uncached_latency;
        if is_write {
            self.memory.write_line(8);
        } else {
            self.memory.read_line(8);
        }
        self.stats.memory_cycles += cycles;
        cycles
    }

    /// Drives the column cache with an already-resolved column mask and charges cycles.
    #[inline]
    fn cacheable_access(
        &mut self,
        addr: u64,
        is_write: bool,
        mask: ColumnMask,
        cycles: u64,
    ) -> u64 {
        match self.cache.access(addr, is_write, mask) {
            AccessOutcome::Hit { .. } => {
                let cycles = cycles + self.config.latency.hit_latency;
                self.stats.memory_cycles += cycles;
                cycles
            }
            AccessOutcome::Miss { evicted, .. } => {
                let line_size = self.config.cache.line_size();
                let mut cycles = cycles + self.config.latency.hit_latency;
                cycles += self
                    .memory
                    .read_line(line_size)
                    .max(self.config.latency.miss_penalty);
                if let Some(ev) = evicted {
                    if ev.dirty {
                        cycles += self
                            .memory
                            .write_line(line_size)
                            .max(self.config.latency.writeback_penalty);
                    }
                }
                self.stats.memory_cycles += cycles;
                cycles
            }
            AccessOutcome::Bypass => {
                self.stats.uncached_accesses += 1;
                self.uncached_access(is_write, cycles)
            }
        }
    }

    /// Replays a sequence of `(address, is_write)` references and returns the total cycles.
    pub fn run<I>(&mut self, refs: I) -> u64
    where
        I: IntoIterator<Item = (u64, bool)>,
    {
        refs.into_iter().map(|(a, w)| self.access(a, w)).sum()
    }

    /// Builds a cycle/CPI report for everything replayed since the last statistics reset,
    /// using the configured instructions-per-reference and compute-CPI model. Control
    /// cycles (tint management, preloads, explicit copies) are included in the memory
    /// cycles if `include_control` is set.
    pub fn cycle_report(&self, include_control: bool) -> CycleReport {
        CycleReport::from_stats(
            &self.stats,
            &self.config.latency,
            self.control_cycles,
            include_control,
        )
    }
}

impl Default for MemorySystem {
    fn default() -> Self {
        MemorySystem::with_default_cache()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> MemorySystem {
        MemorySystem::with_default_cache()
    }

    #[test]
    fn default_system_behaves_like_a_plain_cache() {
        let mut s = system();
        let c1 = s.access(0x1000, false);
        let c2 = s.access(0x1000, false);
        // first access: TLB miss + cache miss; second: pure hit
        assert!(c1 > c2);
        assert_eq!(c2, s.config().latency.hit_latency);
        assert_eq!(s.stats().references, 2);
        assert_eq!(s.cache_stats().hits, 1);
        assert_eq!(s.stats().tlb_misses, 1);
        assert_eq!(s.stats().tlb_hits, 1);
    }

    #[test]
    fn tint_isolation_prevents_cross_variable_eviction() {
        // Two streams that collide in every set: with the default single tint the second
        // stream evicts the first; with separate exclusive tints the first stays resident.
        let stream_a: Vec<(u64, bool)> = (0..16u64).map(|i| ((i * 32), false)).collect();
        let stream_b: Vec<(u64, bool)> = (0..64u64).map(|i| (0x10_0000 + i * 32, false)).collect();

        // Shared cache: run A, then B (which floods all columns), then A again.
        let mut shared = system();
        shared.run(stream_a.iter().copied());
        shared.run(stream_b.iter().copied());
        shared.reset_stats();
        shared.run(stream_a.iter().copied());
        let shared_hits = shared.cache_stats().hits;

        // Partitioned cache: A owns column 0 exclusively, B gets the rest.
        let mut part = system();
        part.define_tint(Tint(1), ColumnMask::single(0)).unwrap();
        part.define_tint(Tint(2), ColumnMask::from_columns([1, 2, 3]))
            .unwrap();
        part.tint_range(0x0000..16 * 32, Tint(1));
        part.tint_range(0x10_0000..0x10_0000 + 64 * 32, Tint(2));
        part.run(stream_a.iter().copied());
        part.run(stream_b.iter().copied());
        part.reset_stats();
        part.run(stream_a.iter().copied());
        let part_hits = part.cache_stats().hits;

        assert_eq!(part_hits, 16, "column-isolated stream must stay resident");
        assert!(shared_hits < part_hits);
    }

    #[test]
    fn exclusive_region_behaves_like_scratchpad() {
        let mut s = system();
        // one column = 512 bytes
        s.map_exclusive_region(0x8000, 512, ColumnMask::single(3), Tint(7), true)
            .unwrap();
        // pollute the rest of the cache heavily
        let pollute: Vec<(u64, bool)> = (0..1024u64).map(|i| (0x20_0000 + i * 32, false)).collect();
        s.run(pollute);
        s.reset_stats();
        // every access to the scratchpad-mapped region must hit
        let hits_expected = 512 / 32;
        for i in 0..hits_expected {
            s.access(0x8000 + i * 32, false);
        }
        assert_eq!(s.cache_stats().hits, hits_expected);
        assert_eq!(s.cache_stats().misses, 0);
    }

    #[test]
    fn retinting_flushes_tlb_entries() {
        let mut s = system();
        s.access(0x4000, false); // loads TLB entry for that page
        let pages_changed = s.tint_range(0x4000..0x4400, Tint(1));
        assert!(pages_changed >= 1);
        assert!(s.stats().tlb_flushes >= 1);
        // next access pays a TLB miss again
        let before = s.stats().tlb_misses;
        s.access(0x4000, false);
        assert_eq!(s.stats().tlb_misses, before + 1);
    }

    #[test]
    fn uncacheable_pages_bypass_the_cache() {
        let mut s = system();
        s.set_cacheable(0x9000..0x9400, false);
        s.access(0x9000, false);
        s.access(0x9000, false);
        assert_eq!(s.cache_stats().accesses, 0);
        assert_eq!(s.stats().uncached_accesses, 2);
        assert!(!s.cache().contains(0x9000));
    }

    #[test]
    fn dedicated_scratchpad_routes_accesses() {
        let mut s = system();
        s.attach_scratchpad(0x5_0000, 1024).unwrap();
        let c = s.access(0x5_0000, false);
        assert_eq!(c, s.config().latency.scratchpad_latency);
        assert_eq!(s.stats().scratchpad_accesses, 1);
        assert_eq!(s.cache_stats().accesses, 0);
        let copied = s.scratchpad_copy_in(1024);
        assert!(copied > 0);
        assert_eq!(s.scratchpad().unwrap().bytes_copied_in, 1024);
    }

    #[test]
    fn dirty_evictions_cost_writeback_cycles() {
        let mut s = system();
        // write a line, then evict it with 4 conflicting lines (4 columns)
        s.access(0x0, true);
        let mut evict_cost = 0;
        for i in 1..=4u64 {
            evict_cost = s.access(i * 2048, true);
        }
        // the last access must have paid a writeback on top of the miss
        assert!(
            evict_cost >= s.config().latency.miss_penalty + s.config().latency.writeback_penalty
        );
        assert!(s.memory().line_writes >= 1);
    }

    #[test]
    fn cycle_report_accumulates_cpi() {
        let mut s = system();
        let refs: Vec<(u64, bool)> = (0..100u64).map(|i| (i * 32, false)).collect();
        s.run(refs);
        let rep = s.cycle_report(false);
        assert_eq!(
            rep.instructions,
            100 * s.config().latency.instructions_per_reference
        );
        assert!(rep.cpi() > 1.0);
        let with_control = s.cycle_report(true);
        assert!(with_control.total_cycles() >= rep.total_cycles());
    }

    #[test]
    fn config_validation_rejects_bad_page_size() {
        let cfg = SystemConfig {
            page_size: 3000,
            ..SystemConfig::default()
        };
        assert!(MemorySystem::new(cfg).is_err());
    }

    #[test]
    fn config_validation_rejects_zero_tlb_entries() {
        let cfg = SystemConfig {
            tlb_entries: 0,
            ..SystemConfig::default()
        };
        assert_eq!(
            MemorySystem::new(cfg).unwrap_err(),
            SimError::ZeroTlbEntries
        );
    }

    #[test]
    fn config_validation_rejects_line_spanning_pages() {
        // 32-byte lines (the default cache) with 16-byte pages: a line would cross pages.
        let cfg = SystemConfig {
            page_size: 16,
            ..SystemConfig::default()
        };
        assert_eq!(
            MemorySystem::new(cfg).unwrap_err(),
            SimError::LineExceedsPage {
                line_size: 32,
                page_size: 16,
            }
        );
        // equal sizes are fine: a line exactly fills a page
        let cfg = SystemConfig {
            page_size: 32,
            ..SystemConfig::default()
        };
        assert!(MemorySystem::new(cfg).is_ok());
    }

    #[test]
    fn full_reset_matches_fresh_construction() {
        let mut s = system();
        s.define_tint(Tint(1), ColumnMask::single(1)).unwrap();
        s.make_tint_exclusive(Tint(2), ColumnMask::single(0))
            .unwrap();
        s.tint_range(0..0x2000, Tint(1));
        s.set_cacheable(0x9000..0x9400, false);
        s.attach_scratchpad(0x5_0000, 1024).unwrap();
        s.map_exclusive_region(0x8000, 512, ColumnMask::single(3), Tint(7), true)
            .unwrap();
        let refs: Vec<(u64, bool)> = (0..400u64)
            .map(|i| ((i * 97) % 0x8000, i % 3 == 0))
            .collect();
        s.run_batch(&refs);
        s.full_reset();
        assert_eq!(s, MemorySystem::new(*s.config()).unwrap());
    }

    #[test]
    fn run_batch_matches_per_reference_access() {
        let refs: Vec<(u64, bool)> = (0..600u64)
            .map(|i| ((i * 97) % 0x8000, i % 5 == 0))
            .collect();
        let mut per_ref = system();
        per_ref.define_tint(Tint(1), ColumnMask::single(1)).unwrap();
        per_ref.tint_range(0..0x1000, Tint(1));
        let mut batched = per_ref.clone();

        let a: u64 = refs.iter().map(|&(addr, w)| per_ref.access(addr, w)).sum();
        let b = batched.run_batch(&refs);
        assert_eq!(a, b);
        assert_eq!(per_ref.stats(), batched.stats());
        assert_eq!(per_ref.cache_stats(), batched.cache_stats());
        assert_eq!(per_ref.tlb().stats(), batched.tlb().stats());
    }

    #[test]
    fn run_batch_respects_scratchpad_and_uncached_regions() {
        let mut a = system();
        a.attach_scratchpad(0x5_0000, 1024).unwrap();
        a.set_cacheable(0x9000..0x9400, false);
        let mut b = a.clone();
        let refs: Vec<(u64, bool)> = (0..300u64)
            .map(|i| match i % 3 {
                0 => (0x5_0000 + (i % 32) * 32, false),
                1 => (0x9000 + (i % 32) * 32, true),
                _ => ((i * 64) % 0x4000, false),
            })
            .collect();
        let cycles_a: u64 = refs.iter().map(|&(addr, w)| a.access(addr, w)).sum();
        let cycles_b = b.run_batch(&refs);
        assert_eq!(cycles_a, cycles_b);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(
            a.scratchpad().unwrap().accesses,
            b.scratchpad().unwrap().accesses
        );
    }
}
