//! A small fully-associative TLB that caches page-table entries (including tints).
//!
//! The TLB is the hardware structure that delivers the column-mapping information to the
//! replacement unit on every reference (Section 2.1). Re-tinting a page therefore requires
//! flushing or updating that page's TLB entry; the [`Tlb`] tracks how often that happens so
//! the cost of re-tinting versus tint-remapping can be measured.

use crate::page_table::{PageEntry, PageTable};

/// Statistics of TLB behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that found the page in the TLB.
    pub hits: u64,
    /// Lookups that had to walk the page table.
    pub misses: u64,
    /// Entries invalidated by flushes (page-targeted or global).
    pub flushed_entries: u64,
    /// Global flush operations.
    pub global_flushes: u64,
}

impl TlbStats {
    /// Fraction of lookups that hit; 0 with no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TlbSlot {
    vpn: u64,
    entry: PageEntry,
    last_use: u64,
}

/// A fully-associative, LRU-replaced translation-look-aside buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tlb {
    capacity: usize,
    slots: Vec<TlbSlot>,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB with room for `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> Self {
        Tlb {
            capacity: capacity.max(1),
            slots: Vec::new(),
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Number of entries the TLB can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently resident.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets statistics without evicting entries.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Returns the TLB to its just-constructed state: no resident entries, clock and
    /// statistics zeroed. Unlike [`Tlb::flush_all`] this is not a modelled hardware
    /// operation — nothing is counted — which is what an engine pool needs when it
    /// recycles a backend between tuner candidates.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.clock = 0;
        self.stats = TlbStats::default();
    }

    /// Looks up the page containing `addr`, filling from `page_table` on a miss.
    ///
    /// Returns the page entry and whether the lookup hit in the TLB.
    pub fn lookup(&mut self, addr: u64, page_table: &PageTable) -> (PageEntry, bool) {
        let (entry, hit, _slot) = self.lookup_slot(addr, page_table);
        (entry, hit)
    }

    /// [`Tlb::lookup`], additionally reporting the slot index now holding the page.
    ///
    /// The returned index is the handle for [`Tlb::probe_slot`]: the batched replay path
    /// remembers it per page and revalidates instead of re-scanning the slot vector.
    pub fn lookup_slot(&mut self, addr: u64, page_table: &PageTable) -> (PageEntry, bool, usize) {
        self.clock += 1;
        let vpn = page_table.page_of(addr);
        if let Some(idx) = self.slots.iter().position(|s| s.vpn == vpn) {
            let slot = &mut self.slots[idx];
            slot.last_use = self.clock;
            self.stats.hits += 1;
            return (slot.entry, true, idx);
        }
        self.stats.misses += 1;
        let entry = page_table.entry(vpn);
        let idx = if self.slots.len() < self.capacity {
            self.slots.push(TlbSlot {
                vpn,
                entry,
                last_use: self.clock,
            });
            self.slots.len() - 1
        } else {
            let idx = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_use)
                .expect("capacity >= 1")
                .0;
            self.slots[idx] = TlbSlot {
                vpn,
                entry,
                last_use: self.clock,
            };
            idx
        };
        (entry, false, idx)
    }

    /// O(1) revalidating lookup: if slot `idx` still holds page `vpn`, touches it exactly
    /// as a full [`Tlb::lookup`] hit would (clock advance, LRU update, hit counted) and
    /// returns its entry. Returns `None` — with **no** state change — when the slot was
    /// reused for another page, in which case the caller falls back to a full lookup.
    #[inline]
    pub fn probe_slot(&mut self, idx: usize, vpn: u64) -> Option<PageEntry> {
        let slot = self.slots.get_mut(idx)?;
        if slot.vpn != vpn {
            return None;
        }
        self.clock += 1;
        slot.last_use = self.clock;
        self.stats.hits += 1;
        Some(slot.entry)
    }

    /// Returns `true` if the TLB currently holds a translation for page `vpn`.
    pub fn contains(&self, vpn: u64) -> bool {
        self.slots.iter().any(|s| s.vpn == vpn)
    }

    /// Invalidates the entry for page `vpn`, if resident. Returns `true` if one was dropped.
    pub fn flush_page(&mut self, vpn: u64) -> bool {
        let before = self.slots.len();
        self.slots.retain(|s| s.vpn != vpn);
        let dropped = before - self.slots.len();
        self.stats.flushed_entries += dropped as u64;
        dropped > 0
    }

    /// Invalidates the entries of all listed pages. Returns how many were dropped.
    pub fn flush_pages(&mut self, vpns: &[u64]) -> usize {
        let before = self.slots.len();
        self.slots.retain(|s| !vpns.contains(&s.vpn));
        let dropped = before - self.slots.len();
        self.stats.flushed_entries += dropped as u64;
        dropped
    }

    /// Invalidates every entry.
    pub fn flush_all(&mut self) {
        self.stats.flushed_entries += self.slots.len() as u64;
        self.stats.global_flushes += 1;
        self.slots.clear();
    }
}

impl Default for Tlb {
    /// A 64-entry TLB, typical of small embedded cores.
    fn default() -> Self {
        Tlb::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tint::Tint;

    fn pt() -> PageTable {
        PageTable::new(4096).unwrap()
    }

    #[test]
    fn first_lookup_misses_then_hits() {
        let mut tlb = Tlb::new(4);
        let pt = pt();
        let (_, hit) = tlb.lookup(0x1000, &pt);
        assert!(!hit);
        let (_, hit) = tlb.lookup(0x1abc, &pt); // same page
        assert!(hit);
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
        assert!((tlb.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn lookup_returns_page_table_attributes() {
        let mut table = pt();
        table.set_page_tint(1, Tint(7));
        let mut tlb = Tlb::new(4);
        let (e, _) = tlb.lookup(0x1000, &table);
        assert_eq!(e.tint, Tint(7));
    }

    #[test]
    fn lru_replacement_when_full() {
        let mut tlb = Tlb::new(2);
        let pt = pt();
        tlb.lookup(0x0000, &pt); // page 0
        tlb.lookup(0x1000, &pt); // page 1
        tlb.lookup(0x0000, &pt); // touch page 0 so page 1 is LRU
        tlb.lookup(0x2000, &pt); // page 2 evicts page 1
        assert!(tlb.contains(0));
        assert!(!tlb.contains(1));
        assert!(tlb.contains(2));
        assert_eq!(tlb.len(), 2);
    }

    #[test]
    fn stale_entries_persist_until_flushed() {
        // This is exactly why re-tinting requires a TLB flush (Figure 3).
        let mut table = pt();
        let mut tlb = Tlb::new(4);
        tlb.lookup(0x1000, &table);
        table.set_page_tint(1, Tint(5));
        let (e, hit) = tlb.lookup(0x1000, &table);
        assert!(hit);
        assert_eq!(e.tint, Tint::DEFAULT); // stale!
        tlb.flush_page(1);
        let (e, hit) = tlb.lookup(0x1000, &table);
        assert!(!hit);
        assert_eq!(e.tint, Tint(5));
    }

    #[test]
    fn flush_operations_count_entries() {
        let mut tlb = Tlb::new(8);
        let pt = pt();
        for p in 0..4u64 {
            tlb.lookup(p * 4096, &pt);
        }
        assert_eq!(tlb.flush_pages(&[0, 2]), 2);
        assert_eq!(tlb.stats().flushed_entries, 2);
        tlb.flush_all();
        assert!(tlb.is_empty());
        assert_eq!(tlb.stats().flushed_entries, 4);
        assert_eq!(tlb.stats().global_flushes, 1);
        assert!(!tlb.flush_page(99));
    }

    #[test]
    fn capacity_is_at_least_one() {
        let tlb = Tlb::new(0);
        assert_eq!(tlb.capacity(), 1);
        assert_eq!(Tlb::default().capacity(), 64);
    }
}
