//! JSON renderings of the simulator's configuration and statistics types, used by the
//! experiment artefacts (`SweepReport` and the figure binaries' `--json` outputs).

use crate::config::{CacheConfig, LatencyConfig};
use crate::mask::ColumnMask;
use crate::replacement::ReplacementPolicy;
use crate::stats::{CacheStats, CycleReport, MemoryStats};
use crate::system::SystemConfig;
use crate::tint::Tint;
use ccache_json::{Json, ToJson};

impl ToJson for ReplacementPolicy {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for Tint {
    fn to_json(&self) -> Json {
        Json::UInt(self.0 as u64)
    }
}

impl ToJson for ColumnMask {
    fn to_json(&self) -> Json {
        Json::arr(self.iter().map(|c| Json::UInt(c as u64)))
    }
}

impl ToJson for CacheConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("capacity_bytes", self.capacity_bytes().to_json()),
            ("columns", self.columns().to_json()),
            ("line_size", self.line_size().to_json()),
            ("replacement", self.replacement().to_json()),
        ])
    }
}

impl ToJson for LatencyConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("hit_latency", self.hit_latency.to_json()),
            ("miss_penalty", self.miss_penalty.to_json()),
            ("writeback_penalty", self.writeback_penalty.to_json()),
            ("scratchpad_latency", self.scratchpad_latency.to_json()),
            ("uncached_latency", self.uncached_latency.to_json()),
            ("tlb_miss_penalty", self.tlb_miss_penalty.to_json()),
            (
                "compute_cycles_per_instruction",
                self.compute_cycles_per_instruction.to_json(),
            ),
            (
                "instructions_per_reference",
                self.instructions_per_reference.to_json(),
            ),
        ])
    }
}

impl ToJson for SystemConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cache", self.cache.to_json()),
            ("latency", self.latency.to_json()),
            ("page_size", self.page_size.to_json()),
            ("tlb_entries", self.tlb_entries.to_json()),
        ])
    }
}

impl ToJson for CycleReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("instructions", self.instructions.to_json()),
            ("compute_cycles", self.compute_cycles.to_json()),
            ("memory_cycles", self.memory_cycles.to_json()),
        ])
    }
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("accesses", self.accesses.to_json()),
            ("hits", self.hits.to_json()),
            ("misses", self.misses.to_json()),
            ("bypasses", self.bypasses.to_json()),
            ("evictions", self.evictions.to_json()),
            ("writebacks", self.writebacks.to_json()),
            ("column_hits", self.column_hits.to_json()),
            ("column_fills", self.column_fills.to_json()),
        ])
    }
}

impl ToJson for MemoryStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("references", self.references.to_json()),
            ("memory_cycles", self.memory_cycles.to_json()),
            ("scratchpad_accesses", self.scratchpad_accesses.to_json()),
            ("uncached_accesses", self.uncached_accesses.to_json()),
            ("tlb_hits", self.tlb_hits.to_json()),
            ("tlb_misses", self.tlb_misses.to_json()),
            ("tlb_flushes", self.tlb_flushes.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_render_their_fields() {
        let s = SystemConfig::default().to_json().pretty();
        assert!(s.contains("\"capacity_bytes\": 2048"));
        assert!(s.contains("\"replacement\": \"lru\"") || s.contains("\"replacement\": \"Lru\""));
        assert!(s.contains("\"page_size\": 1024"));
    }

    #[test]
    fn masks_render_as_column_lists() {
        assert_eq!(
            ColumnMask::from_columns([0, 2]).to_json().compact(),
            "[0,2]"
        );
    }
}
