//! Hit/miss and cycle statistics.

use std::ops::AddAssign;

/// Counters maintained by the column cache itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses presented to the cache.
    pub accesses: u64,
    /// Accesses that hit in some column.
    pub hits: u64,
    /// Accesses that missed and filled a line.
    pub misses: u64,
    /// Accesses that could not be cached because their mask selected no column.
    pub bypasses: u64,
    /// Valid lines evicted to make room for fills.
    pub evictions: u64,
    /// Dirty lines written back to memory (on eviction or flush).
    pub writebacks: u64,
    /// Hits per column (indexed by column number).
    pub column_hits: Vec<u64>,
    /// Fills per column (indexed by column number).
    pub column_fills: Vec<u64>,
}

impl CacheStats {
    /// Creates zeroed statistics for a cache with `columns` columns.
    pub fn new(columns: usize) -> Self {
        CacheStats {
            column_hits: vec![0; columns],
            column_fills: vec![0; columns],
            ..CacheStats::default()
        }
    }

    /// Fraction of accesses that hit (0 when there were no accesses).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Fraction of accesses that missed (0 when there were no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.misses + self.bypasses) as f64 / self.accesses as f64
        }
    }
}

impl AddAssign<&CacheStats> for CacheStats {
    fn add_assign(&mut self, rhs: &CacheStats) {
        self.accesses += rhs.accesses;
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.bypasses += rhs.bypasses;
        self.evictions += rhs.evictions;
        self.writebacks += rhs.writebacks;
        if self.column_hits.len() < rhs.column_hits.len() {
            self.column_hits.resize(rhs.column_hits.len(), 0);
            self.column_fills.resize(rhs.column_fills.len(), 0);
        }
        for (a, b) in self.column_hits.iter_mut().zip(&rhs.column_hits) {
            *a += b;
        }
        for (a, b) in self.column_fills.iter_mut().zip(&rhs.column_fills) {
            *a += b;
        }
    }
}

/// Counters for the batch-replay memo caches: how often [`run_batch`]'s short-circuit
/// paths absorbed a full lookup. Purely informational — they are deliberately *not* part
/// of [`MemoryStats`], which stays identical between batched and per-reference replay
/// (the memo only exists on the batched path).
///
/// [`run_batch`]: crate::system::MemorySystem::run_batch
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchMemoStats {
    /// References whose translation was revalidated through the cached TLB slot
    /// instead of a full TLB scan.
    pub translation_hits: u64,
    /// Cacheable references whose tint→mask resolution came from the tint memo
    /// instead of the tint table.
    pub tint_hits: u64,
}

impl AddAssign<&BatchMemoStats> for BatchMemoStats {
    fn add_assign(&mut self, rhs: &BatchMemoStats) {
        self.translation_hits += rhs.translation_hits;
        self.tint_hits += rhs.tint_hits;
    }
}

/// Counters maintained by the memory system wrapper (cache + TLB + scratchpad + DRAM).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Memory references processed.
    pub references: u64,
    /// Total cycles spent on memory (hit latencies, miss penalties, writebacks, TLB walks).
    pub memory_cycles: u64,
    /// References satisfied by dedicated scratchpad SRAM.
    pub scratchpad_accesses: u64,
    /// References that bypassed the cache entirely (uncacheable pages or empty masks).
    pub uncached_accesses: u64,
    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB misses (page-table walks).
    pub tlb_misses: u64,
    /// TLB entries invalidated by re-tinting operations.
    pub tlb_flushes: u64,
}

impl AddAssign<&MemoryStats> for MemoryStats {
    fn add_assign(&mut self, rhs: &MemoryStats) {
        self.references += rhs.references;
        self.memory_cycles += rhs.memory_cycles;
        self.scratchpad_accesses += rhs.scratchpad_accesses;
        self.uncached_accesses += rhs.uncached_accesses;
        self.tlb_hits += rhs.tlb_hits;
        self.tlb_misses += rhs.tlb_misses;
        self.tlb_flushes += rhs.tlb_flushes;
    }
}

/// A cycle/CPI report combining memory stalls with a simple in-order compute model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CycleReport {
    /// Instructions represented by the replayed trace.
    pub instructions: u64,
    /// Non-memory (compute) cycles.
    pub compute_cycles: u64,
    /// Memory cycles (from [`MemoryStats::memory_cycles`]).
    pub memory_cycles: u64,
}

impl CycleReport {
    /// Builds a report from accumulated memory statistics under the standard in-order
    /// compute model: `instructions = references × instructions_per_reference`, compute
    /// cycles at `compute_cycles_per_instruction`, and control cycles folded into the
    /// memory cycles when `include_control` is set. Every backend derives its report
    /// through this one function so the CPI model cannot drift between them.
    pub fn from_stats(
        stats: &MemoryStats,
        latency: &crate::config::LatencyConfig,
        control_cycles: u64,
        include_control: bool,
    ) -> CycleReport {
        let instructions = stats.references * latency.instructions_per_reference;
        let mut memory_cycles = stats.memory_cycles;
        if include_control {
            memory_cycles += control_cycles;
        }
        CycleReport {
            instructions,
            compute_cycles: instructions * latency.compute_cycles_per_instruction,
            memory_cycles,
        }
    }

    /// Total cycles.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.memory_cycles
    }

    /// Clocks per instruction; 0 when no instructions were executed.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.total_cycles() as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty_and_normal_cases() {
        let mut s = CacheStats::new(4);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        s.accesses = 10;
        s.hits = 7;
        s.misses = 2;
        s.bypasses = 1;
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
        assert_eq!(s.column_hits.len(), 4);
    }

    #[test]
    fn add_assign_accumulates_and_resizes() {
        let mut a = CacheStats::new(2);
        a.accesses = 5;
        a.column_hits[0] = 3;
        let mut b = CacheStats::new(4);
        b.accesses = 7;
        b.hits = 7;
        b.column_hits[3] = 2;
        a += &b;
        assert_eq!(a.accesses, 12);
        assert_eq!(a.hits, 7);
        assert_eq!(a.column_hits.len(), 4);
        assert_eq!(a.column_hits[0], 3);
        assert_eq!(a.column_hits[3], 2);
    }

    #[test]
    fn cycle_report_cpi() {
        let r = CycleReport {
            instructions: 100,
            compute_cycles: 100,
            memory_cycles: 150,
        };
        assert_eq!(r.total_cycles(), 250);
        assert!((r.cpi() - 2.5).abs() < 1e-12);
        assert_eq!(CycleReport::default().cpi(), 0.0);
    }
}
