//! Column masks: bit vectors selecting a subset of cache columns.
//!
//! A column is one way of the set-associative cache (Section 2.1 of the paper). The
//! replacement unit receives a [`ColumnMask`] with each access and may only choose a victim
//! line inside a column whose bit is set. Lookup is unaffected by the mask: all columns of
//! the selected set are always searched.

use crate::error::SimError;
use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// Maximum number of columns supported by a mask (bits of the underlying word).
pub const MAX_COLUMNS: usize = 64;

/// A bit vector over cache columns. Bit `i` set means column `i` may receive replacements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnMask {
    bits: u64,
}

impl ColumnMask {
    /// A mask selecting no columns. Not usable for replacement on its own, but useful as an
    /// accumulator identity.
    pub const EMPTY: ColumnMask = ColumnMask { bits: 0 };

    /// Creates a mask permitting every column of a `columns`-column cache.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is zero or exceeds [`MAX_COLUMNS`].
    pub fn all(columns: usize) -> Self {
        assert!(
            columns > 0 && columns <= MAX_COLUMNS,
            "column count {columns} out of range 1..={MAX_COLUMNS}"
        );
        if columns == MAX_COLUMNS {
            ColumnMask { bits: u64::MAX }
        } else {
            ColumnMask {
                bits: (1u64 << columns) - 1,
            }
        }
    }

    /// Creates a mask selecting exactly one column.
    pub fn single(column: usize) -> Self {
        assert!(column < MAX_COLUMNS, "column {column} out of range");
        ColumnMask {
            bits: 1u64 << column,
        }
    }

    /// Creates a mask from an iterator of column indices.
    pub fn from_columns<I: IntoIterator<Item = usize>>(columns: I) -> Self {
        let mut bits = 0u64;
        for c in columns {
            assert!(c < MAX_COLUMNS, "column {c} out of range");
            bits |= 1u64 << c;
        }
        ColumnMask { bits }
    }

    /// Creates a mask selecting the contiguous range `[start, start + count)`.
    pub fn range(start: usize, count: usize) -> Self {
        ColumnMask::from_columns(start..start + count)
    }

    /// Creates a mask from a raw bit pattern.
    pub fn from_bits(bits: u64) -> Self {
        ColumnMask { bits }
    }

    /// Returns the raw bit pattern.
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Returns `true` if column `column` is selected.
    pub fn contains(self, column: usize) -> bool {
        column < MAX_COLUMNS && self.bits & (1u64 << column) != 0
    }

    /// Number of selected columns.
    pub fn count(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Returns `true` if no column is selected.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Adds a column to the mask, returning the result.
    pub fn with(self, column: usize) -> Self {
        assert!(column < MAX_COLUMNS, "column {column} out of range");
        ColumnMask {
            bits: self.bits | (1u64 << column),
        }
    }

    /// Removes a column from the mask, returning the result.
    pub fn without(self, column: usize) -> Self {
        ColumnMask {
            bits: self.bits & !(1u64 << column.min(MAX_COLUMNS - 1)),
        }
    }

    /// Iterates over the selected column indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..MAX_COLUMNS).filter(move |&c| self.contains(c))
    }

    /// Restricts the mask to the first `columns` columns of the cache.
    pub fn truncate(self, columns: usize) -> Self {
        self & ColumnMask::all(columns.max(1))
    }

    /// Validates the mask against a cache with `columns` columns.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyMask`] if no column is selected and
    /// [`SimError::ColumnOutOfRange`] if a selected column does not exist.
    pub fn validate(self, columns: usize) -> Result<(), SimError> {
        if self.is_empty() {
            return Err(SimError::EmptyMask);
        }
        if let Some(c) = self.iter().find(|&c| c >= columns) {
            return Err(SimError::ColumnOutOfRange { column: c, columns });
        }
        Ok(())
    }
}

impl Default for ColumnMask {
    /// The default mask is empty; callers normally start from [`ColumnMask::all`].
    fn default() -> Self {
        ColumnMask::EMPTY
    }
}

impl BitOr for ColumnMask {
    type Output = ColumnMask;
    fn bitor(self, rhs: Self) -> Self::Output {
        ColumnMask {
            bits: self.bits | rhs.bits,
        }
    }
}

impl BitAnd for ColumnMask {
    type Output = ColumnMask;
    fn bitand(self, rhs: Self) -> Self::Output {
        ColumnMask {
            bits: self.bits & rhs.bits,
        }
    }
}

impl Not for ColumnMask {
    type Output = ColumnMask;
    fn not(self) -> Self::Output {
        ColumnMask { bits: !self.bits }
    }
}

impl fmt::Display for ColumnMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Binary for ColumnMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}

impl FromIterator<usize> for ColumnMask {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        ColumnMask::from_columns(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_selects_every_column() {
        let m = ColumnMask::all(4);
        assert_eq!(m.count(), 4);
        assert!(m.contains(0) && m.contains(3));
        assert!(!m.contains(4));
        assert_eq!(ColumnMask::all(64).count(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn all_rejects_zero_columns() {
        let _ = ColumnMask::all(0);
    }

    #[test]
    fn single_and_with_without() {
        let m = ColumnMask::single(2);
        assert_eq!(m.count(), 1);
        assert!(m.contains(2));
        let m2 = m.with(0).without(2);
        assert!(m2.contains(0));
        assert!(!m2.contains(2));
        assert_eq!(m2.count(), 1);
    }

    #[test]
    fn from_columns_range_and_iter() {
        let m = ColumnMask::from_columns([1, 3]);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1, 3]);
        let r = ColumnMask::range(1, 3);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        let c: ColumnMask = [0usize, 2].into_iter().collect();
        assert_eq!(c.count(), 2);
    }

    #[test]
    fn bit_operations() {
        let a = ColumnMask::from_columns([0, 1]);
        let b = ColumnMask::from_columns([1, 2]);
        assert_eq!((a | b).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!((a & b).iter().collect::<Vec<_>>(), vec![1]);
        assert!((!a).contains(2));
        assert!(!(!a).contains(0));
        assert_eq!((!a).truncate(4).iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn validate_checks_emptiness_and_range() {
        assert_eq!(ColumnMask::EMPTY.validate(4), Err(SimError::EmptyMask));
        assert!(ColumnMask::single(3).validate(4).is_ok());
        assert_eq!(
            ColumnMask::single(4).validate(4),
            Err(SimError::ColumnOutOfRange {
                column: 4,
                columns: 4
            })
        );
    }

    #[test]
    fn display_lists_columns() {
        assert_eq!(ColumnMask::from_columns([0, 2]).to_string(), "{0,2}");
        assert_eq!(ColumnMask::EMPTY.to_string(), "{}");
        assert_eq!(format!("{:b}", ColumnMask::from_columns([0, 2])), "101");
    }

    #[test]
    fn default_is_empty() {
        assert!(ColumnMask::default().is_empty());
        assert_eq!(ColumnMask::default().count(), 0);
    }
}
